//! The `vdbench` command-line interface.
//!
//! A thin, dependency-free front-end over the library for downstream users
//! who want results without writing Rust:
//!
//! ```sh
//! vdbench generate --units 50 --density 0.3 --seed 7 --show 2
//! vdbench scan --tool taint --units 200 --density 0.3
//! vdbench bench --scenario S3
//! vdbench serve --addr 127.0.0.1:7071 --cache-dir target/vdbench-cache
//! vdbench loadgen --duration-secs 3
//! ```
//!
//! The usage table is **generated** from one declarative command table
//! ([`COMMANDS`]), so a new subcommand or flag shows up in `vdbench help`
//! by construction. Exit codes follow convention: `0` success, `1`
//! runtime failure, `2` usage error (unknown command or flag, malformed
//! flag syntax) — usage errors come with a nearest-match suggestion.

use std::collections::BTreeMap;
use std::process::ExitCode;
use vdbench::core::campaign::{run_case_study, standard_tools};
use vdbench::core::consistency::{cross_workload_consistency, ConsistencyConfig};
use vdbench::core::scenario::standard_scenarios;
use vdbench::core::selection::{default_candidates, MetricSelector};
use vdbench::core::AssessmentConfig;
use vdbench::corpus::pretty::unit_to_string;
use vdbench::prelude::*;

type Flags = BTreeMap<String, String>;

/// One `--flag value` a command accepts.
struct FlagSpec {
    name: &'static str,
    placeholder: &'static str,
    help: &'static str,
}

/// One subcommand: its summary, accepted actions and flags, and
/// implementation. `actions` is empty for plain commands; when non-empty
/// the first positional argument must be one of the listed actions and is
/// handed to `run` under the reserved `action` flag key.
struct CommandSpec {
    name: &'static str,
    summary: &'static str,
    actions: &'static [&'static str],
    flags: &'static [FlagSpec],
    run: fn(&Flags) -> Result<(), String>,
}

macro_rules! flag {
    ($name:literal, $placeholder:literal, $help:literal) => {
        FlagSpec {
            name: $name,
            placeholder: $placeholder,
            help: $help,
        }
    };
}

/// The full command table — the single source of the usage text.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        summary: "Generate a MiniWeb corpus and print its statistics",
        actions: &[],
        flags: &[
            flag!("units", "N", "corpus size in units (default 200)"),
            flag!(
                "density",
                "F",
                "vulnerability density in [0, 1] (default 0.3)"
            ),
            flag!(
                "stored-rate",
                "F",
                "stored-vulnerability rate in [0, 1] (default 0.12)"
            ),
            flag!("seed", "N", "generator seed (default 2015)"),
            flag!("show", "K", "pretty-print the first K units"),
            flag!("out", "FILE", "also save the corpus as JSON"),
        ],
        run: cmd_generate,
    },
    CommandSpec {
        name: "scan",
        summary: "Run one detection tool over a corpus",
        actions: &[],
        flags: &[
            flag!(
                "tool",
                "NAME",
                "pattern|pattern-cons|taint|taint-shallow|pentest|pentest-quick|pentest-stateful"
            ),
            flag!("units", "N", "corpus size in units (default 200)"),
            flag!(
                "density",
                "F",
                "vulnerability density in [0, 1] (default 0.3)"
            ),
            flag!(
                "stored-rate",
                "F",
                "stored-vulnerability rate in [0, 1] (default 0.12)"
            ),
            flag!("seed", "N", "generator seed (default 2015)"),
            flag!(
                "corpus",
                "FILE",
                "scan a saved corpus instead of generating"
            ),
            flag!(
                "shard-units",
                "N",
                "stream the corpus in fixed-memory shards of N units"
            ),
            flag!(
                "cache-dir",
                "DIR",
                "manifest store for incremental rescans (with --shard-units)"
            ),
            flag!(
                "scan-threads",
                "N",
                "shard-worker threads for --shard-units (default: rayon pool size)"
            ),
        ],
        run: cmd_scan,
    },
    CommandSpec {
        name: "scale",
        summary: "Measure streamed-scan wall-time and peak-RSS curves, write BENCH_scale.json",
        actions: &[],
        flags: &[
            flag!(
                "units",
                "N,N,..",
                "ascending corpus sizes to measure (default 10000,100000)"
            ),
            flag!(
                "shard-units",
                "N",
                "shard size for the streamed scans (default 4096)"
            ),
            flag!("tool", "NAME", "detection tool to drive (default pattern)"),
            flag!("seed", "N", "generator seed (default 2015)"),
            flag!(
                "density",
                "F",
                "vulnerability density in [0, 1] (default 0.3)"
            ),
            flag!(
                "delta",
                "K",
                "rerun the largest corpus grown by K units, rescanning incrementally"
            ),
            flag!(
                "cache-dir",
                "DIR",
                "manifest store (default target/vdbench-scale-cache)"
            ),
            flag!("out", "FILE", "record path (default BENCH_scale.json)"),
            flag!(
                "assert-flat",
                "F",
                "fail if peak RSS grows more than F x across the curve"
            ),
            flag!(
                "perf-history",
                "DIR",
                "append this run to the perfwatch ledger in DIR"
            ),
            flag!(
                "scan-threads",
                "N",
                "shard-worker threads (default: rayon pool size; 1 = serial oracle)"
            ),
        ],
        run: cmd_scale,
    },
    CommandSpec {
        name: "cache",
        summary: "Inspect and garbage-collect a blob store directory",
        actions: &[],
        flags: &[
            flag!(
                "dir",
                "DIR",
                "blob store directory (default target/vdbench-cache)"
            ),
            flag!(
                "gc",
                "on|off",
                "sweep abandoned tmp files and stale-schema blobs (default off)"
            ),
        ],
        run: cmd_cache,
    },
    CommandSpec {
        name: "bench",
        summary: "Run the full scenario case study",
        actions: &[],
        flags: &[
            flag!("scenario", "ID", "restrict to one scenario: S1|S2|S3|S4"),
            flag!("seed", "N", "experiment seed (default 2015)"),
        ],
        run: cmd_bench,
    },
    CommandSpec {
        name: "select",
        summary: "Per-scenario metric selection + MCDA validation",
        actions: &[],
        flags: &[
            flag!("noise", "F", "expert-panel noise level (default 0.25)"),
            flag!("experts", "N", "panel size (default 7)"),
            flag!("seed", "N", "panel seed (default 2015)"),
        ],
        run: cmd_select,
    },
    CommandSpec {
        name: "consistency",
        summary: "Cross-workload ranking-consistency study",
        actions: &[],
        flags: &[
            flag!("units", "N", "workload size (default 400)"),
            flag!("seed", "N", "experiment seed (default 2015)"),
        ],
        run: cmd_consistency,
    },
    CommandSpec {
        name: "report",
        summary: "Full campaign report as Markdown on stdout",
        actions: &[],
        flags: &[flag!("seed", "N", "experiment seed (default 2015)")],
        run: cmd_report,
    },
    CommandSpec {
        name: "recommend",
        summary: "Recommend a benchmark metric for YOUR scenario",
        actions: &[],
        flags: &[
            flag!(
                "fp-cost",
                "F",
                "cost of triaging one false positive (default 1)"
            ),
            flag!(
                "fn-cost",
                "F",
                "cost of one missed vulnerability (default 5)"
            ),
            flag!(
                "prevalence",
                "F",
                "fraction of vulnerable units in (0, 1) (default 0.2)"
            ),
        ],
        run: cmd_recommend,
    },
    CommandSpec {
        name: "serve",
        summary: "Serve campaigns over HTTP from the content-addressed blob store",
        actions: &[],
        flags: &[
            flag!("addr", "HOST:PORT", "bind address (default 127.0.0.1:7071)"),
            flag!(
                "cache-dir",
                "DIR",
                "blob store directory, shared with run_all (default target/vdbench-cache)"
            ),
            flag!(
                "max-inflight",
                "N",
                "concurrent cold computations before 429 (default 64)"
            ),
            flag!(
                "client-budget",
                "N",
                "per-client step budget (default unmetered)"
            ),
        ],
        run: cmd_serve,
    },
    CommandSpec {
        name: "loadgen",
        summary: "Drive a running server with seeded mixed traffic, write BENCH_serve.json",
        actions: &[],
        flags: &[
            flag!(
                "addr",
                "HOST:PORT",
                "server to drive (default 127.0.0.1:7071)"
            ),
            flag!("duration-secs", "F", "measured-phase duration (default 3)"),
            flag!(
                "connections",
                "N",
                "concurrent client connections (default 8)"
            ),
            flag!("seed", "N", "request-pool seed (default 2015)"),
            flag!(
                "pool-scans",
                "N",
                "distinct scan requests in the pool (default 64)"
            ),
            flag!(
                "artifacts",
                "on|off",
                "include campaign artifacts in the pool (default off)"
            ),
            flag!("out", "FILE", "record path (default BENCH_serve.json)"),
            flag!(
                "perf-history",
                "DIR",
                "append this run to the perfwatch ledger in DIR"
            ),
        ],
        run: cmd_loadgen,
    },
    CommandSpec {
        name: "perfwatch",
        summary: "Statistical perf-regression gate over the BENCH_* history (DESIGN.md §17)",
        actions: &["check", "update"],
        flags: &[
            flag!(
                "history",
                "DIR",
                "perfwatch ledger directory (default results/perf-history)"
            ),
            flag!(
                "source",
                "NAME",
                "restrict to one source: kernels|campaign|scale|serve"
            ),
            flag!(
                "alpha",
                "F",
                "family-wise significance level (default 0.05)"
            ),
            flag!(
                "min-effect",
                "F",
                "minimum relative delta to flag, as a fraction (default 0.05)"
            ),
            flag!(
                "replicates",
                "N",
                "bootstrap replicates per series (default 2000)"
            ),
            flag!(
                "rounds",
                "N",
                "permutation rounds per series (default 2000)"
            ),
            flag!(
                "level",
                "F",
                "confidence level for intervals (default 0.95)"
            ),
            flag!(
                "out",
                "FILE",
                "trend table path for `check` (default perfwatch-trend.md)"
            ),
            flag!(
                "note",
                "TEXT",
                "provenance note recorded by `update` (why re-baseline?)"
            ),
        ],
        run: cmd_perfwatch,
    },
];

/// Builds the usage text from [`COMMANDS`].
fn usage() -> String {
    let mut text = String::from(
        "vdbench — benchmarking vulnerability detection tools (DSN'15 reproduction)\n\n\
         USAGE:\n    vdbench <command> [--flag value]...\n\nCOMMANDS:\n",
    );
    for cmd in COMMANDS {
        text.push_str(&format!("    {:<12} {}\n", cmd.name, cmd.summary));
        if !cmd.actions.is_empty() {
            let action = format!("<{}>", cmd.actions.join("|"));
            text.push_str(&format!("        {action:<24} required action\n"));
        }
        for f in cmd.flags {
            let flag = format!("--{} {}", f.name, f.placeholder);
            text.push_str(&format!("        {flag:<24} {}\n", f.help));
        }
    }
    text.push_str("    help         Show this message\n");
    text
}

/// Classic Levenshtein edit distance (both inputs are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            row.push(substitute.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate within a sane typo distance, if any.
fn nearest<'a>(input: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (edit_distance(input, c), c))
        .min()
        .filter(|&(d, c)| d <= (c.len() / 2).max(2))
        .map(|(_, c)| c)
}

/// Exit code for usage errors (unknown command/flag, malformed syntax).
const USAGE_ERROR: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(USAGE_ERROR);
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        let suggestion = nearest(command, COMMANDS.iter().map(|c| c.name))
            .map(|n| format!(" (did you mean `{n}`?)"))
            .unwrap_or_default();
        eprintln!(
            "error: unknown command `{command}`{suggestion}\n\n{}",
            usage()
        );
        return ExitCode::from(USAGE_ERROR);
    };
    // Commands with actions take one as their first positional argument
    // (`vdbench perfwatch check --alpha 0.01`); everything after it is
    // ordinary `--key value` flags.
    let (action, flag_args) = if spec.actions.is_empty() {
        (None, rest)
    } else {
        match rest.split_first() {
            Some((a, tail)) if !a.starts_with("--") => {
                if !spec.actions.contains(&a.as_str()) {
                    let suggestion = nearest(a, spec.actions.iter().copied())
                        .map(|n| format!(" (did you mean `{n}`?)"))
                        .unwrap_or_default();
                    eprintln!(
                        "error: unknown action `{a}` for `{}`{suggestion}: \
                         expected one of {}",
                        spec.name,
                        spec.actions.join(", ")
                    );
                    return ExitCode::from(USAGE_ERROR);
                }
                (Some(a.clone()), tail)
            }
            _ => {
                eprintln!(
                    "error: `{}` needs an action: {}\n\n{}",
                    spec.name,
                    spec.actions.join("|"),
                    usage()
                );
                return ExitCode::from(USAGE_ERROR);
            }
        }
    };
    let mut flags = match parse_flags(flag_args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(USAGE_ERROR);
        }
    };
    for name in flags.keys() {
        if !spec.flags.iter().any(|f| f.name == name) {
            let suggestion = nearest(name, spec.flags.iter().map(|f| f.name))
                .map(|n| format!(" (did you mean --{n}?)"))
                .unwrap_or_default();
            eprintln!(
                "error: unknown flag --{name} for `{}`{suggestion}\n\
                 run `vdbench help` for the full flag table",
                spec.name
            );
            return ExitCode::from(USAGE_ERROR);
        }
    }
    // Inserted after the unknown-flag sweep: `action` is a reserved key
    // carrying the validated positional, not a user-facing flag.
    if let Some(a) = action {
        flags.insert("action".to_string(), a);
    }
    match (spec.run)(&flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs; rejects stray positionals and dangling keys.
fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{key}` (flags are --key value)"
            ));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} is missing a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_usize(flags: &Flags, name: &str, default: usize) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn flag_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn flag_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

/// Loads a corpus from `--corpus FILE` when given, otherwise generates one
/// from the numeric flags.
fn load_or_build_corpus(flags: &Flags) -> Result<vdbench::corpus::Corpus, String> {
    if let Some(path) = flags.get("corpus") {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read corpus file {path}: {e}"))?;
        return serde_json::from_str(&json)
            .map_err(|e| format!("cannot parse corpus file {path}: {e}"));
    }
    build_corpus(flags)
}

/// Configures a [`CorpusBuilder`] from the numeric generator flags.
fn corpus_builder(flags: &Flags) -> Result<CorpusBuilder, String> {
    let units = flag_usize(flags, "units", 200)?;
    let density = flag_f64(flags, "density", 0.3)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let stored_rate = flag_f64(flags, "stored-rate", 0.12)?;
    if !(0.0..=1.0).contains(&density) {
        return Err("--density must be in [0, 1]".into());
    }
    if !(0.0..=1.0).contains(&stored_rate) {
        return Err("--stored-rate must be in [0, 1]".into());
    }
    Ok(CorpusBuilder::new()
        .units(units)
        .vulnerability_density(density)
        .stored_rate(stored_rate)
        .seed(seed)
        .clone())
}

fn build_corpus(flags: &Flags) -> Result<vdbench::corpus::Corpus, String> {
    Ok(corpus_builder(flags)?.build())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let corpus = build_corpus(flags)?;
    let show = flag_usize(flags, "show", 0)?;
    if let Some(path) = flags.get("out") {
        let json =
            serde_json::to_string(&corpus).map_err(|e| format!("cannot serialize corpus: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("corpus saved to {path}");
    }
    let stats = corpus.stats();
    println!(
        "corpus: {} units / {} sites, {} vulnerable ({:.1}% prevalence), {} statements, seed {:#x}",
        stats.units,
        stats.sites,
        stats.vulnerable_sites,
        stats.prevalence * 100.0,
        stats.total_statements,
        corpus.seed(),
    );
    println!("\nby class:");
    for (class, count) in &stats.by_class {
        println!(
            "  {:32} {:>4} sites, {:>3} vulnerable",
            class.to_string(),
            count.total,
            count.vulnerable
        );
    }
    println!("\nby flow shape:");
    for (shape, count) in &stats.by_shape {
        println!("  {shape:?}: {count}");
    }
    for unit in corpus.units().iter().take(show) {
        println!("\n{}", unit_to_string(unit));
    }
    Ok(())
}

/// Prints a scan summary: confusion line, metric table, findings preview.
/// The monolithic and streamed scan paths both feed this one printer,
/// which is what keeps `--shard-units` output byte-identical.
fn print_scan_report(
    tool: &str,
    sites: u64,
    cm: &ConfusionMatrix,
    findings_total: u64,
    preview: &[vdbench::detectors::Finding],
) {
    println!("{tool} on {sites} cases: {cm}");
    for metric in default_candidates() {
        use vdbench::metrics::metric::MetricExt;
        let v = metric.compute_or_nan(cm);
        println!(
            "  {:8} {}",
            metric.abbrev(),
            vdbench::report::format::metric(v)
        );
    }
    println!("\n{findings_total} findings; first three:");
    for f in preview.iter().take(3) {
        println!(
            "  {} [{}] {}",
            f.site,
            f.class.map(|c| c.name()).unwrap_or("?"),
            f.rationale
        );
    }
}

/// Parses `--scan-threads`, defaulting to the ambient rayon pool width.
fn scan_threads(flags: &Flags) -> Result<usize, String> {
    let threads = flag_usize(flags, "scan-threads", vdbench::core::default_scan_threads())?;
    if threads == 0 {
        return Err("--scan-threads must be positive".into());
    }
    Ok(threads)
}

fn cmd_scan(flags: &Flags) -> Result<(), String> {
    let tool_name = flags
        .get("tool")
        .ok_or("scan needs --tool (see `vdbench help`)")?;
    let tool = vdbench::server::tool_by_name(tool_name)
        .ok_or_else(|| format!("unknown tool `{tool_name}` (see `vdbench help`)"))?;
    if let Some(value) = flags.get("shard-units") {
        // Streamed path: generate and scan in fixed-memory shards.
        if flags.contains_key("corpus") {
            return Err(
                "--shard-units streams a generated corpus; it cannot be combined with --corpus"
                    .into(),
            );
        }
        let shard_units: usize = value
            .parse()
            .map_err(|_| format!("--shard-units expects an integer, got `{value}`"))?;
        if shard_units == 0 {
            return Err("--shard-units must be positive".into());
        }
        if let Some(dir) = flags.get("cache-dir") {
            vdbench::core::set_disk_cache(Some(std::path::PathBuf::from(dir)));
        }
        let threads = scan_threads(flags)?;
        let builder = corpus_builder(flags)?;
        let report = vdbench::core::streamed_scan_with_threads(
            tool.as_ref(),
            &builder,
            shard_units,
            threads,
        );
        print_scan_report(
            &report.tool,
            report.sites,
            &report.confusion,
            report.findings,
            &report.preview,
        );
        eprintln!(
            "scan: {} units in {} shards, {} rescanned, {} replayed, {} digest hits",
            report.units, report.shards, report.rescanned, report.replayed, report.digest_hits
        );
        return Ok(());
    }
    let corpus = load_or_build_corpus(flags)?;
    let outcome = score_detector(tool.as_ref(), &corpus);
    let cm = outcome.confusion();
    // Show a couple of findings with their rationale.
    let findings = tool.analyze_corpus(&corpus);
    print_scan_report(
        outcome.tool(),
        corpus.site_count() as u64,
        &cm,
        findings.len() as u64,
        &findings,
    );
    Ok(())
}

fn cmd_scale(flags: &Flags) -> Result<(), String> {
    use std::time::Instant;
    use vdbench::core::{streamed_scan_with_threads, ScaleDelta, ScalePoint, ScaleRecord};
    let list = flags
        .get("units")
        .map(String::as_str)
        .unwrap_or("10000,100000");
    let mut sizes: Vec<usize> = Vec::new();
    for part in list.split(',') {
        let n: usize = part.trim().parse().map_err(|_| {
            format!("--units expects a comma-separated list of integers, got `{part}`")
        })?;
        if n == 0 {
            return Err("--units entries must be positive".into());
        }
        sizes.push(n);
    }
    if !sizes.windows(2).all(|w| w[0] < w[1]) {
        return Err(
            "--units must be strictly ascending (the kernel's VmHWM high-water mark is \
             monotonic, so memory curves are only meaningful over increasing sizes)"
                .into(),
        );
    }
    let shard_units = flag_usize(flags, "shard-units", vdbench::core::DEFAULT_SHARD_UNITS)?;
    if shard_units == 0 {
        return Err("--shard-units must be positive".into());
    }
    let tool_name = flags.get("tool").map(String::as_str).unwrap_or("pattern");
    let tool = vdbench::server::tool_by_name(tool_name)
        .ok_or_else(|| format!("unknown tool `{tool_name}` (see `vdbench help`)"))?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let density = flag_f64(flags, "density", 0.3)?;
    if !(0.0..=1.0).contains(&density) {
        return Err("--density must be in [0, 1]".into());
    }
    let delta = flag_usize(flags, "delta", 0)?;
    let threads = scan_threads(flags)?;
    let cache_dir = flags
        .get("cache-dir")
        .cloned()
        .unwrap_or_else(|| "target/vdbench-scale-cache".to_string());
    vdbench::core::set_disk_cache(Some(std::path::PathBuf::from(&cache_dir)));
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let assert_flat = match flags.get("assert-flat") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--assert-flat expects a number, got `{v}`"))?,
        ),
    };
    let builder_for = |units: usize| {
        CorpusBuilder::new()
            .units(units)
            .vulnerability_density(density)
            .seed(seed)
            .clone()
    };
    // Wall-clock and RSS go to stderr and the JSON record only: stdout is
    // deterministic, so two runs of the same curve diff byte-identically.
    let mut points: Vec<ScalePoint> = Vec::new();
    for &n in &sizes {
        let start = Instant::now();
        let report =
            streamed_scan_with_threads(tool.as_ref(), &builder_for(n), shard_units, threads);
        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let peak_rss_kb = vdbench::telemetry::peak_rss_kb().unwrap_or(0);
        let c = &report.confusion;
        // Digest hits stay off stdout: warm hit counts vary with the
        // shard size, and stdout must diff byte-identically across
        // shard sizes (and thread counts).
        println!(
            "scale: units={} sites={} tp={} fp={} fn={} tn={} rescanned={} replayed={}",
            report.units, report.sites, c.tp, c.fp, c.fn_, c.tn, report.rescanned, report.replayed
        );
        eprintln!(
            "  {} shards of {shard_units} on {threads} thread(s): {wall_ms} ms, peak RSS \
             {peak_rss_kb} kB, {} digest hits",
            report.shards, report.digest_hits
        );
        points.push(ScalePoint {
            units: report.units,
            sites: report.sites,
            shards: report.shards,
            wall_ms,
            peak_rss_kb,
            rescanned: report.rescanned,
            replayed: report.replayed,
            digest_hits: report.digest_hits,
        });
    }
    let mut delta_record = None;
    if delta > 0 {
        let base = *sizes.last().expect("sizes is non-empty");
        let grown = base + delta;
        let start = Instant::now();
        let report =
            streamed_scan_with_threads(tool.as_ref(), &builder_for(grown), shard_units, threads);
        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        if report.replayed == 0 {
            return Err(format!(
                "delta rerun replayed nothing — the base run's manifests were not found \
                 in {cache_dir}"
            ));
        }
        println!(
            "scale delta: base={base} grown={grown} rescanned={} replayed={}",
            report.rescanned, report.replayed
        );
        eprintln!(
            "  delta rerun: {wall_ms} ms, {} digest hits",
            report.digest_hits
        );
        delta_record = Some(ScaleDelta {
            base_units: base as u64,
            grown_units: grown as u64,
            rescanned: report.rescanned,
            replayed: report.replayed,
            digest_hits: report.digest_hits,
            wall_ms,
        });
    }
    let record = ScaleRecord {
        tool: tool.name(),
        seed,
        shard_units: shard_units as u64,
        threads: threads as u64,
        points,
        delta: delta_record,
    };
    let json = serde_json::to_string_pretty(&record)
        .map_err(|e| format!("cannot serialize scale record: {e}"))?;
    std::fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("record written to {out}");
    let perf_dir = flags
        .get("perf-history")
        .map(std::path::PathBuf::from)
        .or_else(vdbench_perfwatch::env_dir);
    if let Some(dir) = perf_dir {
        append_scale_history(&dir, &record, assert_flat)?;
    }
    if let Some(factor) = assert_flat {
        let (first, last) = (
            record
                .points
                .first()
                .ok_or("--assert-flat needs at least one point")?,
            record.points.last().expect("points is non-empty"),
        );
        if first.peak_rss_kb > 0 {
            let ratio = last.peak_rss_kb as f64 / first.peak_rss_kb as f64;
            if ratio > factor {
                return Err(format!(
                    "peak RSS grew {ratio:.2}x from {} to {} units (limit {factor}x)",
                    first.units, last.units
                ));
            }
            eprintln!(
                "flat-memory check: peak RSS {ratio:.2}x from {} to {} units (limit {factor}x)",
                first.units, last.units
            );
        }
    }
    Ok(())
}

/// Append the scale run to the perfwatch ledger. Memory growth across the
/// curve is the gated series (a ratio is comparable across machines); raw
/// wall-clock and RSS ride along as advisory context.
fn append_scale_history(
    dir: &std::path::Path,
    record: &vdbench::core::ScaleRecord,
    assert_flat: Option<f64>,
) -> Result<(), String> {
    use vdbench_perfwatch::{append_entry, now_ms, RunEntry, Series};
    let mut series = Vec::new();
    if let (Some(first), Some(last)) = (record.points.first(), record.points.last()) {
        if record.points.len() >= 2 && first.peak_rss_kb > 0 {
            series.push(Series::bounded(
                "rss_growth",
                "ratio",
                "lower",
                true,
                vec![last.peak_rss_kb as f64 / first.peak_rss_kb as f64],
                assert_flat.unwrap_or(1.5),
            ));
        }
        series.push(Series::delta(
            "wall_ms",
            "ms",
            "lower",
            false,
            vec![last.wall_ms as f64],
        ));
        if last.peak_rss_kb > 0 {
            series.push(Series::delta(
                "peak_rss_kb",
                "kB",
                "lower",
                false,
                vec![last.peak_rss_kb as f64],
            ));
        }
    }
    if let Some(d) = &record.delta {
        // The warm incremental rerun is the latency the digest replay
        // path exists to protect — gate it.
        series.push(Series::delta(
            "warm_delta_ms",
            "ms",
            "lower",
            true,
            vec![d.wall_ms as f64],
        ));
    }
    let entry = RunEntry {
        source: "scale".to_string(),
        unix_ms: now_ms(),
        label: "scale".to_string(),
        provenance: String::new(),
        baseline: false,
        series,
    };
    let path = append_entry(dir, &entry)
        .map_err(|e| format!("cannot append perf history in {}: {e}", dir.display()))?;
    eprintln!("perf history appended to {}", path.display());
    Ok(())
}

fn cmd_perfwatch(flags: &Flags) -> Result<(), String> {
    let action = flags
        .get("action")
        .map(String::as_str)
        .expect("main() always sets the action for perfwatch");
    let dir = std::path::PathBuf::from(
        flags
            .get("history")
            .cloned()
            .unwrap_or_else(|| "results/perf-history".to_string()),
    );
    match action {
        "update" => {
            let note = flags
                .get("note")
                .cloned()
                .unwrap_or_else(|| "re-baselined via vdbench perfwatch update".to_string());
            let source = flags.get("source").map(String::as_str);
            let flipped = vdbench_perfwatch::rebaseline_source(&dir, &note, source)
                .map_err(|e| format!("cannot re-baseline {}: {e}", dir.display()))?;
            if flipped == 0 {
                return Err(match source {
                    Some(s) => format!("no `{s}` history to re-baseline in {}", dir.display()),
                    None => format!("no history to re-baseline in {}", dir.display()),
                });
            }
            println!(
                "re-baselined {flipped} ledger file(s) in {} ({note})",
                dir.display()
            );
            Ok(())
        }
        "check" => {
            let config = vdbench_perfwatch::Config {
                alpha: flag_f64(flags, "alpha", 0.05)?,
                min_effect: flag_f64(flags, "min-effect", 0.05)?,
                replicates: flag_usize(flags, "replicates", 2000)?,
                rounds: flag_usize(flags, "rounds", 2000)?,
                level: flag_f64(flags, "level", 0.95)?,
                source: flags.get("source").cloned(),
            };
            let entries = vdbench_perfwatch::load_dir(&dir)
                .map_err(|e| format!("cannot load perf history from {}: {e}", dir.display()))?;
            if entries.is_empty() {
                return Err(format!(
                    "no perf history in {} — run the benches with --perf-history \
                     (or VDBENCH_PERF_HISTORY) first",
                    dir.display()
                ));
            }
            let analysis = vdbench_perfwatch::analyze(&entries, &config);
            let out = flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| "perfwatch-trend.md".to_string());
            let trend = vdbench_perfwatch::render::trend_markdown(&analysis);
            std::fs::write(&out, &trend).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("trend table written to {out}");
            let summary = vdbench_perfwatch::render::summary_line(&analysis);
            if analysis.failed() {
                Err(summary)
            } else {
                println!("{summary}");
                Ok(())
            }
        }
        other => Err(format!("unreachable action `{other}`")),
    }
}

fn cmd_cache(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("dir")
        .cloned()
        .unwrap_or_else(|| "target/vdbench-cache".to_string());
    let gc = match flags.get("gc").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(v) => return Err(format!("--gc expects on|off, got `{v}`")),
    };
    let path = std::path::Path::new(&dir);
    let inv = vdbench::core::blob_inventory_in(path);
    println!(
        "blob store {dir}: {} live blobs, {} bytes",
        inv.live_count(),
        inv.live_bytes()
    );
    for (kind, (count, bytes)) in &inv.kinds {
        println!("  {kind:<10} {count:>6} blobs {bytes:>12} bytes");
    }
    if inv.stale.0 > 0 {
        println!(
            "  {:<10} {:>6} blobs {:>12} bytes (older schema)",
            "stale", inv.stale.0, inv.stale.1
        );
    }
    if inv.tmp.0 > 0 {
        println!(
            "  {:<10} {:>6} files {:>12} bytes (abandoned writes)",
            "tmp", inv.tmp.0, inv.tmp.1
        );
    }
    if gc {
        let (files, bytes) = vdbench::core::gc_dir(path);
        println!("gc: removed {files} files, {bytes} bytes reclaimed");
    }
    Ok(())
}

fn cmd_bench(flags: &Flags) -> Result<(), String> {
    let seed = flag_u64(flags, "seed", 2015)?;
    let wanted = flags.get("scenario").map(String::as_str);
    for scenario in standard_scenarios() {
        if let Some(w) = wanted {
            if !scenario.id.label().eq_ignore_ascii_case(w) {
                continue;
            }
        }
        let report = run_case_study(&scenario, seed).map_err(|e| e.to_string())?;
        println!(
            "{}",
            report
                .to_table(&format!("{} — {}", scenario.id, scenario.name))
                .render_ascii()
        );
    }
    Ok(())
}

fn cmd_select(flags: &Flags) -> Result<(), String> {
    let noise = flag_f64(flags, "noise", 0.25)?;
    let experts = flag_usize(flags, "experts", 7)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let selector = MetricSelector::new(default_candidates(), AssessmentConfig::default())
        .map_err(|e| e.to_string())?;
    for scenario in standard_scenarios() {
        let panel = Panel::homogeneous(&scenario.weight_vector(), experts, noise, seed);
        let outcome = selector
            .select(&scenario, &panel)
            .map_err(|e| e.to_string())?;
        let names: Vec<&str> = selector.candidates().iter().map(|m| m.abbrev()).collect();
        println!(
            "{}: analytical {} | MCDA {} (τ {:.2}, CR {})",
            scenario.id,
            names[outcome.analytical_ranking[0]],
            names[outcome.mcda_ranking[0]],
            outcome.agreement_tau,
            outcome
                .consistency_ratio
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "—".into()),
        );
    }
    Ok(())
}

fn cmd_recommend(flags: &Flags) -> Result<(), String> {
    let fp_cost = flag_f64(flags, "fp-cost", 1.0)?;
    let fn_cost = flag_f64(flags, "fn-cost", 5.0)?;
    let prevalence = flag_f64(flags, "prevalence", 0.2)?;
    if fp_cost <= 0.0 || fn_cost <= 0.0 {
        return Err("--fp-cost and --fn-cost must be positive".into());
    }
    if !(prevalence > 0.0 && prevalence < 1.0) {
        return Err("--prevalence must be in (0, 1)".into());
    }
    let scenario = vdbench::core::Scenario::custom(fp_cost, fn_cost, prevalence);
    println!("{}\n", scenario.description);
    let selector = MetricSelector::new(default_candidates(), AssessmentConfig::default())
        .map_err(|e| e.to_string())?;
    let (scores, ranking) = selector.analytical(&scenario);
    println!("recommended metrics (best first):");
    for (rank, &i) in ranking.iter().take(5).enumerate() {
        let m = &selector.candidates()[i];
        println!(
            "  {}. {:8} (score {:.3}) — {}",
            rank + 1,
            m.abbrev(),
            scores[i],
            m.name()
        );
    }
    Ok(())
}

fn cmd_report(flags: &Flags) -> Result<(), String> {
    let seed = flag_u64(flags, "seed", 2015)?;
    let report = vdbench::core::campaign::markdown_report(seed).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn cmd_consistency(flags: &Flags) -> Result<(), String> {
    let units = flag_usize(flags, "units", 400)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let cfg = ConsistencyConfig {
        units,
        seed,
        ..ConsistencyConfig::default()
    };
    let tools = standard_tools(seed);
    let metrics = default_candidates();
    let results = cross_workload_consistency(&tools, &metrics, &cfg).map_err(|e| e.to_string())?;
    println!(
        "cross-workload consistency over densities {:?}:",
        cfg.densities
    );
    for r in results {
        println!(
            "  {:8} W = {:.3}  (Friedman p = {:.4}, {} workloads)",
            r.metric.to_string(),
            r.kendall_w,
            r.friedman_p,
            r.defined_workloads
        );
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let cache_dir = flags
        .get("cache-dir")
        .cloned()
        .unwrap_or_else(|| "target/vdbench-cache".to_string());
    let max_inflight = flag_usize(flags, "max-inflight", 64)?;
    let client_budget = match flags.get("client-budget") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--client-budget expects an integer, got `{v}`"))?,
        ),
    };
    vdbench::core::set_disk_cache(Some(std::path::PathBuf::from(&cache_dir)));
    let handle = vdbench::server::start(vdbench::server::ServerConfig {
        addr,
        service: vdbench::server::ServiceConfig {
            max_inflight,
            client_budget,
            ..Default::default()
        },
    })
    .map_err(|e| format!("cannot bind server: {e}"))?;
    println!(
        "vdbench serve listening on {} (cache {cache_dir}, max-inflight {max_inflight}{})",
        handle.addr(),
        client_budget
            .map(|b| format!(", client-budget {b}"))
            .unwrap_or_default(),
    );
    handle.wait();
    Ok(())
}

fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    let artifacts = match flags.get("artifacts").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(v) => return Err(format!("--artifacts expects on|off, got `{v}`")),
    };
    let cfg = vdbench::server::LoadgenConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7071".to_string()),
        duration_secs: flag_f64(flags, "duration-secs", 3.0)?,
        connections: flag_usize(flags, "connections", 8)?,
        seed: flag_u64(flags, "seed", 2015)?,
        pool_scans: flag_usize(flags, "pool-scans", 64)?,
        artifacts,
        out: Some(
            flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| "BENCH_serve.json".to_string()),
        ),
        perf_history: flags
            .get("perf-history")
            .cloned()
            .or_else(|| vdbench_perfwatch::env_dir().map(|p| p.to_string_lossy().into_owned())),
    };
    let record = vdbench::server::loadgen::run(&cfg)
        .map_err(|e| format!("loadgen against {} failed: {e}", cfg.addr))?;
    println!(
        "seed pass: {} requests over {} keys in {:.2}s ({} cold, {} coalesced, {} errors)",
        record.seed_pass.requests,
        record.pool_size,
        record.seed_pass.duration_secs,
        record.seed_pass.cold_misses,
        record.seed_pass.coalesced,
        record.seed_pass.errors,
    );
    println!(
        "measured: {} requests in {:.2}s = {:.0} req/s, p50 {}µs, p99 {}µs, \
         warm-hit ratio {:.3}, {} errors",
        record.requests,
        record.duration_secs,
        record.throughput_rps,
        record.p50_us,
        record.p99_us,
        record.warm_hit_ratio,
        record.errors,
    );
    if let Some(out) = &cfg.out {
        println!("record written to {out}");
    }
    Ok(())
}
