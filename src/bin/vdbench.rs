//! The `vdbench` command-line interface.
//!
//! A thin, dependency-free front-end over the library for downstream users
//! who want results without writing Rust:
//!
//! ```sh
//! vdbench generate --units 50 --density 0.3 --seed 7 --show 2
//! vdbench scan --tool taint --units 200 --density 0.3
//! vdbench bench --scenario S3
//! vdbench select --noise 0.25
//! vdbench consistency
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use vdbench::core::campaign::{run_case_study, standard_tools};
use vdbench::core::consistency::{cross_workload_consistency, ConsistencyConfig};
use vdbench::core::scenario::standard_scenarios;
use vdbench::core::selection::{default_candidates, MetricSelector};
use vdbench::core::AssessmentConfig;
use vdbench::corpus::pretty::unit_to_string;
use vdbench::prelude::*;

const USAGE: &str = "\
vdbench — benchmarking vulnerability detection tools (DSN'15 reproduction)

USAGE:
    vdbench <command> [--flag value]...

COMMANDS:
    generate     Generate a MiniWeb corpus and print its statistics
                 (--units N, --density F, --seed N, --stored-rate F,
                  --show K: pretty-print the first K units,
                  --out FILE: also save the corpus as JSON)
    scan         Run one detection tool over a corpus
                 (--tool pattern|pattern-cons|taint|taint-shallow|
                  pentest|pentest-quick|pentest-stateful,
                  --units N, --density F, --seed N,
                  --corpus FILE: scan a saved corpus instead of generating)
    bench        Run the full scenario case study (--scenario S1|S2|S3|S4,
                  --seed N)
    select       Per-scenario metric selection + MCDA validation
                 (--noise F, --experts N, --seed N)
    consistency  Cross-workload ranking-consistency study (--units N,
                  --seed N)
    report       Full campaign report as Markdown on stdout (--seed N)
    recommend    Recommend a benchmark metric for YOUR scenario
                 (--fp-cost F, --fn-cost F, --prevalence F)
    help         Show this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "scan" => cmd_scan(&flags),
        "bench" => cmd_bench(&flags),
        "select" => cmd_select(&flags),
        "consistency" => cmd_consistency(&flags),
        "report" => cmd_report(&flags),
        "recommend" => cmd_recommend(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs; rejects stray positionals and dangling keys.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{key}` (flags are --key value)"
            ));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} is missing a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_usize(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn flag_u64(flags: &BTreeMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn flag_f64(flags: &BTreeMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

/// Loads a corpus from `--corpus FILE` when given, otherwise generates one
/// from the numeric flags.
fn load_or_build_corpus(
    flags: &BTreeMap<String, String>,
) -> Result<vdbench::corpus::Corpus, String> {
    if let Some(path) = flags.get("corpus") {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read corpus file {path}: {e}"))?;
        return serde_json::from_str(&json)
            .map_err(|e| format!("cannot parse corpus file {path}: {e}"));
    }
    build_corpus(flags)
}

fn build_corpus(flags: &BTreeMap<String, String>) -> Result<vdbench::corpus::Corpus, String> {
    let units = flag_usize(flags, "units", 200)?;
    let density = flag_f64(flags, "density", 0.3)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let stored_rate = flag_f64(flags, "stored-rate", 0.12)?;
    if !(0.0..=1.0).contains(&density) {
        return Err("--density must be in [0, 1]".into());
    }
    if !(0.0..=1.0).contains(&stored_rate) {
        return Err("--stored-rate must be in [0, 1]".into());
    }
    Ok(CorpusBuilder::new()
        .units(units)
        .vulnerability_density(density)
        .stored_rate(stored_rate)
        .seed(seed)
        .build())
}

fn cmd_generate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let corpus = build_corpus(flags)?;
    let show = flag_usize(flags, "show", 0)?;
    if let Some(path) = flags.get("out") {
        let json =
            serde_json::to_string(&corpus).map_err(|e| format!("cannot serialize corpus: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("corpus saved to {path}");
    }
    let stats = corpus.stats();
    println!(
        "corpus: {} units / {} sites, {} vulnerable ({:.1}% prevalence), {} statements, seed {:#x}",
        stats.units,
        stats.sites,
        stats.vulnerable_sites,
        stats.prevalence * 100.0,
        stats.total_statements,
        corpus.seed(),
    );
    println!("\nby class:");
    for (class, count) in &stats.by_class {
        println!(
            "  {:32} {:>4} sites, {:>3} vulnerable",
            class.to_string(),
            count.total,
            count.vulnerable
        );
    }
    println!("\nby flow shape:");
    for (shape, count) in &stats.by_shape {
        println!("  {shape:?}: {count}");
    }
    for unit in corpus.units().iter().take(show) {
        println!("\n{}", unit_to_string(unit));
    }
    Ok(())
}

fn tool_by_name(name: &str) -> Result<Box<dyn Detector>, String> {
    Ok(match name {
        "pattern" => Box::new(PatternScanner::aggressive()),
        "pattern-cons" => Box::new(PatternScanner::conservative()),
        "taint" => Box::new(TaintAnalyzer::precise()),
        "taint-shallow" => Box::new(TaintAnalyzer::shallow()),
        "pentest" => Box::new(DynamicScanner::thorough()),
        "pentest-quick" => Box::new(DynamicScanner::quick()),
        "pentest-stateful" => Box::new(DynamicScanner::stateful()),
        other => return Err(format!("unknown tool `{other}` (see `vdbench help`)")),
    })
}

fn cmd_scan(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let tool_name = flags
        .get("tool")
        .ok_or("scan needs --tool (see `vdbench help`)")?;
    let tool = tool_by_name(tool_name)?;
    let corpus = load_or_build_corpus(flags)?;
    let outcome = score_detector(tool.as_ref(), &corpus);
    let cm = outcome.confusion();
    println!(
        "{} on {} cases: {}",
        outcome.tool(),
        corpus.site_count(),
        cm
    );
    for metric in default_candidates() {
        use vdbench::metrics::metric::MetricExt;
        let v = metric.compute_or_nan(&cm);
        println!(
            "  {:8} {}",
            metric.abbrev(),
            vdbench::report::format::metric(v)
        );
    }
    // Show a couple of findings with their rationale.
    let findings = tool.analyze_corpus(&corpus);
    println!("\n{} findings; first three:", findings.len());
    for f in findings.iter().take(3) {
        println!(
            "  {} [{}] {}",
            f.site,
            f.class.map(|c| c.name()).unwrap_or("?"),
            f.rationale
        );
    }
    Ok(())
}

fn cmd_bench(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let seed = flag_u64(flags, "seed", 2015)?;
    let wanted = flags.get("scenario").map(String::as_str);
    for scenario in standard_scenarios() {
        if let Some(w) = wanted {
            if !scenario.id.label().eq_ignore_ascii_case(w) {
                continue;
            }
        }
        let report = run_case_study(&scenario, seed).map_err(|e| e.to_string())?;
        println!(
            "{}",
            report
                .to_table(&format!("{} — {}", scenario.id, scenario.name))
                .render_ascii()
        );
    }
    Ok(())
}

fn cmd_select(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let noise = flag_f64(flags, "noise", 0.25)?;
    let experts = flag_usize(flags, "experts", 7)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let selector = MetricSelector::new(default_candidates(), AssessmentConfig::default())
        .map_err(|e| e.to_string())?;
    for scenario in standard_scenarios() {
        let panel = Panel::homogeneous(&scenario.weight_vector(), experts, noise, seed);
        let outcome = selector
            .select(&scenario, &panel)
            .map_err(|e| e.to_string())?;
        let names: Vec<&str> = selector.candidates().iter().map(|m| m.abbrev()).collect();
        println!(
            "{}: analytical {} | MCDA {} (τ {:.2}, CR {})",
            scenario.id,
            names[outcome.analytical_ranking[0]],
            names[outcome.mcda_ranking[0]],
            outcome.agreement_tau,
            outcome
                .consistency_ratio
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "—".into()),
        );
    }
    Ok(())
}

fn cmd_recommend(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let fp_cost = flag_f64(flags, "fp-cost", 1.0)?;
    let fn_cost = flag_f64(flags, "fn-cost", 5.0)?;
    let prevalence = flag_f64(flags, "prevalence", 0.2)?;
    if fp_cost <= 0.0 || fn_cost <= 0.0 {
        return Err("--fp-cost and --fn-cost must be positive".into());
    }
    if !(prevalence > 0.0 && prevalence < 1.0) {
        return Err("--prevalence must be in (0, 1)".into());
    }
    let scenario = vdbench::core::Scenario::custom(fp_cost, fn_cost, prevalence);
    println!("{}\n", scenario.description);
    let selector = MetricSelector::new(default_candidates(), AssessmentConfig::default())
        .map_err(|e| e.to_string())?;
    let (scores, ranking) = selector.analytical(&scenario);
    println!("recommended metrics (best first):");
    for (rank, &i) in ranking.iter().take(5).enumerate() {
        let m = &selector.candidates()[i];
        println!(
            "  {}. {:8} (score {:.3}) — {}",
            rank + 1,
            m.abbrev(),
            scores[i],
            m.name()
        );
    }
    Ok(())
}

fn cmd_report(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let seed = flag_u64(flags, "seed", 2015)?;
    let report = vdbench::core::campaign::markdown_report(seed).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn cmd_consistency(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let units = flag_usize(flags, "units", 400)?;
    let seed = flag_u64(flags, "seed", 2015)?;
    let cfg = ConsistencyConfig {
        units,
        seed,
        ..ConsistencyConfig::default()
    };
    let tools = standard_tools(seed);
    let metrics = default_candidates();
    let results = cross_workload_consistency(&tools, &metrics, &cfg).map_err(|e| e.to_string())?;
    println!(
        "cross-workload consistency over densities {:?}:",
        cfg.densities
    );
    for r in results {
        println!(
            "  {:8} W = {:.3}  (Friedman p = {:.4}, {} workloads)",
            r.metric.to_string(),
            r.kendall_w,
            r.friedman_p,
            r.defined_workloads
        );
    }
    Ok(())
}
