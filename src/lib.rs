//! # vdbench — benchmarking vulnerability detection tools
//!
//! Facade crate for the `vdbench` workspace, a production-quality Rust
//! reproduction of *"On the Metrics for Benchmarking Vulnerability Detection
//! Tools"* (N. Antunes and M. Vieira, DSN 2015).
//!
//! The workspace answers the paper's question — *which metric should a
//! vulnerability-detection benchmark report?* — with runnable machinery:
//!
//! * [`metrics`] — confusion matrices and a 25+ entry metric catalog;
//! * [`corpus`] — the `MiniWeb` synthetic vulnerable-code workload generator;
//! * [`detectors`] — real detection tools (pattern, taint dataflow, dynamic
//!   pentesting) plus parameterized tool-profile emulation;
//! * [`core`] — the benchmark runner, the *characteristics of a good metric*
//!   assessment engine, usage scenarios and per-scenario metric selection;
//! * [`mcda`] + [`experts`] — the AHP/SAW/TOPSIS machinery and simulated
//!   expert panels used to validate the analytical selection;
//! * [`stats`] and [`report`] — statistics and output rendering substrates;
//! * [`server`] — the `vdbench serve` campaign service and its load
//!   generator, a stateless compute tier over the content-addressed blob
//!   store.
//!
//! # Quickstart
//!
//! ```
//! use vdbench::prelude::*;
//!
//! // Generate a workload, run a real analyzer, and score it.
//! let corpus = CorpusBuilder::new()
//!     .units(50)
//!     .vulnerability_density(0.3)
//!     .seed(7)
//!     .build();
//! let tool = TaintAnalyzer::default();
//! let outcome = score_detector(&tool, &corpus);
//! let cm = outcome.confusion();
//! let recall = Recall.compute(&cm).unwrap();
//! assert!(recall > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vdbench_core as core;
pub use vdbench_corpus as corpus;
pub use vdbench_detectors as detectors;
pub use vdbench_experts as experts;
pub use vdbench_mcda as mcda;
pub use vdbench_metrics as metrics;
pub use vdbench_report as report;
pub use vdbench_server as server;
pub use vdbench_stats as stats;
pub use vdbench_telemetry as telemetry;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use vdbench_core::{
        attributes::AttributeAssessment,
        benchmark::{Benchmark, BenchmarkReport},
        ranking::{rank_by_metric, RankingTable},
        scenario::{Scenario, ScenarioId},
        selection::{MetricSelector, SelectionOutcome},
    };
    pub use vdbench_corpus::{Corpus, CorpusBuilder, VulnClass};
    pub use vdbench_detectors::{
        score_detector, Detector, DynamicScanner, PatternScanner, ProfileTool, TaintAnalyzer,
    };
    pub use vdbench_experts::{Expert, Panel};
    pub use vdbench_mcda::{ahp::Ahp, pairwise::PairwiseMatrix};
    pub use vdbench_metrics::{
        basic::{Precision, Recall},
        catalog::{standard_catalog, MetricId},
        confusion::ConfusionMatrix,
        metric::Metric,
    };
    pub use vdbench_stats::{Bootstrap, Confidence, SeededRng, Summary};
}
