//! Quickstart: generate a workload, run two real detection tools, and see
//! why the metric choice decides the winner.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vdbench::metrics::cost::ExpectedCost;
use vdbench::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic-but-principled workload: 200 web-handler code units,
    //    30% of them vulnerable, with ground truth known by construction.
    let corpus = CorpusBuilder::new()
        .units(200)
        .vulnerability_density(0.3)
        .seed(2015)
        .build();
    let stats = corpus.stats();
    println!(
        "workload: {} units, {} vulnerable ({:.1}% prevalence)\n",
        stats.units,
        stats.vulnerable_sites,
        stats.prevalence * 100.0
    );

    // 2. Two real tools with opposite personalities: a static taint
    //    analyzer (finds almost everything, flags dead code) and a dynamic
    //    scanner (proves every exploit, misses gated flows).
    let taint = TaintAnalyzer::precise();
    let pentest = DynamicScanner::thorough();
    let taint_outcome = score_detector(&taint, &corpus);
    let pentest_outcome = score_detector(&pentest, &corpus);

    for outcome in [&taint_outcome, &pentest_outcome] {
        let cm = outcome.confusion();
        println!("{:18} {}", outcome.tool(), cm);
    }

    // 3. The paper's point: ask two reasonable metrics who won and get two
    //    different answers.
    let recall = Recall;
    let audit_cost = ExpectedCost::fp_heavy(); // false alarms cost 10x
    let by_recall = rank_by_metric(&[taint_outcome.clone(), pentest_outcome.clone()], &recall)?;
    let by_cost = rank_by_metric(&[taint_outcome, pentest_outcome], &audit_cost)?;
    println!("\nwinner by recall:        {}", by_recall.winner());
    println!("winner by audit cost:    {}", by_cost.winner());
    println!("\n→ the right metric depends on the usage scenario; see the");
    println!("  tool_selection example for the full selection pipeline.");
    Ok(())
}
