//! Benchmark **your own** detection tool: implement [`Detector`], drop it
//! into the standard benchmark, and read its row next to the built-in
//! tools — the downstream-adoption path for this library.
//!
//! The example implements a tiny "sink allowlist" tool: it reports any
//! SQL or shell sink whose argument is not entirely literal, and ignores
//! everything else.
//!
//! ```sh
//! cargo run --release --example custom_tool
//! ```

use vdbench::core::Benchmark;
use vdbench::corpus::{Corpus, Expr, SinkKind, Unit};
use vdbench::detectors::Finding;
use vdbench::metrics::basic::{Precision, Recall};
use vdbench::metrics::composite::Informedness;
use vdbench::prelude::*;

/// A deliberately simple third-party tool.
#[derive(Debug)]
struct SinkAllowlist;

impl Detector for SinkAllowlist {
    fn name(&self) -> String {
        "my-allowlist".into()
    }

    fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        unit.sinks()
            .into_iter()
            .filter(|(kind, arg, _)| {
                matches!(kind, SinkKind::SqlQuery | SinkKind::ShellExec) && !is_all_literal(arg)
            })
            .map(|(_, _, site)| {
                Finding::new(site, None, 0.5, "non-literal argument at a critical sink")
            })
            .collect()
    }
}

fn is_all_literal(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Str(_) | Expr::Bool(_) => true,
        Expr::Concat(a, b) => is_all_literal(a) && is_all_literal(b),
        Expr::Sanitize { arg, .. } => is_all_literal(arg),
        Expr::BinOp { lhs, rhs, .. } => is_all_literal(lhs) && is_all_literal(rhs),
        Expr::Var(_) | Expr::Source { .. } | Expr::StoreRead { .. } => false,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = CorpusBuilder::new()
        .units(300)
        .vulnerability_density(0.3)
        .seed(2026)
        .build();

    let report = Benchmark::new(corpus)
        .tool(Box::new(SinkAllowlist))
        .tool(Box::new(TaintAnalyzer::precise()))
        .tool(Box::new(DynamicScanner::thorough()))
        .metric(Box::new(Precision))
        .metric(Box::new(Recall))
        .metric(Box::new(Informedness))
        .run()?;

    println!(
        "{}",
        report
            .to_table("Your tool vs the built-in roster")
            .render_ascii()
    );
    println!(
        "{}",
        report
            .to_interval_table("…with 95% Wilson intervals", Confidence::P95)
            .render_ascii()
    );

    // Is the difference to the taint analyzer statistically real?
    let mine = &report.outcomes()[0];
    let taint = &report.outcomes()[1];
    let (b, c) = mine.discordance(taint);
    let test = vdbench::stats::hypothesis::mcnemar(b, c)?;
    println!(
        "McNemar vs taint-d3-precise: b = {b}, c = {c}, p = {:.4} → {}",
        test.p_value,
        if test.significant_at(0.05) {
            "the taint analyzer is genuinely better on this workload"
        } else {
            "not distinguishable on this workload"
        }
    );
    Ok(())
}
