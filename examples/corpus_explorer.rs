//! Inspect the MiniWeb corpus: pretty-print generated vulnerable code,
//! then attack it through the reference interpreter and watch taint reach
//! the sinks.
//!
//! ```sh
//! cargo run --example corpus_explorer
//! ```

use vdbench::corpus::pretty::unit_to_string;
use vdbench::corpus::{CorpusBuilder, Interpreter, Request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = CorpusBuilder::new()
        .units(40)
        .vulnerability_density(0.5)
        .seed(99)
        .build();

    // Show one vulnerable and one safe unit in full.
    let vulnerable = corpus
        .sites()
        .find(|s| s.vulnerable)
        .expect("50% density guarantees a vulnerable site");
    let safe = corpus
        .sites()
        .find(|s| !s.vulnerable)
        .expect("and a safe one");

    for info in [vulnerable, safe] {
        let unit = corpus.unit_of(info.site).expect("site has a unit");
        println!(
            "=== {} site {} — {:?}, {} ===",
            if info.vulnerable {
                "VULNERABLE"
            } else {
                "SAFE"
            },
            info.site,
            info.shape,
            info.class,
        );
        println!("{}", unit_to_string(unit));
    }

    // Attack the vulnerable unit with its recorded witness request and
    // observe the sink.
    let unit = corpus.unit_of(vulnerable.site).expect("unit exists");
    let witness = vulnerable
        .witness
        .clone()
        .expect("vulnerable sites have witnesses");
    let interp = Interpreter::default();
    println!(
        "--- executing the witness attack session ({} request(s)) ---",
        witness.len()
    );
    for obs in interp.run_session(unit, &witness)? {
        println!(
            "site {} [{}] received {:?} — tainted: {} (sources: {:?})",
            obs.site,
            obs.kind.keyword(),
            obs.rendered,
            obs.tainted,
            obs.offending_sources,
        );
    }

    // A benign request by contrast.
    println!("\n--- executing a benign request ---");
    for obs in interp.run(unit, &Request::new().with_param("id", "42"))? {
        println!(
            "site {} [{}] received {:?} — tainted: {}",
            obs.site,
            obs.kind.keyword(),
            obs.rendered,
            obs.tainted,
        );
    }

    // Corpus-wide statistics.
    let stats = corpus.stats();
    println!(
        "\ncorpus: {} units, {} statements",
        stats.units, stats.total_statements
    );
    for (shape, count) in &stats.by_shape {
        println!("  {shape:?}: {count}");
    }
    Ok(())
}
