//! The MCDA machinery stand-alone: elicit a panel of simulated experts,
//! check their consistency, aggregate judgments and solve an AHP.
//!
//! ```sh
//! cargo run --example expert_panel
//! ```

use vdbench::experts::Panel;
use vdbench::mcda::ahp::Ahp;
use vdbench::mcda::consistency::check;
use vdbench::mcda::decision::Direction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Latent truth: the panel believes cost alignment dominates, then
    // validity, then simplicity.
    let latent = [0.55, 0.30, 0.15];
    let criteria = ["cost alignment", "validity", "simplicity"];

    let panel = Panel::diverse(&latent, 5, 0.3, 0.25, 7);
    println!(
        "panel of {} experts, inter-expert agreement W = {:.3}\n",
        panel.experts().len(),
        panel.agreement()?
    );

    for expert in panel.experts() {
        let m = expert.elicit();
        let (pv, report) = check(&m)?;
        println!(
            "{}: weights {:?} (CR {})",
            expert.name(),
            pv.weights
                .iter()
                .map(|w| format!("{w:.2}"))
                .collect::<Vec<_>>(),
            report
                .cr
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "—".into()),
        );
    }

    // Aggregate (geometric mean preserves reciprocity) and run an AHP over
    // three candidate metrics rated on the three criteria.
    let consensus = panel.aggregate()?;
    println!("\naggregated judgments:\n{consensus}");

    let ahp = Ahp::with_ratings(
        criteria.iter().map(|c| c.to_string()).collect(),
        consensus,
        vec!["NEC-fn".into(), "TPR".into(), "ACC".into()],
        vec![
            vec![0.95, 0.91, 0.60], // cost metric: aligned, valid, less simple
            vec![0.90, 0.79, 1.00], // recall: decent everywhere, simplest
            vec![0.55, 0.88, 1.00], // accuracy: misaligned with the cost model
        ],
        vec![Direction::Benefit; 3],
    )?;
    let result = ahp.solve()?;
    println!("criteria weights: {:?}", result.criteria_weights);
    println!(
        "ranking: {:?} (consistent: {})",
        result
            .ranking
            .iter()
            .map(|&i| ahp.alternative_names()[i].as_str())
            .collect::<Vec<_>>(),
        result.is_consistent(),
    );
    Ok(())
}
