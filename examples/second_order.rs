//! Second-order (stored) injection: why single-request scanning is
//! structurally blind, and what it takes from each tool family to catch a
//! flow that crosses a persistence boundary.
//!
//! ```sh
//! cargo run --release --example second_order
//! ```

use vdbench::corpus::pretty::unit_to_string;
use vdbench::corpus::{FlowShape, Interpreter, VulnClass};
use vdbench::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus where every vulnerable flow is second-order: the payload is
    // written to the store by a `action=save` request and reaches the sink
    // when a later request reads it back.
    let corpus = CorpusBuilder::new()
        .units(120)
        .vulnerability_density(0.5)
        .stored_rate(1.0)
        .decoy_rate(0.0)
        .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
        .seed(77)
        .build();

    let info = corpus
        .sites()
        .find(|s| s.shape == FlowShape::Stored)
        .expect("stored flows exist");
    let unit = corpus.unit_of(info.site).unwrap();
    println!("a stored-injection unit:\n\n{}", unit_to_string(unit));

    // Replay the two-phase witness attack.
    let witness = info.witness.as_ref().unwrap();
    let interp = Interpreter::default();
    println!("--- session: save payload, then trigger ---");
    for obs in interp.run_session(unit, witness)? {
        println!(
            "  [{}] {:?} tainted={}",
            obs.kind.keyword(),
            obs.rendered,
            obs.tainted
        );
    }
    println!("--- the trigger request alone (fresh store) ---");
    for obs in interp.run(unit, &witness[1])? {
        println!(
            "  [{}] {:?} tainted={}",
            obs.kind.keyword(),
            obs.rendered,
            obs.tainted
        );
    }

    // Tool-family comparison on the stored shape.
    println!("\ntool behaviour on stored flows:");
    let tools: Vec<Box<dyn Detector>> = vec![
        Box::new(DynamicScanner::thorough()),
        Box::new(DynamicScanner::stateful()),
        Box::new(TaintAnalyzer::precise()),
        Box::new(TaintAnalyzer::precise().track_store(false)),
        Box::new(PatternScanner::aggressive()),
    ];
    for tool in &tools {
        let outcome = score_detector(tool.as_ref(), &corpus);
        let stored = outcome.confusion_for_shape(FlowShape::Stored);
        let literal = outcome.confusion_for_shape(FlowShape::StoredLiteral);
        println!(
            "  {:28} stored TPR {:>5.2}   stored-literal FPR {:>5.2}",
            tool.name(),
            stored.tpr(),
            if literal.total() > 0 {
                literal.fpr()
            } else {
                f64::NAN
            },
        );
    }
    println!(
        "\n→ the single-request scanner scores 0 by construction; the stateful\n\
         scanner and the heap-tracking taint analysis recover the flows; the\n\
         aggressive pattern scanner catches them too but false-alarms on\n\
         stored literals."
    );
    Ok(())
}
