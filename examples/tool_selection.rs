//! The full metric-selection pipeline: assess candidate metrics against
//! the characteristics of a good metric, pick the best metric for each
//! usage scenario, then use the *selected* metric to pick the best tool.
//!
//! ```sh
//! cargo run --release --example tool_selection
//! ```

use vdbench::core::attributes::AssessmentConfig;
use vdbench::core::campaign::run_case_study;
use vdbench::core::scenario::standard_scenarios;
use vdbench::core::selection::{default_candidates, MetricSelector};
use vdbench::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AssessmentConfig::default();
    println!(
        "assessing {} candidate metrics…\n",
        default_candidates().len()
    );
    let selector = MetricSelector::new(default_candidates(), cfg)?;

    for scenario in standard_scenarios() {
        // Analytical selection: attribute scores × scenario requirements.
        let (scores, ranking) = selector.analytical(&scenario);
        let best = &selector.candidates()[ranking[0]];
        println!(
            "{} — {}\n  selected metric: {} (score {:.3})",
            scenario.id,
            scenario.name,
            best.abbrev(),
            scores[ranking[0]],
        );

        // Validate with an expert panel + AHP.
        let panel = Panel::homogeneous(&scenario.weight_vector(), 7, 0.2, 42);
        let outcome = selector.select(&scenario, &panel)?;
        println!(
            "  MCDA validation:  {} (τ = {:.2}, winners {})",
            selector.candidates()[outcome.mcda_ranking[0]].abbrev(),
            outcome.agreement_tau,
            if outcome.top1_agree {
                "agree"
            } else {
                "differ"
            },
        );

        // Now run the actual tool case study and rank tools with the
        // scenario's selected metric.
        let report = run_case_study(&scenario, 2015)?;
        let table = rank_by_metric(report.outcomes(), best.as_ref())?;
        println!("  best tool under {}: {}\n", best.abbrev(), table.winner());
    }
    Ok(())
}
