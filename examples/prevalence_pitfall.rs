//! The prevalence pitfall: the same two tools, benchmarked on workloads
//! that differ only in vulnerability density, swap places under precision
//! while informedness stays put — the S3 procurement scenario in action.
//!
//! ```sh
//! cargo run --example prevalence_pitfall
//! ```

use vdbench::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tool A: better detector overall. Tool B: quieter but blinder.
    let tool_a = ProfileTool::new("tool-A", 0.85, 0.10, 1);
    let tool_b = ProfileTool::new("tool-B", 0.55, 0.02, 2);
    let precision = Precision;
    let informedness = vdbench::metrics::composite::Informedness;

    println!(
        "{:>12} {:>10} {:>22} {:>22}",
        "density", "winner by", "PPV (A vs B)", "INF (A vs B)"
    );
    for &density in &[0.02, 0.05, 0.1, 0.3, 0.5] {
        let corpus = CorpusBuilder::new()
            .units(2000)
            .vulnerability_density(density)
            .seed(31)
            .build();
        let a = score_detector(&tool_a, &corpus);
        let b = score_detector(&tool_b, &corpus);
        let (ca, cb) = (a.confusion(), b.confusion());
        let ppv = (precision.compute(&ca)?, precision.compute(&cb)?);
        let inf = (informedness.compute(&ca)?, informedness.compute(&cb)?);
        let ppv_winner = if ppv.0 > ppv.1 { "A" } else { "B" };
        println!(
            "{:>11.0}% {:>10} {:>10.3} vs {:>7.3} {:>10.3} vs {:>7.3}",
            density * 100.0,
            format!("PPV: {ppv_winner}"),
            ppv.0,
            ppv.1,
            inf.0,
            inf.1,
        );
    }
    println!(
        "\nPrecision's verdict depends on the workload mix; informedness \
         (Youden's J)\nranks tool A first at every density — which is why the \
         procurement scenario\n(S3) selects a prevalence-invariant, \
         chance-corrected metric."
    );
    Ok(())
}
