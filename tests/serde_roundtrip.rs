//! Serialization round-trips: every data structure a benchmark campaign
//! would persist (corpora, ground truth, outcomes, reports, selections)
//! survives JSON serialization losslessly.

use vdbench::core::scenario::standard_scenarios;
use vdbench::core::selection::{default_candidates, MetricSelector};
use vdbench::core::AssessmentConfig;
use vdbench::corpus::{Corpus, SiteInfo};
use vdbench::detectors::DetectionOutcome;
use vdbench::prelude::*;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn confusion_matrix_roundtrips() {
    let cm = ConfusionMatrix::new(12, 3, 5, 80);
    assert_eq!(roundtrip(&cm), cm);
}

#[test]
fn corpus_and_ground_truth_roundtrip() {
    let corpus = CorpusBuilder::new()
        .units(40)
        .vulnerability_density(0.4)
        .stored_rate(0.3)
        .seed(99)
        .build();
    let back: Corpus = roundtrip(&corpus);
    assert_eq!(back, corpus);
    // Site records (including witness sessions) individually too.
    for info in corpus.sites() {
        let b: SiteInfo = roundtrip(info);
        assert_eq!(&b, info);
    }
}

#[test]
fn detection_outcomes_roundtrip() {
    let corpus = CorpusBuilder::new().units(30).seed(7).build();
    let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
    let back: DetectionOutcome = roundtrip(&outcome);
    assert_eq!(back, outcome);
    assert_eq!(back.confusion(), outcome.confusion());
}

#[test]
fn scenarios_roundtrip() {
    for scenario in standard_scenarios() {
        let back: Scenario = roundtrip(&scenario);
        assert_eq!(back, scenario);
        assert_eq!(back.weight_vector(), scenario.weight_vector());
    }
}

#[test]
fn selection_outcome_roundtrips() {
    let cfg = AssessmentConfig {
        workload_size: 150,
        reference_prevalence: 0.2,
        tool_sample: 30,
        replicates: 60,
        seed: 3,
    };
    let selector = MetricSelector::new(default_candidates(), cfg).unwrap();
    let scenario = standard_scenarios().remove(1);
    let panel = Panel::homogeneous(&scenario.weight_vector(), 3, 0.1, 5);
    let outcome = selector.select(&scenario, &panel).unwrap();
    let back = roundtrip(&outcome);
    assert_eq!(back, outcome);
    assert_eq!(back.mcda_best(), outcome.mcda_best());
}

#[test]
fn pairwise_matrix_roundtrips_and_stays_reciprocal() {
    let mut m = PairwiseMatrix::identity(4);
    m.set(0, 1, 3.0).unwrap();
    m.set(1, 3, 7.0).unwrap();
    m.set(2, 3, 0.5).unwrap();
    let back: PairwiseMatrix = roundtrip(&m);
    assert_eq!(back, m);
    assert!(back.is_reciprocal());
}

#[test]
fn requests_and_findings_roundtrip() {
    use vdbench::corpus::Request;
    use vdbench::detectors::Finding;
    let req = Request::new()
        .with_param("id", "x' OR '1'='1")
        .with_header("ua", "scanner")
        .with_cookie("sid", "42");
    let back: Request = roundtrip(&req);
    assert_eq!(back, req);
    let finding = Finding::new(
        vdbench::corpus::SiteId { unit: 3, sink: 0 },
        Some(VulnClass::Xss),
        0.8,
        "evidence",
    );
    let back: Finding = roundtrip(&finding);
    assert_eq!(back, finding);
}
