//! Fuzzing the language substrate: for *arbitrary* MiniWeb programs (not
//! just generator output), the interpreter, the taint analyzer and the
//! pattern scanner must never panic — they may reject programs with
//! errors, loop-bound out, or report nothing, but they must stay total.

use proptest::prelude::*;
use vdbench::corpus::{Corpus, Expr, Function, Interpreter, Request, SiteId, Stmt, Unit};
use vdbench::corpus::{SanitizerKind, SinkKind, SourceKind};
use vdbench::detectors::{Detector, PatternScanner, TaintAnalyzer};

fn arb_source_kind() -> impl Strategy<Value = SourceKind> {
    prop_oneof![
        Just(SourceKind::HttpParam),
        Just(SourceKind::HttpHeader),
        Just(SourceKind::Cookie),
    ]
}

fn arb_sink_kind() -> impl Strategy<Value = SinkKind> {
    prop_oneof![
        Just(SinkKind::SqlQuery),
        Just(SinkKind::HtmlOutput),
        Just(SinkKind::ShellExec),
        Just(SinkKind::FileOpen),
        Just(SinkKind::Authenticate),
        Just(SinkKind::CryptoHash),
    ]
}

fn arb_sanitizer() -> impl Strategy<Value = SanitizerKind> {
    prop_oneof![
        Just(SanitizerKind::EscapeSql),
        Just(SanitizerKind::EscapeHtml),
        Just(SanitizerKind::ShellQuote),
        Just(SanitizerKind::NormalizePath),
        Just(SanitizerKind::ValidateInt),
        Just(SanitizerKind::WhitelistCheck),
    ]
}

/// Small identifier pool so programs actually reference each other's
/// variables (both defined and undefined reads occur).
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("x".to_string()),
        Just("id".to_string()),
        Just("key".to_string()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Expr::Int),
        "[ -~]{0,12}".prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
        arb_name().prop_map(Expr::Var),
        (arb_source_kind(), arb_name()).prop_map(|(kind, name)| Expr::Source { kind, name }),
        arb_name().prop_map(|key| Expr::StoreRead { key }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Concat(Box::new(a), Box::new(b))),
            (arb_sanitizer(), inner.clone()).prop_map(|(kind, arg)| Expr::Sanitize {
                kind,
                arg: Box::new(arg)
            }),
            (inner.clone(), inner).prop_map(|(lhs, rhs)| Expr::BinOp {
                op: vdbench::corpus::ast::BinOp::Add,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (arb_name(), arb_expr()).prop_map(|(var, expr)| Stmt::Let { var, expr }),
        (arb_name(), arb_expr()).prop_map(|(var, expr)| Stmt::Assign { var, expr }),
        (arb_sink_kind(), arb_expr(), 0u32..4).prop_map(|(kind, arg, sink)| Stmt::Sink {
            kind,
            arg,
            site: SiteId { unit: 0, sink },
        }),
        (arb_name(), arb_expr()).prop_map(|(key, expr)| Stmt::StoreWrite { key, expr }),
        arb_expr().prop_map(Stmt::Return),
        // Calls to a possibly-unknown helper with wrong arity are allowed:
        // they must produce errors, not panics.
        (arb_name(), proptest::collection::vec(arb_expr(), 0..3)).prop_map(|(func, args)| {
            Stmt::Call {
                var: Some("r".to_string()),
                func,
                args,
            }
        }),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                }),
            (arb_expr(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(cond, body)| Stmt::While { cond, body }),
        ]
    })
}

fn arb_unit() -> impl Strategy<Value = Unit> {
    (
        proptest::collection::vec(arb_stmt(), 0..8),
        proptest::collection::vec(arb_stmt(), 0..4),
    )
        .prop_map(|(body, helper_body)| Unit {
            id: 0,
            handler: Function::new("handler", vec![], body),
            helpers: vec![Function::new("x", vec!["p".to_string()], helper_body)],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The interpreter is total on arbitrary programs: Ok or a structured
    /// ExecError, never a panic, even across multi-request sessions with
    /// hostile inputs.
    #[test]
    fn interpreter_never_panics(unit in arb_unit()) {
        let interp = Interpreter::with_limits(20_000, 64, 8);
        let hostile = Request::new()
            .with_param("id", "x' OR '1'='1")
            .with_param("a", "<script>")
            .with_header("key", "../../etc")
            .with_cookie("b", "; rm -rf /");
        let _ = interp.run(&unit, &Request::new());
        let _ = interp.run_session(&unit, &[hostile.clone(), Request::new(), hostile]);
    }

    /// Static analyzers are total on arbitrary programs.
    #[test]
    fn analyzers_never_panic(unit in arb_unit()) {
        let corpus = Corpus::from_parts(vec![unit.clone()], vec![], 0);
        for tool in [
            Box::new(TaintAnalyzer::precise()) as Box<dyn Detector>,
            Box::new(TaintAnalyzer::shallow()),
            Box::new(PatternScanner::aggressive()),
            Box::new(PatternScanner::conservative()),
        ] {
            let findings = tool.analyze(&corpus, &unit);
            // Findings must point at sinks that exist in the unit.
            let sinks: Vec<SiteId> = unit.sinks().iter().map(|(_, _, s)| *s).collect();
            for f in findings {
                prop_assert!(sinks.contains(&f.site), "{} invented a site", tool.name());
            }
        }
    }

    /// The pretty printer renders any program without panicking.
    #[test]
    fn pretty_printer_is_total(unit in arb_unit()) {
        let text = vdbench::corpus::pretty::unit_to_string(&unit);
        prop_assert!(text.contains("fn handler"));
    }
}
