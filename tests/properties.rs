//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use vdbench::metrics::basic::{
    Accuracy, Fallout, FalseDiscoveryRate, MissRate, Precision, Recall, Specificity,
};
use vdbench::metrics::composite::{FMeasure, Informedness, Markedness, Mcc};
use vdbench::metrics::metric::{Metric, MetricExt};
use vdbench::metrics::{standard_catalog, ConfusionMatrix};
use vdbench::stats::correlation::{kendall_tau, ranks, spearman};
use vdbench::stats::descriptive::quantile_sorted;
use vdbench::stats::intervals::{clopper_pearson, wilson, Confidence};
use vdbench::stats::Summary;

fn arb_matrix() -> impl Strategy<Value = ConfusionMatrix> {
    (0u64..500, 0u64..500, 0u64..500, 0u64..500)
        .prop_map(|(tp, fp, fn_, tn)| ConfusionMatrix::new(tp, fp, fn_, tn))
}

proptest! {
    /// Every catalog metric stays inside its declared range whenever it is
    /// defined, and never returns NaN through the Ok path.
    #[test]
    fn metrics_respect_declared_ranges(cm in arb_matrix()) {
        for m in standard_catalog() {
            if let Ok(v) = m.compute(&cm) {
                prop_assert!(!v.is_nan(), "{} returned NaN", m.abbrev());
                prop_assert!(
                    m.properties().range.contains(v),
                    "{} out of range on {cm}: {v}",
                    m.abbrev()
                );
            }
        }
    }

    /// Complementary metric pairs always sum to one where both are defined.
    #[test]
    fn complement_identities(cm in arb_matrix()) {
        let pairs: [(Box<dyn Metric>, Box<dyn Metric>); 3] = [
            (Box::new(Precision), Box::new(FalseDiscoveryRate)),
            (Box::new(Recall), Box::new(MissRate)),
            (Box::new(Specificity), Box::new(Fallout)),
        ];
        for (a, b) in pairs {
            if let (Ok(x), Ok(y)) = (a.compute(&cm), b.compute(&cm)) {
                prop_assert!((x + y - 1.0).abs() < 1e-9, "{}+{}", a.abbrev(), b.abbrev());
            }
        }
    }

    /// MCC is the geometric mean of informedness and markedness (with the
    /// matching sign).
    #[test]
    fn mcc_geometric_identity(cm in arb_matrix()) {
        if let (Ok(mcc), Ok(inf), Ok(mrk)) = (
            Mcc.compute(&cm),
            Informedness.compute(&cm),
            Markedness.compute(&cm),
        ) {
            // |MCC| = sqrt(|INF·MRK|); INF and MRK share MCC's sign
            // whenever all three are defined.
            prop_assert!((mcc.abs() - (inf * mrk).abs().sqrt()).abs() < 1e-9);
            if mcc.abs() > 1e-9 {
                prop_assert!(inf.signum() == mcc.signum() || inf == 0.0);
                prop_assert!(mrk.signum() == mcc.signum() || mrk == 0.0);
            }
        }
    }

    /// F1 lies between precision and recall.
    #[test]
    fn f1_between_precision_and_recall(cm in arb_matrix()) {
        if let (Ok(f1), Ok(p), Ok(r)) = (
            FMeasure::f1().compute(&cm),
            Precision.compute(&cm),
            Recall.compute(&cm),
        ) {
            let lo = p.min(r) - 1e-9;
            let hi = p.max(r) + 1e-9;
            prop_assert!(f1 >= lo && f1 <= hi, "f1 {f1} outside [{lo}, {hi}]");
        }
    }

    /// Accuracy is invariant under swapping the class labels AND the
    /// predictions (tp↔tn, fp↔fn).
    #[test]
    fn accuracy_label_swap_invariance(cm in arb_matrix()) {
        let swapped = ConfusionMatrix::new(cm.tn, cm.fn_, cm.fp, cm.tp);
        if let (Ok(a), Ok(b)) = (Accuracy.compute(&cm), Accuracy.compute(&swapped)) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Pooling two matrices never decreases any cell, and metric totals add.
    #[test]
    fn pooling_adds(a in arb_matrix(), b in arb_matrix()) {
        let sum = a + b;
        prop_assert_eq!(sum.total(), a.total() + b.total());
        prop_assert_eq!(sum.tp, a.tp + b.tp);
        prop_assert_eq!(sum.actual_positive(), a.actual_positive() + b.actual_positive());
    }

    /// Oriented scores are antitone in FP and FN: adding errors never helps.
    #[test]
    fn adding_errors_never_helps(cm in arb_matrix(), extra in 1u64..50) {
        let more_fp = ConfusionMatrix::new(cm.tp, cm.fp + extra, cm.fn_, cm.tn);
        let more_fn = ConfusionMatrix::new(cm.tp, cm.fp, cm.fn_ + extra, cm.tn);
        for m in [
            Box::new(Precision) as Box<dyn Metric>,
            Box::new(Accuracy),
            Box::new(FMeasure::f1()),
            Box::new(Informedness),
        ] {
            if let (Ok(base), Ok(worse)) = (m.oriented(&cm), m.oriented(&more_fp)) {
                prop_assert!(worse <= base + 1e-9, "{} improved with extra FP", m.abbrev());
            }
            if let (Ok(base), Ok(worse)) = (m.oriented(&cm), m.oriented(&more_fn)) {
                prop_assert!(worse <= base + 1e-9, "{} improved with extra FN", m.abbrev());
            }
        }
    }

    /// Wilson and Clopper–Pearson intervals are ordered, contain the point
    /// estimate, and CP (exact) contains Wilson's endpoints directionally.
    #[test]
    fn binomial_intervals_are_sane(k in 0u64..200, extra in 0u64..200) {
        let n = k + extra + 1;
        for f in [wilson, clopper_pearson] {
            let iv = f(k, n, Confidence::P95).unwrap();
            prop_assert!(iv.lower <= iv.estimate + 1e-12);
            prop_assert!(iv.upper >= iv.estimate - 1e-12);
            prop_assert!(iv.lower >= 0.0 && iv.upper <= 1.0);
        }
    }

    /// Mid-ranks are a permutation-respecting assignment: they sum to
    /// n(n+1)/2 regardless of ties.
    #[test]
    fn ranks_sum_invariant(values in proptest::collection::vec(-100i32..100, 1..60)) {
        let floats: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        let r = ranks(&floats);
        let n = floats.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    /// Rank correlations are symmetric, bounded, and exactly 1 on self.
    #[test]
    fn correlation_properties(values in proptest::collection::vec(-1000i32..1000, 3..40)) {
        let x: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        if let Ok(tau) = kendall_tau(&x, &y) {
            prop_assert!((tau - 1.0).abs() < 1e-9, "monotone transform: tau {tau}");
        }
        if let Ok(rho) = spearman(&x, &y) {
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        if let Ok(tau) = kendall_tau(&x, &neg) {
            prop_assert!((tau + 1.0).abs() < 1e-9);
        }
    }

    /// Summary quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..80)) {
        let s = Summary::from_slice(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= prev - 1e-9, "quantile not monotone at {q}");
            prop_assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
            prev = v;
        }
    }

    /// quantile_sorted interpolates within neighbouring order statistics.
    #[test]
    fn quantile_sorted_bounds(values in proptest::collection::vec(0f64..1e3, 2..50), q in 0f64..1f64) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.total_cmp(b));
        let v = quantile_sorted(&sorted, q);
        prop_assert!(v >= sorted[0] && v <= sorted[sorted.len() - 1]);
    }
}

mod mcda_props {
    use super::*;
    use vdbench::mcda::consistency::check;
    use vdbench::mcda::priority::{eigenvector_priorities, geometric_mean_priorities};
    use vdbench::mcda::PairwiseMatrix;

    fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.05f64..20.0, 2..7)
    }

    proptest! {
        /// Priorities from a perfectly consistent matrix recover the
        /// generating weights (up to normalization) with CR ≈ 0.
        #[test]
        fn consistent_matrices_recover_weights(weights in arb_weights()) {
            let m = PairwiseMatrix::from_weights(&weights).unwrap();
            let total: f64 = weights.iter().sum();
            for solver in [eigenvector_priorities, geometric_mean_priorities] {
                let pv = solver(&m).unwrap();
                for (w, t) in pv.weights.iter().zip(&weights) {
                    prop_assert!((w - t / total).abs() < 1e-6);
                }
            }
            let (_, report) = check(&m).unwrap();
            prop_assert!(report.is_acceptable());
        }

        /// Reciprocity is preserved by arbitrary judgment updates, and
        /// priority vectors always normalize.
        #[test]
        fn reciprocity_and_normalization(
            judgments in proptest::collection::vec(0.12f64..9.0, 6),
        ) {
            let m = PairwiseMatrix::from_upper_triangle(4, &judgments).unwrap();
            prop_assert!(m.is_reciprocal());
            let pv = eigenvector_priorities(&m).unwrap();
            prop_assert!((pv.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(pv.weights.iter().all(|w| *w > 0.0));
            prop_assert!(pv.lambda_max >= 4.0 - 1e-6, "λmax {}", pv.lambda_max);
        }
    }
}

mod corpus_props {
    use super::*;
    use vdbench::corpus::{CorpusBuilder, Interpreter};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For ANY seed and density, generator ground truth is verified by
        /// the reference interpreter at every witnessed site.
        #[test]
        fn ground_truth_always_verified(seed in 0u64..10_000, density in 0.0f64..1.0) {
            let corpus = CorpusBuilder::new()
                .units(40)
                .vulnerability_density(density)
                .seed(seed)
                .build();
            let interp = Interpreter::default();
            for info in corpus.sites() {
                let Some(witness) = &info.witness else { continue };
                let unit = corpus.unit_of(info.site).unwrap();
                let obs = interp.run_session(unit, witness).unwrap();
                let at_site: Vec<_> = obs.iter().filter(|o| o.site == info.site).collect();
                prop_assert!(!at_site.is_empty(), "witness missed sink {}", info.site);
                if info.class.is_taint_based() {
                    prop_assert_eq!(
                        at_site.iter().any(|o| o.tainted),
                        info.vulnerable,
                        "label mismatch at {} ({:?})", info.site, info.shape
                    );
                }
            }
        }

        /// Generation is a pure function of the builder configuration.
        #[test]
        fn generation_deterministic(seed in 0u64..1000) {
            let a = CorpusBuilder::new().units(15).seed(seed).build();
            let b = CorpusBuilder::new().units(15).seed(seed).build();
            prop_assert_eq!(a, b);
        }

        /// The dynamic scanner's proof-of-exploit oracle is *sound*: on any
        /// corpus, every site it reports is genuinely vulnerable (perfect
        /// precision against ground truth). Its errors are always misses.
        #[test]
        fn dynamic_scanner_never_false_alarms(seed in 0u64..5_000, density in 0.0f64..1.0) {
            use vdbench::detectors::{score_detector, DynamicScanner};
            let corpus = CorpusBuilder::new()
                .units(30)
                .vulnerability_density(density)
                .seed(seed)
                .build();
            for scanner in [DynamicScanner::quick(), DynamicScanner::thorough(), DynamicScanner::stateful()] {
                let cm = score_detector(&scanner, &corpus).confusion();
                prop_assert_eq!(cm.fp, 0, "scanner {} false-alarmed", scanner.request_budget());
            }
        }

        /// Every real tool is a pure function of (corpus, configuration):
        /// scoring twice gives identical records.
        #[test]
        fn detectors_are_deterministic(seed in 0u64..2_000) {
            use vdbench::detectors::{score_detector, DynamicScanner, PatternScanner, TaintAnalyzer};
            let corpus = CorpusBuilder::new().units(20).seed(seed).build();
            for tool in [
                Box::new(TaintAnalyzer::precise()) as Box<dyn vdbench::detectors::Detector>,
                Box::new(PatternScanner::aggressive()),
                Box::new(DynamicScanner::quick()),
            ] {
                let a = score_detector(tool.as_ref(), &corpus);
                let b = score_detector(tool.as_ref(), &corpus);
                prop_assert_eq!(a.records(), b.records());
            }
        }

        /// The precise taint analyzer is *complete* on taint-class sites:
        /// it never misses a vulnerable taint flow (its errors are always
        /// false positives, from path-insensitivity).
        #[test]
        fn precise_taint_never_misses_taint_flows(seed in 0u64..5_000, density in 0.0f64..1.0) {
            use vdbench::detectors::{score_detector, TaintAnalyzer};
            let corpus = CorpusBuilder::new()
                .units(30)
                .vulnerability_density(density)
                .seed(seed)
                .build();
            let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
            for rec in outcome.records() {
                if rec.class.is_taint_based() && rec.vulnerable {
                    prop_assert!(rec.reported, "missed {} ({:?})", rec.site, rec.shape);
                }
            }
        }
    }
}
