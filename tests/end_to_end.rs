//! End-to-end integration: the full paper pipeline through the public API.

use vdbench::core::campaign::{run_case_study, standard_tools};
use vdbench::core::ranking::ranking_disagreement;
use vdbench::core::scenario::standard_scenarios;
use vdbench::core::selection::default_candidates;
use vdbench::core::validation::validate_all_scenarios;
use vdbench::metrics::catalog::MetricId;
use vdbench::prelude::*;

/// Stage 2 end-to-end: scenario workloads + real tools + metric table.
#[test]
fn case_studies_run_for_every_scenario() {
    for mut scenario in standard_scenarios() {
        scenario.workload_units = 120; // keep CI-fast
        let report = run_case_study(&scenario, 1).unwrap();
        assert_eq!(report.tool_names().len(), standard_tools(1).len());
        // Every tool produced outcomes over the full workload.
        for outcome in report.outcomes() {
            assert_eq!(outcome.records().len(), 120);
        }
    }
}

/// The paper's central claim is visible through the public API: different
/// metrics induce different tool rankings on the same benchmark run.
#[test]
fn metric_choice_changes_tool_ranking() {
    let mut scenario = standard_scenarios().remove(0);
    scenario.workload_units = 250;
    let report = run_case_study(&scenario, 3).unwrap();
    let metrics = default_candidates();
    let disagreement = ranking_disagreement(report.outcomes(), &metrics).unwrap();
    // At least one pair of metrics must rank the tools differently
    // (τ < 1), and no τ leaves [-1, 1].
    let mut saw_disagreement = false;
    for (i, row) in disagreement.iter().enumerate() {
        for (j, &tau) in row.iter().enumerate() {
            if tau.is_finite() {
                assert!((-1.0..=1.0 + 1e-12).contains(&tau), "tau[{i}][{j}] = {tau}");
                if i != j && tau < 0.999 {
                    saw_disagreement = true;
                }
            }
        }
    }
    assert!(saw_disagreement, "metrics ranked every tool identically");
}

/// Stage 1 + 3 end-to-end: attribute assessment, analytical selection and
/// MCDA validation agree at moderate noise, and the selected metrics match
/// the paper's qualitative conclusions.
#[test]
fn selection_pipeline_matches_paper_narrative() {
    // The committed experimental configuration (see vdbench-bench) with an
    // independent seed: the qualitative conclusions must not be an artifact
    // of one lucky seed.
    let cfg = vdbench::core::AssessmentConfig {
        workload_size: 400,
        reference_prevalence: 0.2,
        tool_sample: 150,
        replicates: 300,
        seed: 11,
    };
    let selector = MetricSelector::new(default_candidates(), cfg).unwrap();
    let outcomes = validate_all_scenarios(&selector, 7, 0.2, 5).unwrap();
    assert_eq!(outcomes.len(), 4);

    let winners: Vec<MetricId> = outcomes.iter().map(|o| o.analytical_best()).collect();
    // S1: FP-averse. The PPV/ACC race is decided by a hair (both punish
    // false alarms under a 5:1 cost; see EXPERIMENTS.md), so the robust
    // assertion is: a precision-flavoured metric sits in the top 3 and no
    // recall-flavoured metric is selected.
    let s1_top3: Vec<MetricId> = outcomes[0]
        .analytical_ranking
        .iter()
        .take(3)
        .map(|&i| outcomes[0].candidates[i])
        .collect();
    assert!(
        s1_top3
            .iter()
            .any(|m| matches!(m, MetricId::Precision | MetricId::CostFpHeavy)),
        "S1 top-3 lacks a precision-flavoured metric: {s1_top3:?}"
    );
    assert!(
        !matches!(
            winners[0],
            MetricId::Recall | MetricId::F2 | MetricId::CostFnHeavy
        ),
        "S1 must not select a recall-flavoured metric: {:?}",
        winners[0]
    );
    assert!(
        matches!(
            winners[1],
            MetricId::Recall | MetricId::CostFnHeavy | MetricId::F2
        ),
        "S2 winner {:?}",
        winners[1]
    );
    for (label, w) in ["S3", "S4"].iter().zip(&winners[2..]) {
        assert!(
            matches!(
                w,
                MetricId::Informedness
                    | MetricId::Mcc
                    | MetricId::Markedness
                    | MetricId::CostFnHeavy
            ),
            "{label} winner {w:?}"
        );
    }
    // No single metric wins every scenario.
    let distinct: std::collections::BTreeSet<_> = winners.iter().collect();
    assert!(
        distinct.len() >= 2,
        "one metric won everywhere: {winners:?}"
    );

    // MCDA validation backs the analytical selection.
    for o in &outcomes {
        assert!(
            o.agreement_tau > 0.4,
            "{}: τ {}",
            o.scenario,
            o.agreement_tau
        );
        assert!(o.top_k_overlap(3) >= 2, "{}: overlap", o.scenario);
    }
}

/// The prelude exposes a workable surface: everything the quickstart needs
/// resolves through `vdbench::prelude`.
#[test]
fn prelude_surface_is_sufficient() {
    let corpus = CorpusBuilder::new().units(30).seed(4).build();
    let outcome = score_detector(&PatternScanner::aggressive(), &corpus);
    let cm = outcome.confusion();
    assert_eq!(cm.total(), 30);
    let _ = Recall.compute(&cm);
    let mut rng = SeededRng::new(1);
    let _ = rng.uniform();
    let _ = Confidence::P95;
    let _ = Bootstrap::default();
    let _ = Summary::from_slice(&[1.0]);
    let catalog = standard_catalog();
    assert!(catalog.len() > 20);
    let scenarios: Vec<Scenario> = standard_scenarios();
    assert_eq!(scenarios.len(), 4);
    let _ = ScenarioId::S1Audit;
    let _: Vec<(f64, f64)> = Vec::new();
    let m = PairwiseMatrix::identity(2);
    assert!(m.is_reciprocal());
    let e = Expert::new("x", vec![1.0, 2.0], 0.0, 1);
    let p = Panel::new(vec![e]);
    assert_eq!(p.criteria_count(), 2);
    let ids = MetricId::all();
    assert!(!ids.is_empty());
    let _ = Ahp::with_ratings(
        vec!["c".into()],
        PairwiseMatrix::identity(1),
        vec!["a".into()],
        vec![vec![0.5]],
        vec![vdbench::mcda::decision::Direction::Benefit],
    )
    .unwrap();
}

/// Cross-tool statistical comparison through the stats substrate: McNemar
/// on paired outcomes distinguishes a strong tool from a weak one.
#[test]
fn mcnemar_distinguishes_tools_on_shared_workload() {
    let corpus = CorpusBuilder::new()
        .units(400)
        .vulnerability_density(0.3)
        .seed(8)
        .build();
    let strong = score_detector(&TaintAnalyzer::precise(), &corpus);
    let weak = score_detector(&PatternScanner::conservative(), &corpus);
    let (b, c) = strong.discordance(&weak);
    let result = vdbench::stats::hypothesis::mcnemar(b, c).unwrap();
    assert!(
        result.significant_at(0.05),
        "precise taint must beat conservative pattern: b={b} c={c} p={}",
        result.p_value
    );
}

/// Determinism across the whole pipeline: identical seeds give identical
/// experiment results.
#[test]
fn pipeline_is_deterministic() {
    let mut scenario = standard_scenarios().remove(2);
    scenario.workload_units = 100;
    let a = run_case_study(&scenario, 77).unwrap();
    let b = run_case_study(&scenario, 77).unwrap();
    for (oa, ob) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(oa.records(), ob.records());
    }
    for t in 0..a.tool_names().len() {
        for m in 0..a.metric_ids().len() {
            assert_eq!(a.value(t, m).to_bits(), b.value(t, m).to_bits());
        }
    }
}
