//! Integration tests for the `vdbench` CLI binary.

use std::process::Command;

fn vdbench(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_vdbench"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (stdout, _, ok) = vdbench(&["help"]);
    assert!(ok);
    for cmd in [
        "generate",
        "scan",
        "bench",
        "select",
        "consistency",
        "report",
        "recommend",
    ] {
        assert!(stdout.contains(cmd), "{cmd} missing from help");
    }
}

#[test]
fn generate_prints_stats_and_code() {
    let (stdout, _, ok) = vdbench(&[
        "generate",
        "--units",
        "12",
        "--density",
        "0.5",
        "--seed",
        "4",
        "--show",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("corpus: 12 units"));
    assert!(stdout.contains("by class:"));
    assert!(stdout.contains("fn handler_0"));
}

#[test]
fn scan_reports_metrics_and_findings() {
    let (stdout, _, ok) = vdbench(&[
        "scan",
        "--tool",
        "taint",
        "--units",
        "40",
        "--density",
        "0.4",
        "--seed",
        "9",
    ]);
    assert!(ok);
    assert!(stdout.contains("taint-d3-precise on 40 cases"));
    assert!(stdout.contains("TPR"));
    assert!(stdout.contains("findings"));
}

#[test]
fn unknown_command_and_bad_flags_fail_cleanly() {
    let (_, stderr, ok) = vdbench(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = vdbench(&["scan", "--tool", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown tool"));

    let (_, stderr, ok) = vdbench(&["generate", "--units"]);
    assert!(!ok);
    assert!(stderr.contains("missing a value"));

    let (_, stderr, ok) = vdbench(&["generate", "--density", "2.0"]);
    assert!(!ok);
    assert!(stderr.contains("must be in [0, 1]"));

    let (_, stderr, ok) = vdbench(&["generate", "positional"]);
    assert!(!ok);
    assert!(stderr.contains("unexpected argument"));

    let (_, stderr, ok) = vdbench(&["scan"]);
    assert!(!ok);
    assert!(stderr.contains("needs --tool"));
}

#[test]
fn recommend_follows_the_cost_model() {
    let (miss_heavy, _, ok) = vdbench(&[
        "recommend",
        "--fp-cost",
        "1",
        "--fn-cost",
        "25",
        "--prevalence",
        "0.1",
    ]);
    assert!(ok);
    assert!(miss_heavy.contains("closest standard profile: S2"));
    // The top recommendation must be recall-flavoured, never precision.
    let first = miss_heavy
        .lines()
        .find(|l| l.trim_start().starts_with("1."))
        .unwrap();
    assert!(
        first.contains("INF") || first.contains("NEC-fn") || first.contains("TPR"),
        "{first}"
    );

    let (_, stderr, ok) = vdbench(&["recommend", "--prevalence", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("prevalence"));
}

#[test]
fn corpus_export_import_round_trip() {
    let dir = std::env::temp_dir().join("vdbench-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.json");
    let path_str = path.to_str().unwrap();

    let (_, _, ok) = vdbench(&[
        "generate",
        "--units",
        "30",
        "--density",
        "0.4",
        "--seed",
        "5",
        "--out",
        path_str,
    ]);
    assert!(ok);

    // Scanning the saved corpus gives the same result as scanning the
    // equivalent generated one.
    let (from_file, _, ok) = vdbench(&["scan", "--tool", "taint", "--corpus", path_str]);
    assert!(ok);
    let (from_gen, _, ok) = vdbench(&[
        "scan",
        "--tool",
        "taint",
        "--units",
        "30",
        "--density",
        "0.4",
        "--seed",
        "5",
    ]);
    assert!(ok);
    assert_eq!(from_file, from_gen);

    // Malformed file fails cleanly.
    std::fs::write(&path, "not json").unwrap();
    let (_, stderr, ok) = vdbench(&["scan", "--tool", "taint", "--corpus", path_str]);
    assert!(!ok);
    assert!(stderr.contains("cannot parse"));
    let (_, stderr, ok) = vdbench(&["scan", "--tool", "taint", "--corpus", "/nope/missing.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn generate_is_deterministic_across_invocations() {
    let (a, _, _) = vdbench(&["generate", "--units", "25", "--seed", "77"]);
    let (b, _, _) = vdbench(&["generate", "--units", "25", "--seed", "77"]);
    assert_eq!(a, b);
    let (c, _, _) = vdbench(&["generate", "--units", "25", "--seed", "78"]);
    assert_ne!(a, c);
}
