//! Integration tests for the `vdbench` CLI binary.
//!
//! Exit-code contract under test: `0` success, `1` runtime failure
//! (bad values, missing files), `2` usage error (unknown command or
//! flag, malformed flag syntax) — usage errors carry a nearest-match
//! suggestion and the generated usage table lists every command.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};

fn vdbench(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_vdbench"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn help_lists_every_command_and_its_flags() {
    let (stdout, _, code) = vdbench(&["help"]);
    assert_eq!(code, Some(0));
    for cmd in [
        "generate",
        "scan",
        "bench",
        "select",
        "consistency",
        "report",
        "recommend",
        "serve",
        "loadgen",
        "scale",
        "cache",
        "perfwatch",
    ] {
        assert!(stdout.contains(cmd), "{cmd} missing from help");
    }
    // The table is generated from the command specs, so flags are listed
    // with their placeholders and help strings.
    for flag in [
        "--units N",
        "--tool NAME",
        "--max-inflight N",
        "--duration-secs F",
        "--cache-dir DIR",
        "--shard-units N",
        "--assert-flat F",
        "--gc on|off",
        "--history DIR",
        "--alpha F",
        "--min-effect F",
        "--perf-history DIR",
        "--scan-threads N",
    ] {
        assert!(stdout.contains(flag), "{flag} missing from help");
    }
    // Commands with a required action render it above their flags.
    assert!(stdout.contains("<check|update>"), "{stdout}");
}

#[test]
fn sharded_scan_stdout_is_byte_identical() {
    let (mono, _, code) = vdbench(&["scan", "--tool", "pattern", "--units", "90", "--seed", "3"]);
    assert_eq!(code, Some(0));
    let (sharded, stderr, code) = vdbench(&[
        "scan",
        "--tool",
        "pattern",
        "--units",
        "90",
        "--seed",
        "3",
        "--shard-units",
        "16",
    ]);
    assert_eq!(code, Some(0));
    assert_eq!(mono, sharded, "streamed path must not move a byte");
    assert!(stderr.contains("90 units in 6 shards"), "{stderr}");
    // The parallel pipeline must not move a byte either, at any width.
    for threads in ["2", "8"] {
        let (piped, _, code) = vdbench(&[
            "scan",
            "--tool",
            "pattern",
            "--units",
            "90",
            "--seed",
            "3",
            "--shard-units",
            "16",
            "--scan-threads",
            threads,
        ]);
        assert_eq!(code, Some(0));
        assert_eq!(mono, piped, "{threads} scan threads moved a byte");
    }
    // Streaming regenerates; it cannot apply to a saved corpus file.
    let (_, stderr, code) = vdbench(&[
        "scan",
        "--tool",
        "pattern",
        "--corpus",
        "x.json",
        "--shard-units",
        "16",
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot be combined"), "{stderr}");
}

#[test]
fn warm_sharded_scan_replays_whole_shards_from_digests() {
    let dir = std::env::temp_dir().join(format!("vdbench-cli-digest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let args = [
        "scan",
        "--tool",
        "pattern",
        "--units",
        "90",
        "--seed",
        "3",
        "--shard-units",
        "16",
        "--cache-dir",
        cache.to_str().unwrap(),
    ];
    let (cold, cold_err, code) = vdbench(&args);
    assert_eq!(code, Some(0));
    assert!(
        cold_err.contains("90 rescanned, 0 replayed, 0 digest hits"),
        "{cold_err}"
    );
    let (warm, warm_err, code) = vdbench(&args);
    assert_eq!(code, Some(0));
    assert_eq!(cold, warm, "warm replay must not move a byte");
    assert!(
        warm_err.contains("0 rescanned, 90 replayed, 6 digest hits"),
        "{warm_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scale_measures_and_delta_rescans_exactly() {
    let dir = std::env::temp_dir().join(format!("vdbench-cli-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let out = dir.join("BENCH_scale.json");
    let (stdout, _, code) = vdbench(&[
        "scale",
        "--units",
        "200,600",
        "--shard-units",
        "64",
        "--delta",
        "25",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("scale: units=200") && stdout.contains("scale: units=600"),
        "{stdout}"
    );
    assert!(
        stdout.contains("scale delta: base=600 grown=625 rescanned=25 replayed=600"),
        "{stdout}"
    );
    let json = std::fs::read_to_string(&out).unwrap();
    assert!(json.contains("\"shard_units\": 64"), "{json}");
    // The manifest store is visible to the cache command, and gc leaves
    // live blobs alone.
    let (stdout, _, code) = vdbench(&["cache", "--dir", cache.to_str().unwrap(), "--gc", "on"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("manifest"), "{stdout}");
    assert!(stdout.contains("gc: removed 0 files"), "{stdout}");
    // VmHWM is monotonic, so non-ascending curves are rejected.
    let (_, stderr, code) = vdbench(&[
        "scale",
        "--units",
        "600,200",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("ascending"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_prints_stats_and_code() {
    let (stdout, _, code) = vdbench(&[
        "generate",
        "--units",
        "12",
        "--density",
        "0.5",
        "--seed",
        "4",
        "--show",
        "1",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("corpus: 12 units"));
    assert!(stdout.contains("by class:"));
    assert!(stdout.contains("fn handler_0"));
}

#[test]
fn scan_reports_metrics_and_findings() {
    let (stdout, _, code) = vdbench(&[
        "scan",
        "--tool",
        "taint",
        "--units",
        "40",
        "--density",
        "0.4",
        "--seed",
        "9",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("taint-d3-precise on 40 cases"));
    assert!(stdout.contains("TPR"));
    assert!(stdout.contains("findings"));
}

#[test]
fn usage_errors_exit_2_with_suggestions() {
    // No command at all: usage on stderr.
    let (_, stderr, code) = vdbench(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("COMMANDS:"));

    // Unknown command, with a nearest-match suggestion.
    let (_, stderr, code) = vdbench(&["scann"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("did you mean `scan`?"), "{stderr}");

    let (_, stderr, code) = vdbench(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));

    // Unknown flag, with a nearest-match suggestion.
    let (_, stderr, code) = vdbench(&["generate", "--unitz", "5"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag --unitz"), "{stderr}");
    assert!(stderr.contains("did you mean --units?"), "{stderr}");

    // A flag that belongs to a different command is still unknown here.
    let (_, stderr, code) = vdbench(&["report", "--tool", "taint"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag --tool"), "{stderr}");

    // Malformed flag syntax.
    let (_, stderr, code) = vdbench(&["generate", "--units"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing a value"));

    let (_, stderr, code) = vdbench(&["generate", "positional"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unexpected argument"));

    // Action-taking commands: missing action, misspelled action.
    let (_, stderr, code) = vdbench(&["perfwatch"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("needs an action: check|update"), "{stderr}");

    let (_, stderr, code) = vdbench(&["perfwatch", "--alpha", "0.01"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("needs an action"), "{stderr}");

    let (_, stderr, code) = vdbench(&["perfwatch", "chceck"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown action `chceck`"), "{stderr}");
    assert!(stderr.contains("did you mean `check`?"), "{stderr}");
}

#[test]
fn runtime_errors_exit_1() {
    let (_, stderr, code) = vdbench(&["scan", "--tool", "nope"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unknown tool"));

    let (_, stderr, code) = vdbench(&["generate", "--density", "2.0"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("must be in [0, 1]"));

    let (_, stderr, code) = vdbench(&["scan"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("needs --tool"));
}

#[test]
fn recommend_follows_the_cost_model() {
    let (miss_heavy, _, code) = vdbench(&[
        "recommend",
        "--fp-cost",
        "1",
        "--fn-cost",
        "25",
        "--prevalence",
        "0.1",
    ]);
    assert_eq!(code, Some(0));
    assert!(miss_heavy.contains("closest standard profile: S2"));
    // The top recommendation must be recall-flavoured, never precision.
    let first = miss_heavy
        .lines()
        .find(|l| l.trim_start().starts_with("1."))
        .unwrap();
    assert!(
        first.contains("INF") || first.contains("NEC-fn") || first.contains("TPR"),
        "{first}"
    );

    let (_, stderr, code) = vdbench(&["recommend", "--prevalence", "1.5"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("prevalence"));
}

#[test]
fn corpus_export_import_round_trip() {
    let dir = std::env::temp_dir().join("vdbench-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.json");
    let path_str = path.to_str().unwrap();

    let (_, _, code) = vdbench(&[
        "generate",
        "--units",
        "30",
        "--density",
        "0.4",
        "--seed",
        "5",
        "--out",
        path_str,
    ]);
    assert_eq!(code, Some(0));

    // Scanning the saved corpus gives the same result as scanning the
    // equivalent generated one.
    let (from_file, _, code) = vdbench(&["scan", "--tool", "taint", "--corpus", path_str]);
    assert_eq!(code, Some(0));
    let (from_gen, _, code) = vdbench(&[
        "scan",
        "--tool",
        "taint",
        "--units",
        "30",
        "--density",
        "0.4",
        "--seed",
        "5",
    ]);
    assert_eq!(code, Some(0));
    assert_eq!(from_file, from_gen);

    // Malformed file fails cleanly.
    std::fs::write(&path, "not json").unwrap();
    let (_, stderr, code) = vdbench(&["scan", "--tool", "taint", "--corpus", path_str]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot parse"));
    let (_, stderr, code) = vdbench(&["scan", "--tool", "taint", "--corpus", "/nope/missing.json"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"));
}

#[test]
fn perfwatch_gates_an_injected_regression_end_to_end() {
    use vdbench_perfwatch::{append_entry, RunEntry, Series};
    let dir = std::env::temp_dir().join(format!("vdbench-cli-perfwatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.to_str().unwrap();
    let trend = dir.join("trend.md");
    let trend_str = trend.to_str().unwrap();

    // Jittered samples around `center` — deterministic, ±1%.
    let samples = |center: f64| -> Vec<f64> {
        (0..24)
            .map(|i| center * (1.0 + 0.01 * (((i * 7919) % 13) as f64 - 6.0) / 6.0))
            .collect()
    };
    let entry = |unix_ms: u64, baseline: bool, speedup: f64| RunEntry {
        source: "kernels".to_string(),
        unix_ms,
        label: if baseline { "seed" } else { "ci" }.to_string(),
        provenance: String::new(),
        baseline,
        series: vec![Series::delta(
            "kendall-512:speedup",
            "ratio",
            "higher",
            true,
            samples(speedup),
        )],
    };
    for run in 0..3 {
        append_entry(&dir, &entry(run, true, 3.0)).unwrap();
    }

    // Baselines alone: nothing to compare, but nothing failing either.
    let (stdout, _, code) = vdbench(&[
        "perfwatch",
        "check",
        "--history",
        dir_str,
        "--out",
        trend_str,
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("no confirmed regressions"), "{stdout}");

    // A candidate 20% slower than baseline must fail the gate.
    append_entry(&dir, &entry(3, false, 2.4)).unwrap();
    let (_, stderr, code) = vdbench(&[
        "perfwatch",
        "check",
        "--history",
        dir_str,
        "--out",
        trend_str,
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("confirmed regression"), "{stderr}");
    let table = std::fs::read_to_string(&trend).unwrap();
    assert!(table.contains("kendall-512:speedup"), "{table}");
    assert!(table.contains("REGRESSION"), "{table}");

    // Re-baselining on purpose accepts the new level. A second source's
    // ledger sits alongside; `--source` must leave it untouched.
    append_entry(
        &dir,
        &RunEntry {
            source: "scale".to_string(),
            unix_ms: 0,
            label: "seed".to_string(),
            provenance: String::new(),
            baseline: true,
            series: vec![Series::delta("wall_ms", "ms", "lower", false, vec![100.0])],
        },
    )
    .unwrap();
    let (stdout, _, code) = vdbench(&[
        "perfwatch",
        "update",
        "--history",
        dir_str,
        "--source",
        "kernels",
        "--note",
        "accepted slower kernel",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("re-baselined 1 ledger file"), "{stdout}");
    // ...and the recorded provenance note survives in the ledger.
    let ledger = std::fs::read_to_string(dir.join("kernels.jsonl")).unwrap();
    assert!(ledger.contains("accepted slower kernel"), "{ledger}");
    let other = std::fs::read_to_string(dir.join("scale.jsonl")).unwrap();
    assert!(!other.contains("accepted slower kernel"), "{other}");
    // A source with no ledger is a clean failure, not a silent no-op.
    let (_, stderr, code) = vdbench(&[
        "perfwatch",
        "update",
        "--history",
        dir_str,
        "--source",
        "nope",
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("no `nope` history"), "{stderr}");
    let (stdout, _, code) = vdbench(&[
        "perfwatch",
        "check",
        "--history",
        dir_str,
        "--out",
        trend_str,
    ]);
    assert_eq!(code, Some(0), "{stdout}");

    // An equally-fast candidate against the new baseline stays green.
    append_entry(&dir, &entry(4, false, 2.4)).unwrap();
    let (stdout, _, code) = vdbench(&[
        "perfwatch",
        "check",
        "--history",
        dir_str,
        "--out",
        trend_str,
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("no confirmed regressions"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_is_deterministic_across_invocations() {
    let (a, _, _) = vdbench(&["generate", "--units", "25", "--seed", "77"]);
    let (b, _, _) = vdbench(&["generate", "--units", "25", "--seed", "77"]);
    assert_eq!(a, b);
    let (c, _, _) = vdbench(&["generate", "--units", "25", "--seed", "78"]);
    assert_ne!(a, c);
}

#[test]
fn serve_and_loadgen_round_trip_end_to_end() {
    let dir = std::env::temp_dir().join(format!("vdbench-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let record_path = dir.join("BENCH_serve.json");

    // Start the server on an ephemeral port and read the bound address
    // off its startup line.
    let mut server = Command::new(env!("CARGO_BIN_EXE_vdbench"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup line");
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .expect("bound address in startup line")
        .to_string();

    // Raw healthz probe straight over TCP.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.ends_with("ok\n"), "{response}");

    // A short loadgen run against it must report a high warm-hit ratio
    // and write a parsable record.
    let (stdout, stderr, code) = vdbench(&[
        "loadgen",
        "--addr",
        &addr,
        "--duration-secs",
        "0.5",
        "--connections",
        "4",
        "--pool-scans",
        "8",
        "--out",
        record_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "loadgen failed: {stderr}");
    assert!(stdout.contains("record written to"), "{stdout}");
    let record: vdbench::server::ServeRecord =
        serde_json::from_str(&std::fs::read_to_string(&record_path).unwrap()).unwrap();
    assert_eq!(record.seed_pass.errors, 0);
    assert_eq!(record.errors, 0);
    assert!(record.requests > 0);
    assert!(
        record.warm_hit_ratio > 0.9,
        "measured phase must be warm, got {}",
        record.warm_hit_ratio
    );

    server.kill().expect("server stops");
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
