//! The individual expert model.

use serde::{Deserialize, Serialize};
use vdbench_mcda::{PairwiseMatrix, SaatyScale};
use vdbench_stats::SeededRng;

/// A simulated domain expert.
///
/// The expert's latent preference over criteria is a positive weight
/// vector; when asked to compare criteria `i` and `j` they report the
/// intensity ratio `w_i / w_j`, perturbed by multiplicative log-normal
/// noise and snapped to the admissible Saaty values. Each elicitation is
/// deterministic given the expert's seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expert {
    name: String,
    latent: Vec<f64>,
    noise: f64,
    seed: u64,
}

impl Expert {
    /// Creates an expert.
    ///
    /// # Panics
    ///
    /// Panics when `latent` is empty or contains non-positive weights, or
    /// when `noise` is negative.
    pub fn new(name: impl Into<String>, latent: Vec<f64>, noise: f64, seed: u64) -> Self {
        assert!(!latent.is_empty(), "expert needs at least one criterion");
        assert!(
            latent.iter().all(|w| w.is_finite() && *w > 0.0),
            "latent weights must be positive"
        );
        assert!(noise >= 0.0 && noise.is_finite(), "noise must be >= 0");
        Expert {
            name: name.into(),
            latent,
            noise,
            seed,
        }
    }

    /// The expert's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of criteria the expert judges.
    pub fn criteria_count(&self) -> usize {
        self.latent.len()
    }

    /// The latent weights, normalized to sum to one (what a perfect
    /// elicitation would recover).
    pub fn normalized_latent(&self) -> Vec<f64> {
        let sum: f64 = self.latent.iter().sum();
        self.latent.iter().map(|w| w / sum).collect()
    }

    /// The noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Produces the expert's full pairwise judgment matrix.
    ///
    /// Judgments are elicited once per unordered pair in a fixed order, so
    /// the result is exactly reciprocal (as a questionnaire would enforce).
    pub fn elicit(&self) -> PairwiseMatrix {
        self.elicit_attempt(0)
    }

    fn elicit_attempt(&self, attempt: u64) -> PairwiseMatrix {
        let n = self.latent.len();
        let mut rng = SeededRng::new(self.seed.wrapping_add(attempt.wrapping_mul(0x9E37)));
        let mut m = PairwiseMatrix::identity(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let true_ratio = self.latent[i] / self.latent[j];
                let perturbed = true_ratio * (self.noise * rng.standard_normal()).exp();
                let judged = SaatyScale::snap(perturbed);
                m.set(i, j, judged)
                    .expect("snapped judgments are positive and finite");
            }
        }
        m
    }

    /// Elicits with the standard AHP protocol: if the judgments fail
    /// Saaty's 10% consistency rule, the expert is asked to revisit them
    /// (a fresh elicitation round), up to `max_rounds` times. Returns the
    /// final matrix and the number of rounds used (1 = first try).
    ///
    /// Deterministic given the expert's seed; the matrix of the last round
    /// is returned even when it is still inconsistent, mirroring surveys
    /// that eventually accept the answer and report the CR.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds == 0`.
    pub fn elicit_consistent(&self, max_rounds: usize) -> (PairwiseMatrix, usize) {
        assert!(max_rounds > 0, "need at least one elicitation round");
        let mut last = None;
        for round in 0..max_rounds {
            let m = self.elicit_attempt(round as u64);
            let acceptable = vdbench_mcda::consistency::check(&m)
                .map(|(_, report)| report.is_acceptable())
                .unwrap_or(false);
            if acceptable {
                return (m, round + 1);
            }
            last = Some(m);
        }
        (last.expect("max_rounds > 0"), max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_mcda::priority::eigenvector_priorities;

    #[test]
    fn construction_validation() {
        let e = Expert::new("alice", vec![2.0, 1.0], 0.1, 1);
        assert_eq!(e.name(), "alice");
        assert_eq!(e.criteria_count(), 2);
        assert_eq!(e.noise(), 0.1);
        let norm = e.normalized_latent();
        assert!((norm[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one criterion")]
    fn empty_latent_panics() {
        let _ = Expert::new("x", vec![], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_latent_panics() {
        let _ = Expert::new("x", vec![1.0, 0.0], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "noise must be")]
    fn negative_noise_panics() {
        let _ = Expert::new("x", vec![1.0], -0.1, 1);
    }

    #[test]
    fn noiseless_elicitation_recovers_latent_ordering() {
        let e = Expert::new("oracle", vec![0.55, 0.3, 0.15], 0.0, 7);
        let m = e.elicit();
        assert!(m.is_reciprocal());
        let pv = eigenvector_priorities(&m).unwrap();
        assert_eq!(pv.ranking(), vec![0, 1, 2]);
        // Snapping quantizes, so weights are close but not exact; ordering
        // and rough magnitudes must hold.
        assert!(pv.weights[0] > 0.45);
        assert!(pv.weights[2] < 0.2);
    }

    #[test]
    fn elicitation_is_deterministic() {
        let e = Expert::new("det", vec![3.0, 2.0, 1.0], 0.3, 11);
        assert_eq!(e.elicit(), e.elicit());
        let e2 = Expert::new("det", vec![3.0, 2.0, 1.0], 0.3, 12);
        assert_ne!(e.elicit(), e2.elicit());
    }

    #[test]
    fn judgments_on_saaty_scale() {
        let e = Expert::new("scale", vec![9.0, 3.0, 1.0, 0.5], 0.5, 13);
        let m = e.elicit();
        for i in 0..4 {
            for j in 0..4 {
                let v = m.get(i, j);
                let admissible = (1..=9)
                    .any(|k| (v - k as f64).abs() < 1e-12 || (v - 1.0 / k as f64).abs() < 1e-12);
                assert!(admissible, "judgment {v} not on the scale");
            }
        }
    }

    #[test]
    fn consistent_elicitation_converges() {
        // A noisy expert over many criteria usually needs revision rounds.
        let e = Expert::new("sloppy", vec![8.0, 5.0, 3.0, 2.0, 1.0], 1.2, 17);
        let (m, rounds) = e.elicit_consistent(50);
        assert!((1..=50).contains(&rounds));
        let (_, report) = vdbench_mcda::consistency::check(&m).unwrap();
        if rounds < 50 {
            assert!(report.is_acceptable(), "round {rounds} CR {:?}", report.cr);
        }
        // A noiseless expert is consistent on the first try (snap
        // quantization introduces only mild inconsistency).
        let oracle = Expert::new("oracle", vec![4.0, 2.0, 1.0], 0.0, 1);
        let (_, rounds) = oracle.elicit_consistent(5);
        assert_eq!(rounds, 1);
        // Determinism.
        assert_eq!(e.elicit_consistent(50), e.elicit_consistent(50));
    }

    #[test]
    #[should_panic(expected = "at least one elicitation round")]
    fn zero_rounds_panics() {
        let e = Expert::new("x", vec![1.0, 2.0], 0.0, 1);
        let _ = e.elicit_consistent(0);
    }

    #[test]
    fn high_noise_scrambles_judgments() {
        let calm = Expert::new("calm", vec![4.0, 2.0, 1.0], 0.0, 5).elicit();
        let noisy = Expert::new("calm", vec![4.0, 2.0, 1.0], 2.0, 5).elicit();
        assert_ne!(calm, noisy);
    }
}
