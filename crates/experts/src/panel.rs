//! Expert panels: elicitation, aggregation, agreement.

use crate::expert::Expert;
use vdbench_mcda::group::aggregate_judgments;
use vdbench_mcda::priority::eigenvector_priorities;
use vdbench_mcda::{McdaError, PairwiseMatrix};
use vdbench_stats::correlation::kendall_w;
use vdbench_stats::{SeededRng, StatsError};

/// A panel of experts judging the same criteria.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    experts: Vec<Expert>,
}

impl Panel {
    /// Assembles a panel.
    ///
    /// # Panics
    ///
    /// Panics when the panel is empty or the experts disagree on the
    /// criteria count.
    pub fn new(experts: Vec<Expert>) -> Self {
        assert!(!experts.is_empty(), "panel needs at least one expert");
        let n = experts[0].criteria_count();
        assert!(
            experts.iter().all(|e| e.criteria_count() == n),
            "experts must judge the same criteria"
        );
        Panel { experts }
    }

    /// Builds a panel of `size` experts sharing the same latent weights,
    /// each with independent elicitation noise — the "broadly agreeing
    /// practitioners" model used in most experiments.
    ///
    /// # Panics
    ///
    /// Panics when `size == 0` or latent weights are invalid.
    pub fn homogeneous(latent: &[f64], size: usize, noise: f64, seed: u64) -> Self {
        assert!(size > 0, "panel needs at least one expert");
        let mut rng = SeededRng::new(seed);
        let experts = (0..size)
            .map(|i| {
                Expert::new(
                    format!("expert-{i}"),
                    latent.to_vec(),
                    noise,
                    rng.split(&format!("expert-{i}")).next_u64_seed(),
                )
            })
            .collect();
        Panel::new(experts)
    }

    /// Builds a panel whose members each perturb a shared latent vector —
    /// modelling genuine disagreement about importance, not just
    /// questionnaire noise.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Panel::homogeneous`].
    pub fn diverse(latent: &[f64], size: usize, spread: f64, noise: f64, seed: u64) -> Self {
        assert!(size > 0, "panel needs at least one expert");
        assert!(spread >= 0.0, "spread must be >= 0");
        let mut rng = SeededRng::new(seed);
        let experts = (0..size)
            .map(|i| {
                let personal: Vec<f64> = latent
                    .iter()
                    .map(|w| w * (spread * rng.standard_normal()).exp())
                    .collect();
                Expert::new(
                    format!("expert-{i}"),
                    personal,
                    noise,
                    rng.split(&format!("expert-{i}")).next_u64_seed(),
                )
            })
            .collect();
        Panel::new(experts)
    }

    /// Panel members.
    pub fn experts(&self) -> &[Expert] {
        &self.experts
    }

    /// Number of criteria judged.
    pub fn criteria_count(&self) -> usize {
        self.experts[0].criteria_count()
    }

    /// Elicits every expert's judgment matrix.
    pub fn elicit_all(&self) -> Vec<PairwiseMatrix> {
        self.experts.iter().map(Expert::elicit).collect()
    }

    /// Aggregates the panel's judgments into one consensus matrix
    /// (element-wise geometric mean, AIJ).
    ///
    /// # Errors
    ///
    /// Propagates [`McdaError`] from the aggregation (cannot happen for a
    /// validated panel, but surfaced rather than unwrapped).
    pub fn aggregate(&self) -> Result<PairwiseMatrix, McdaError> {
        aggregate_judgments(&self.elicit_all(), None)
    }

    /// Inter-expert agreement: Kendall's W over the experts' individual
    /// priority vectors (1 = unanimity).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] when agreement is undefined (single
    /// criterion, or fully tied ratings).
    pub fn agreement(&self) -> Result<f64, StatsError> {
        let ratings: Vec<Vec<f64>> = self
            .elicit_all()
            .iter()
            .map(|m| {
                eigenvector_priorities(m).map(|pv| pv.weights).map_err(|_| {
                    StatsError::NoConvergence {
                        routine: "eigenvector_priorities",
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        kendall_w(&ratings)
    }
}

/// Extension used by panel construction: draw a fresh seed from a split
/// stream.
trait NextSeed {
    fn next_u64_seed(&mut self) -> u64;
}

impl NextSeed for SeededRng {
    fn next_u64_seed(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_mcda::consistency::check;

    #[test]
    fn homogeneous_panel_shape() {
        let p = Panel::homogeneous(&[0.5, 0.3, 0.2], 5, 0.1, 1);
        assert_eq!(p.experts().len(), 5);
        assert_eq!(p.criteria_count(), 3);
        assert_eq!(p.elicit_all().len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = Panel::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same criteria")]
    fn mismatched_experts_panic() {
        let a = Expert::new("a", vec![1.0, 2.0], 0.0, 1);
        let b = Expert::new("b", vec![1.0], 0.0, 2);
        let _ = Panel::new(vec![a, b]);
    }

    #[test]
    fn noiseless_panel_reaches_unanimity() {
        let p = Panel::homogeneous(&[0.6, 0.25, 0.15], 7, 0.0, 2);
        let w = p.agreement().unwrap();
        assert!((w - 1.0).abs() < 1e-9, "W = {w}");
    }

    #[test]
    fn agreement_decreases_with_noise() {
        let calm = Panel::homogeneous(&[0.5, 0.27, 0.15, 0.08], 9, 0.05, 3)
            .agreement()
            .unwrap();
        let noisy = Panel::homogeneous(&[0.5, 0.27, 0.15, 0.08], 9, 1.5, 3)
            .agreement()
            .unwrap();
        assert!(calm > noisy, "calm {calm} vs noisy {noisy}");
    }

    #[test]
    fn aggregate_recovers_latent_ordering_at_low_noise() {
        let p = Panel::homogeneous(&[0.55, 0.25, 0.12, 0.08], 9, 0.2, 4);
        let consensus = p.aggregate().unwrap();
        let (pv, report) = check(&consensus).unwrap();
        assert_eq!(pv.ranking()[0], 0);
        // Aggregation smooths individual inconsistency.
        assert!(report.is_acceptable(), "CR = {:?}", report.cr);
    }

    #[test]
    fn diverse_panel_varies_latents() {
        let p = Panel::diverse(&[0.5, 0.3, 0.2], 4, 0.5, 0.0, 5);
        let latents: Vec<Vec<f64>> = p.experts().iter().map(|e| e.normalized_latent()).collect();
        assert_ne!(latents[0], latents[1]);
        // Zero spread reduces to the homogeneous case.
        let h = Panel::diverse(&[0.5, 0.3, 0.2], 4, 0.0, 0.0, 5);
        let hl: Vec<Vec<f64>> = h.experts().iter().map(|e| e.normalized_latent()).collect();
        for l in &hl[1..] {
            for (a, b) in l.iter().zip(&hl[0]) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn panel_is_deterministic() {
        let a = Panel::homogeneous(&[0.6, 0.4], 3, 0.3, 9).elicit_all();
        let b = Panel::homogeneous(&[0.6, 0.4], 3, 0.3, 9).elicit_all();
        assert_eq!(a, b);
    }
}
