//! Simulated expert judgment for the MCDA validation stage.
//!
//! The paper validates its analytical metric selection with an MCDA
//! algorithm "together with experts' judgment". The original experts are
//! unavailable, so this crate models them: each [`Expert`] holds a *latent*
//! importance vector over the criteria (what they actually believe) and
//! produces Saaty-scale pairwise judgments perturbed by log-normal noise
//! and snapped to the 1–9 scale (what they can express on a
//! questionnaire). [`Panel`]s elicit whole judgment sets, aggregate them
//! (AIJ) and measure inter-expert agreement (Kendall's W).
//!
//! The noise parameter is swept by the Fig. 4 robustness experiment: at
//! zero noise the panel reproduces the latent ordering exactly; as noise
//! grows, the MCDA output degrades gracefully.
//!
//! ```
//! use vdbench_experts::{Expert, Panel};
//!
//! // Three experts who broadly agree that criterion 0 dominates.
//! let panel = Panel::homogeneous(&[0.6, 0.3, 0.1], 3, 0.1, 42);
//! let matrices = panel.elicit_all();
//! assert_eq!(matrices.len(), 3);
//! let w = panel.agreement().unwrap();
//! assert!(w > 0.5, "low-noise panels agree: W = {w}");
//! # let _ = Expert::new("e", vec![0.5, 0.5], 0.0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expert;
pub mod panel;

pub use expert::Expert;
pub use panel::Panel;
