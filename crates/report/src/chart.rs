//! ASCII line charts for terminal-rendered figures.

use crate::series::Series;
use crate::{ReportError, Result};
use std::fmt::Write as _;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// A multi-series ASCII line chart on a character grid.
///
/// Good enough to eyeball the *shape* of every figure straight from the
/// terminal; the exact data goes to CSV via [`crate::csv`].
///
/// ```
/// use vdbench_report::{AsciiChart, Series};
///
/// let s = Series::from_points("linear", (0..10).map(|i| (i as f64, i as f64)).collect());
/// let chart = AsciiChart::new(40, 10).with_title("demo");
/// let text = chart.render(&[s]).unwrap();
/// assert!(text.contains("demo"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    title: Option<String>,
    y_bounds: Option<(f64, f64)>,
}

impl AsciiChart {
    /// Creates a chart with the given plot-area size in characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart must be at least 2x2");
        AsciiChart {
            width,
            height,
            title: None,
            y_bounds: None,
        }
    }

    /// Adds a title line.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Fixes the y axis instead of auto-scaling.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn with_y_bounds(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "y bounds must be increasing");
        self.y_bounds = Some((lo, hi));
        self
    }

    /// Renders the chart.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::Empty`] when no series contains a finite
    /// point.
    pub fn render(&self, series: &[Series]) -> Result<String> {
        let mut x_lo = f64::INFINITY;
        let mut x_hi = f64::NEG_INFINITY;
        let mut y_lo = f64::INFINITY;
        let mut y_hi = f64::NEG_INFINITY;
        for s in series {
            if let Some((lo, hi)) = s.x_range() {
                x_lo = x_lo.min(lo);
                x_hi = x_hi.max(hi);
            }
            if let Some((lo, hi)) = s.y_range() {
                y_lo = y_lo.min(lo);
                y_hi = y_hi.max(hi);
            }
        }
        if x_lo > x_hi {
            return Err(ReportError::Empty);
        }
        if let Some((lo, hi)) = self.y_bounds {
            y_lo = lo;
            y_hi = hi;
        }
        if x_hi == x_lo {
            x_hi = x_lo + 1.0;
        }
        if y_hi == y_lo {
            y_hi = y_lo + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = (((x - x_lo) / (x_hi - x_lo)) * (self.width - 1) as f64).round() as usize;
                let cy_f = ((y - y_lo) / (y_hi - y_lo)) * (self.height - 1) as f64;
                if !(0.0..=(self.height - 1) as f64).contains(&cy_f) {
                    continue; // outside fixed bounds
                }
                let cy = self.height - 1 - cy_f.round() as usize;
                if cx < self.width && cy < self.height {
                    grid[cy][cx] = glyph;
                }
            }
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let _ = writeln!(out, "{:>9.3} ┤", y_hi);
        for (i, row) in grid.iter().enumerate() {
            let label = if i == self.height - 1 {
                format!("{y_lo:>9.3} ┤")
            } else {
                " ".repeat(10) + "│"
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label}{line}");
        }
        let _ = writeln!(out, "{}└{}", " ".repeat(10), "─".repeat(self.width));
        let _ = writeln!(
            out,
            "{}{:<12.3}{:>width$.3}",
            " ".repeat(11),
            x_lo,
            x_hi,
            width = self.width.saturating_sub(12)
        );
        for (si, s) in series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(name: &str, slope: f64) -> Series {
        Series::from_points(
            name,
            (0..20).map(|i| (i as f64, slope * i as f64)).collect(),
        )
    }

    #[test]
    fn renders_title_and_legend() {
        let chart = AsciiChart::new(30, 8).with_title("Figure 1");
        let out = chart.render(&[linear("up", 1.0)]).unwrap();
        assert!(out.contains("Figure 1"));
        assert!(out.contains("* up"));
        assert!(out.contains('*'));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let chart = AsciiChart::new(30, 8);
        let out = chart.render(&[linear("a", 1.0), linear("b", 0.5)]).unwrap();
        assert!(out.contains("* a"));
        assert!(out.contains("o b"));
    }

    #[test]
    fn empty_input_is_error() {
        let chart = AsciiChart::new(10, 4);
        assert_eq!(chart.render(&[]).unwrap_err(), ReportError::Empty);
        let nan_series = Series::from_points("nan", vec![(f64::NAN, f64::NAN)]);
        assert_eq!(chart.render(&[nan_series]).unwrap_err(), ReportError::Empty);
    }

    #[test]
    fn constant_series_renders() {
        let s = Series::from_points("flat", vec![(0.0, 1.0), (5.0, 1.0)]);
        let out = AsciiChart::new(20, 5).render(&[s]).unwrap();
        assert!(out.contains('*'));
    }

    #[test]
    fn fixed_bounds_clip() {
        let s = Series::from_points("spike", vec![(0.0, 0.5), (1.0, 100.0)]);
        let out = AsciiChart::new(20, 5)
            .with_y_bounds(0.0, 1.0)
            .render(&[s])
            .unwrap();
        // The in-range point renders; the spike is clipped without panicking.
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_chart_panics() {
        let _ = AsciiChart::new(1, 1);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn inverted_bounds_panic() {
        let _ = AsciiChart::new(10, 5).with_y_bounds(1.0, 0.0);
    }
}
