//! Rendering of experiment output: tables, ASCII charts and CSV series.
//!
//! Every table and figure binary in `vdbench-bench` renders through this
//! crate so the suite's output is uniform: [`table::Table`] for the paper's
//! tables (ASCII, Markdown and CSV renderings), [`chart::AsciiChart`] for
//! quick terminal figures, and [`series::Series`] / [`csv`] for the raw
//! figure data a plotting pipeline would consume.
//!
//! ```
//! use vdbench_report::table::Table;
//!
//! let mut t = Table::new(vec!["tool", "recall"]);
//! t.push_row(vec!["taint".into(), "0.91".into()]).unwrap();
//! let ascii = t.render_ascii();
//! assert!(ascii.contains("taint"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod format;
pub mod series;
pub mod table;

pub use chart::AsciiChart;
pub use series::Series;
pub use table::Table;

use std::fmt;

/// Errors produced while assembling report artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A row had a different number of cells than the header.
    RowWidthMismatch {
        /// Expected cell count (header width).
        expected: usize,
        /// Provided cell count.
        actual: usize,
    },
    /// A chart or series was given no data.
    Empty,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::RowWidthMismatch { expected, actual } => {
                write!(f, "row has {actual} cells, header has {expected}")
            }
            ReportError::Empty => write!(f, "no data to render"),
        }
    }
}

impl std::error::Error for ReportError {}

/// Crate-wide result alias.
pub type Result<T, E = ReportError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ReportError::RowWidthMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("2 cells"));
        assert!(ReportError::Empty.to_string().contains("no data"));
    }
}
