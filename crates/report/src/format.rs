//! Value formatting helpers shared by tables and charts.

/// Formats a metric value with sensible precision: 3 decimal places for
/// small magnitudes, fewer for large ones, `—` for NaN (the conventional
/// rendering of an undefined metric in the paper's tables) and `∞` for
/// infinities.
pub fn metric(v: f64) -> String {
    if v.is_nan() {
        return "—".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "∞" } else { "-∞" }.to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a value in `[0, 1]` as a percentage with one decimal.
pub fn percent(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    } else {
        format!("{:.1}%", v * 100.0)
    }
}

/// Formats an interval as `mid [lo, hi]`.
pub fn interval(point: f64, lo: f64, hi: f64) -> String {
    format!("{} [{}, {}]", metric(point), metric(lo), metric(hi))
}

/// Left-pads or truncates a string to exactly `width` display columns
/// (best-effort for ASCII content, which is all the tables emit).
pub fn fit(s: &str, width: usize) -> String {
    let len = s.chars().count();
    if len >= width {
        s.chars().take(width).collect()
    } else {
        format!("{s}{}", " ".repeat(width - len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_precision_tiers() {
        assert_eq!(metric(0.123456), "0.123");
        assert_eq!(metric(12.3456), "12.35");
        assert_eq!(metric(123.456), "123.5");
        assert_eq!(metric(1234.56), "1235");
        assert_eq!(metric(-0.5), "-0.500");
    }

    #[test]
    fn metric_special_values() {
        assert_eq!(metric(f64::NAN), "—");
        assert_eq!(metric(f64::INFINITY), "∞");
        assert_eq!(metric(f64::NEG_INFINITY), "-∞");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.1234), "12.3%");
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(f64::NAN), "—");
    }

    #[test]
    fn interval_formatting() {
        assert_eq!(interval(0.5, 0.4, 0.6), "0.500 [0.400, 0.600]");
    }

    #[test]
    fn fit_pads_and_truncates() {
        assert_eq!(fit("ab", 4), "ab  ");
        assert_eq!(fit("abcdef", 4), "abcd");
        assert_eq!(fit("", 2), "  ");
    }
}
