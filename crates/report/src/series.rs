//! Named data series — the raw content of a figure.

use serde::{Deserialize, Serialize};

/// A named sequence of `(x, y)` points, one line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from points.
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimum and maximum y over finite points; `None` when there are no
    /// finite points.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &self.points {
            if y.is_finite() {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Minimum and maximum x over finite points.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(x, _) in &self.points {
            if x.is_finite() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_ranges() {
        let mut s = Series::new("recall");
        assert!(s.is_empty());
        assert_eq!(s.y_range(), None);
        s.push(1.0, 0.5);
        s.push(2.0, 0.9);
        s.extend([(3.0, 0.7)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.y_range(), Some((0.5, 0.9)));
        assert_eq!(s.x_range(), Some((1.0, 3.0)));
    }

    #[test]
    fn non_finite_points_ignored_in_ranges() {
        let s = Series::from_points("x", vec![(0.0, f64::NAN), (1.0, 2.0)]);
        assert_eq!(s.y_range(), Some((2.0, 2.0)));
        let all_nan = Series::from_points("y", vec![(f64::NAN, f64::NAN)]);
        assert_eq!(all_nan.y_range(), None);
        assert_eq!(all_nan.x_range(), None);
    }
}
