//! Width-aware text tables.

use crate::{ReportError, Result};
use std::fmt::Write as _;

/// A simple rectangular table with a header row, rendering to ASCII box
/// drawing, Markdown or CSV.
///
/// ```
/// use vdbench_report::Table;
///
/// let mut t = Table::new(vec!["metric", "S1", "S2"]);
/// t.push_row(vec!["PPV".into(), "0.91".into(), "0.44".into()]).unwrap();
/// t.push_row(vec!["TPR".into(), "0.62".into(), "0.97".into()]).unwrap();
/// let md = t.render_markdown();
/// assert!(md.starts_with("| metric"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a caption rendered above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a data row.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::RowWidthMismatch`] when the cell count
    /// differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<()> {
        if row.len() != self.header.len() {
            return Err(ReportError::RowWidthMismatch {
                expected: self.header.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders as an ASCII box table.
    pub fn render_ascii(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let render_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(out, "{}", render_row(&self.header));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        let _ = writeln!(out, "{sep}");
        out
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "**{t}**");
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing separators).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]).with_title("Table X");
        t.push_row(vec!["alpha".into(), "1".into()]).unwrap();
        t.push_row(vec!["b".into(), "22".into()]).unwrap();
        t
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn row_width_enforced() {
        let mut t = Table::new(vec!["a", "b"]);
        assert_eq!(
            t.push_row(vec!["x".into()]).unwrap_err(),
            ReportError::RowWidthMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert!(t.push_row(vec!["x".into(), "y".into()]).is_ok());
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.column_count(), 2);
    }

    #[test]
    fn ascii_rendering_aligns() {
        let s = sample().render_ascii();
        assert!(s.contains("Table X"));
        let lines: Vec<&str> = s.lines().skip(1).collect(); // skip title
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("| alpha |"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().render_markdown();
        assert!(md.contains("**Table X**"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["has,comma".into(), "has\"quote".into()])
            .unwrap();
        let csv = t.render_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn unicode_width_handling() {
        let mut t = Table::new(vec!["κ"]);
        t.push_row(vec!["0.95".into()]).unwrap();
        let s = t.render_ascii();
        assert!(s.contains("0.95"));
    }
}
