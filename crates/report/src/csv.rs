//! CSV export of figure data series.

use crate::series::Series;
use std::fmt::Write as _;

/// Serializes several series into a long-format CSV
/// (`series,x,y` per row) — the layout plotting tools ingest directly.
pub fn series_long(series: &[Series]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        for &(x, y) in &s.points {
            let _ = writeln!(out, "{},{},{}", escape(&s.name), num(x), num(y));
        }
    }
    out
}

/// Serializes series sharing an x grid into wide format
/// (`x,<name1>,<name2>,…`). Series are sampled by position; rows stop at
/// the shortest series.
pub fn series_wide(series: &[Series]) -> String {
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&escape(&s.name));
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let rows = series.iter().map(|s| s.len()).min().unwrap_or(0);
    for i in 0..rows {
        let _ = write!(out, "{}", num(series[0].points[i].0));
        for s in series {
            let _ = write!(out, ",{}", num(s.points[i].1));
        }
        out.push('\n');
    }
    out
}

fn num(v: f64) -> String {
    if v.is_nan() {
        String::new() // empty cell, the CSV convention for missing data
    } else {
        format!("{v}")
    }
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_format() {
        let s = vec![
            Series::from_points("a", vec![(1.0, 2.0)]),
            Series::from_points("b,c", vec![(3.0, f64::NAN)]),
        ];
        let csv = series_long(&s);
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("a,1,2\n"));
        assert!(csv.contains("\"b,c\",3,\n"));
    }

    #[test]
    fn wide_format() {
        let s = vec![
            Series::from_points("a", vec![(1.0, 2.0), (2.0, 3.0)]),
            Series::from_points("b", vec![(1.0, 5.0), (2.0, 6.0), (3.0, 7.0)]),
        ];
        let csv = series_wide(&s);
        assert!(csv.starts_with("x,a,b\n"));
        // Truncates to shortest series (2 rows).
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,2,5"));
        assert!(csv.contains("2,3,6"));
    }

    #[test]
    fn wide_format_empty() {
        assert_eq!(series_wide(&[]), "x\n");
    }
}
