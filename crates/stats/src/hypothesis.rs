//! Hypothesis tests used when comparing detection tools.
//!
//! Two tools run on the *same* workload produce paired binary outcomes per
//! code unit, so the right significance test for "tool A detects more than
//! tool B" is McNemar's test on the discordant pairs. A permutation test on
//! arbitrary statistics and a two-proportion z-test round out the toolkit.

use crate::rng::SeededRng;
use crate::special::{binomial_cdf, binomial_pmf, chi_square_cdf, normal_cdf};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// Value of the test statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// McNemar's test on paired binary outcomes.
///
/// `b` = units where only tool A succeeded, `c` = units where only tool B
/// succeeded. Uses the exact binomial test when `b + c < 26` and the
/// continuity-corrected chi-square approximation otherwise.
///
/// # Errors
///
/// Returns [`StatsError::Undefined`] when there are no discordant pairs
/// (the test carries no information).
///
/// ```
/// use vdbench_stats::hypothesis::mcnemar;
/// let r = mcnemar(30, 5).unwrap();
/// assert!(r.p_value < 0.01); // strongly asymmetric discordance
/// ```
pub fn mcnemar(b: u64, c: u64) -> Result<TestResult> {
    let n = b + c;
    if n == 0 {
        return Err(StatsError::Undefined {
            reason: "mcnemar with zero discordant pairs",
        });
    }
    if n < 26 {
        // Exact two-sided binomial test at p = 1/2.
        let k = b.min(c);
        let mut tail = binomial_cdf(n, k, 0.5)?;
        // Two-sided: double the smaller tail (capped at 1); subtract the
        // double-counted centre term when b == c.
        if b == c {
            tail -= binomial_pmf(n, k, 0.5) / 2.0;
        }
        let p = (2.0 * tail).min(1.0);
        Ok(TestResult {
            statistic: k as f64,
            p_value: p,
        })
    } else {
        let diff = (b as f64 - c as f64).abs() - 1.0; // continuity correction
        let stat = (diff.max(0.0)).powi(2) / n as f64;
        let p = 1.0 - chi_square_cdf(stat, 1.0)?;
        Ok(TestResult {
            statistic: stat,
            p_value: p,
        })
    }
}

/// Two-proportion z-test (pooled) for `k1/n1` vs `k2/n2`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either trial count is zero,
/// [`StatsError::InvalidParameter`] when successes exceed trials and
/// [`StatsError::Undefined`] when the pooled proportion is degenerate
/// (0 or 1, which makes the variance zero).
pub fn two_proportion_z(k1: u64, n1: u64, k2: u64, n2: u64) -> Result<TestResult> {
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::EmptyInput);
    }
    if k1 > n1 {
        return Err(StatsError::InvalidParameter {
            name: "k1",
            value: k1 as f64,
        });
    }
    if k2 > n2 {
        return Err(StatsError::InvalidParameter {
            name: "k2",
            value: k2 as f64,
        });
    }
    let p1 = k1 as f64 / n1 as f64;
    let p2 = k2 as f64 / n2 as f64;
    let pooled = (k1 + k2) as f64 / (n1 + n2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var == 0.0 {
        return Err(StatsError::Undefined {
            reason: "two-proportion z with degenerate pooled proportion",
        });
    }
    let z = (p1 - p2) / var.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Exact binomial test of `k` successes in `n` trials against success
/// probability `p0` (two-sided, by doubling the smaller tail).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for `n == 0` and
/// [`StatsError::InvalidParameter`] for `k > n` or `p0` outside `[0, 1]`.
pub fn binomial_test(k: u64, n: u64, p0: f64) -> Result<TestResult> {
    if n == 0 {
        return Err(StatsError::EmptyInput);
    }
    if k > n {
        return Err(StatsError::InvalidParameter {
            name: "k",
            value: k as f64,
        });
    }
    if !(0.0..=1.0).contains(&p0) {
        return Err(StatsError::InvalidParameter {
            name: "p0",
            value: p0,
        });
    }
    let lower = binomial_cdf(n, k, p0)?;
    let upper = if k == 0 {
        1.0
    } else {
        1.0 - binomial_cdf(n, k - 1, p0)?
    };
    let p = (2.0 * lower.min(upper)).min(1.0);
    Ok(TestResult {
        statistic: k as f64,
        p_value: p,
    })
}

/// Permutation test for a difference in means between two independent
/// samples (two-sided). Exactly distribution-free; `rounds` label
/// permutations are drawn uniformly.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if either sample is empty.
pub fn permutation_test_mean_diff(
    a: &[f64],
    b: &[f64],
    rounds: usize,
    rng: &mut SeededRng,
) -> Result<TestResult> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let observed = mean(a) - mean(b);
    let mut pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let na = a.len();
    let mut extreme = 0usize;
    for _ in 0..rounds {
        rng.shuffle(&mut pooled);
        let m1 = pooled[..na].iter().sum::<f64>() / na as f64;
        let m2 = pooled[na..].iter().sum::<f64>() / (pooled.len() - na) as f64;
        if (m1 - m2).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    // Add-one smoothing keeps the p-value away from an impossible zero.
    let p = (extreme + 1) as f64 / (rounds + 1) as f64;
    Ok(TestResult {
        statistic: observed,
        p_value: p.min(1.0),
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Holm–Bonferroni step-down adjustment for a family of p-values.
///
/// Returns the adjusted p-values in the input order: sort ascending, scale
/// the `i`-th smallest by `m − i`, then enforce monotonicity with a running
/// maximum and cap at 1. Rejecting `adjusted[i] < alpha` controls the
/// family-wise error rate at `alpha` — uniformly more powerful than plain
/// Bonferroni, with no independence assumption. An empty slice yields an
/// empty vector.
///
/// ```
/// use vdbench_stats::hypothesis::holm_bonferroni;
/// let adj = holm_bonferroni(&[0.01, 0.04, 0.03]);
/// assert!((adj[0] - 0.03).abs() < 1e-12); // 0.01 * 3
/// assert!(adj[1] >= adj[2] - 1e-12 || adj[1] <= 1.0);
/// ```
pub fn holm_bonferroni(pvalues: &[f64]) -> Vec<f64> {
    let m = pvalues.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| pvalues[i].total_cmp(&pvalues[j]));
    let mut adjusted = vec![0.0; m];
    let mut running_max = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        let scaled = (pvalues[idx] * (m - rank) as f64).min(1.0);
        running_max = running_max.max(scaled);
        adjusted[idx] = running_max;
    }
    adjusted
}

/// Friedman test for `k` related samples: are the tools ranked
/// consistently different across `n` blocks (workloads)?
///
/// `scores[block][treatment]` holds each tool's score on each workload;
/// higher is better (only ranks matter). Uses mid-ranks within blocks and
/// the chi-square approximation with `k − 1` degrees of freedom.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] with fewer than two blocks or two
/// treatments, [`StatsError::LengthMismatch`] for ragged input and
/// [`StatsError::Undefined`] when every block ties all treatments.
pub fn friedman(scores: &[Vec<f64>]) -> Result<TestResult> {
    if scores.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    let k = scores[0].len();
    if k < 2 {
        return Err(StatsError::EmptyInput);
    }
    for row in scores {
        if row.len() != k {
            return Err(StatsError::LengthMismatch {
                left: k,
                right: row.len(),
            });
        }
    }
    let n = scores.len() as f64;
    let kf = k as f64;
    let mut rank_sums = vec![0.0; k];
    let mut tie_correction = 0.0;
    // Rank scratch hoisted out of the per-block loop; the returned tie term
    // Σ(t³ − t) is exact integer arithmetic in f64, so accumulating it
    // per-block is bit-identical to the old clone-and-sort group-at-a-time
    // pass this replaces.
    let mut idx_scratch = Vec::with_capacity(k);
    let mut rank_scratch = Vec::with_capacity(k);
    for row in scores {
        tie_correction +=
            crate::correlation::ranks_with_scratch(row, &mut idx_scratch, &mut rank_scratch);
        for (s, v) in rank_sums.iter_mut().zip(&rank_scratch) {
            *s += v;
        }
    }
    let mean_rank = n * (kf + 1.0) / 2.0;
    let s: f64 = rank_sums.iter().map(|r| (r - mean_rank).powi(2)).sum();
    let denom = n * kf * (kf + 1.0) - tie_correction / (kf - 1.0);
    if denom <= 0.0 {
        return Err(StatsError::Undefined {
            reason: "friedman over fully tied blocks",
        });
    }
    let stat = 12.0 * s / denom;
    let p = 1.0 - chi_square_cdf(stat, kf - 1.0)?;
    Ok(TestResult {
        statistic: stat,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Cliff's delta effect size: `P(x > y) − P(x < y)` for independent
/// samples, in `[-1, 1]`. The standard non-parametric companion to the
/// significance tests above ("the tools differ — by how much?").
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if either sample is empty.
pub fn cliffs_delta(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut greater = 0i64;
    let mut less = 0i64;
    for &a in x {
        for &b in y {
            if a > b {
                greater += 1;
            } else if a < b {
                less += 1;
            }
        }
    }
    Ok((greater - less) as f64 / (x.len() * y.len()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcnemar_balanced_not_significant() {
        let r = mcnemar(10, 10).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn mcnemar_asymmetric_significant() {
        let r = mcnemar(30, 5).unwrap();
        assert!(r.significant_at(0.01), "p={}", r.p_value);
        // Large-sample branch.
        let r = mcnemar(300, 50).unwrap();
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn mcnemar_exact_small_sample() {
        // b+c = 6 < 26 triggers the exact branch; 6 vs 0 has
        // p = 2 * (1/2)^6 = 0.03125.
        let r = mcnemar(6, 0).unwrap();
        assert!((r.p_value - 0.03125).abs() < 1e-10, "p={}", r.p_value);
    }

    #[test]
    fn mcnemar_no_discordance_undefined() {
        assert!(matches!(mcnemar(0, 0), Err(StatsError::Undefined { .. })));
    }

    #[test]
    fn mcnemar_symmetry() {
        let r1 = mcnemar(20, 8).unwrap();
        let r2 = mcnemar(8, 20).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn two_proportion_basics() {
        let r = two_proportion_z(90, 100, 60, 100).unwrap();
        assert!(r.significant_at(0.01));
        assert!(r.statistic > 0.0);
        let r = two_proportion_z(50, 100, 52, 100).unwrap();
        assert!(!r.significant_at(0.05));
        assert!(two_proportion_z(5, 0, 1, 10).is_err());
        assert!(two_proportion_z(11, 10, 1, 10).is_err());
        assert!(matches!(
            two_proportion_z(0, 10, 0, 10),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn binomial_test_fair_coin() {
        let r = binomial_test(5, 10, 0.5).unwrap();
        assert!(r.p_value > 0.9);
        let r = binomial_test(10, 10, 0.5).unwrap();
        assert!(r.p_value < 0.01);
        let r = binomial_test(0, 10, 0.5).unwrap();
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn binomial_test_domain() {
        assert!(binomial_test(1, 0, 0.5).is_err());
        assert!(binomial_test(5, 4, 0.5).is_err());
        assert!(binomial_test(1, 4, 1.5).is_err());
    }

    #[test]
    fn permutation_test_detects_shift() {
        let a: Vec<f64> = (0..60).map(|i| 5.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| (i % 3) as f64).collect();
        let mut rng = SeededRng::new(12);
        let r = permutation_test_mean_diff(&a, &b, 500, &mut rng).unwrap();
        assert!(r.significant_at(0.01), "p={}", r.p_value);
        assert!((r.statistic - 5.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_test_null_is_uniformish() {
        let a: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i + 3) % 7) as f64).collect();
        let mut rng = SeededRng::new(13);
        let r = permutation_test_mean_diff(&a, &b, 500, &mut rng).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn permutation_test_empty_rejected() {
        let mut rng = SeededRng::new(1);
        assert!(permutation_test_mean_diff(&[], &[1.0], 10, &mut rng).is_err());
        assert!(permutation_test_mean_diff(&[1.0], &[], 10, &mut rng).is_err());
    }

    #[test]
    fn friedman_detects_consistent_ordering() {
        // Tool 2 always best, tool 0 always worst, across 8 workloads.
        let scores: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![0.1 + i as f64 * 0.01, 0.5, 0.9 - i as f64 * 0.01])
            .collect();
        let r = friedman(&scores).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn friedman_null_when_orderings_rotate() {
        // Each tool wins equally often: no consistent difference.
        let scores = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 1.0, 2.0],
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 1.0, 2.0],
        ];
        let r = friedman(&scores).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn friedman_input_validation() {
        assert!(friedman(&[]).is_err());
        assert!(friedman(&[vec![1.0, 2.0]]).is_err());
        assert!(friedman(&[vec![1.0], vec![2.0]]).is_err());
        assert!(friedman(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        assert!(matches!(
            friedman(&[vec![1.0, 1.0], vec![2.0, 2.0]]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn friedman_handles_ties() {
        let scores = vec![
            vec![1.0, 1.0, 3.0],
            vec![1.0, 2.0, 3.0],
            vec![2.0, 2.0, 3.0],
            vec![1.0, 2.0, 3.0],
            vec![1.0, 1.5, 3.0],
        ];
        let r = friedman(&scores).unwrap();
        assert!(r.statistic > 0.0);
        assert!(r.significant_at(0.1), "p = {}", r.p_value);
    }

    #[test]
    fn holm_bonferroni_reference_values() {
        // Classic worked example: sorted p = (0.01, 0.03, 0.04) with m = 3
        // scales to (0.03, 0.06, 0.06 after monotonicity).
        let adj = holm_bonferroni(&[0.04, 0.01, 0.03]);
        assert!((adj[1] - 0.03).abs() < 1e-12, "adj={adj:?}");
        assert!((adj[2] - 0.06).abs() < 1e-12, "adj={adj:?}");
        assert!((adj[0] - 0.06).abs() < 1e-12, "adj={adj:?}");
    }

    #[test]
    fn holm_bonferroni_monotone_capped_and_empty() {
        assert!(holm_bonferroni(&[]).is_empty());
        let adj = holm_bonferroni(&[0.9, 0.8, 0.7]);
        assert!(adj.iter().all(|&p| p == 1.0), "adj={adj:?}");
        // A single p-value passes through unchanged.
        let adj = holm_bonferroni(&[0.2]);
        assert!((adj[0] - 0.2).abs() < 1e-12);
        // Adjusted values never undercut a smaller raw p's adjustment.
        let adj = holm_bonferroni(&[0.001, 0.5, 0.02, 0.02]);
        let mut pairs: Vec<(f64, f64)> = [0.001, 0.5, 0.02, 0.02]
            .iter()
            .copied()
            .zip(adj.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-15, "pairs={pairs:?}");
        }
    }

    #[test]
    fn cliffs_delta_reference_values() {
        assert_eq!(cliffs_delta(&[2.0, 3.0], &[0.0, 1.0]).unwrap(), 1.0);
        assert_eq!(cliffs_delta(&[0.0], &[1.0]).unwrap(), -1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        // Partial overlap: x={1,3}, y={2}: (3>2) and (1<2) → 0.
        assert_eq!(cliffs_delta(&[1.0, 3.0], &[2.0]).unwrap(), 0.0);
        assert!(cliffs_delta(&[], &[1.0]).is_err());
        assert!(cliffs_delta(&[1.0], &[]).is_err());
    }
}
