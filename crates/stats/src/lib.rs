//! Statistics substrate for the `vdbench` benchmarking suite.
//!
//! This crate provides the numerical machinery used throughout the
//! reproduction of *"On the Metrics for Benchmarking Vulnerability Detection
//! Tools"* (Antunes & Vieira, DSN 2015): descriptive statistics, special
//! functions, binomial confidence intervals, bootstrap resampling, rank
//! correlation and hypothesis tests.
//!
//! Everything is implemented from first principles on top of `std` and
//! [`rand`], so the whole workspace stays within the approved dependency set.
//!
//! # Quick example
//!
//! ```
//! use vdbench_stats::{Summary, correlation};
//!
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! let ys = [1.1, 2.2, 2.9, 4.3];
//! let summary = Summary::from_slice(&xs);
//! assert!((summary.mean() - 2.5).abs() < 1e-12);
//! let tau = correlation::kendall_tau(&xs, &ys).unwrap();
//! assert!((tau - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod histogram;
pub mod hypothesis;
pub mod intervals;
pub mod rng;
pub mod special;

pub use bootstrap::{Bootstrap, BootstrapCi};
pub use descriptive::Summary;
pub use histogram::Histogram;
pub use intervals::{BinomialInterval, Confidence};
pub use rng::{derive_seed, SeededRng};

use std::fmt;

/// Errors produced by statistical routines in this crate.
///
/// All public fallible functions return [`Result<T, StatsError>`]; the
/// variants carry enough context to produce an actionable message.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty but the statistic requires data.
    EmptyInput,
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its mathematical domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
    /// The statistic is undefined for the given input (for example a rank
    /// correlation over constant data).
    Undefined {
        /// Human-readable description of the degeneracy.
        reason: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input data is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired inputs differ in length ({left} vs {right})")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is out of domain (value {value})")
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine `{routine}` failed to converge")
            }
            StatsError::Undefined { reason } => {
                write!(f, "statistic undefined: {reason}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T, E = StatsError> = std::result::Result<T, E>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::LengthMismatch { left: 3, right: 5 };
        assert_eq!(e.to_string(), "paired inputs differ in length (3 vs 5)");
        let e = StatsError::InvalidParameter {
            name: "alpha",
            value: -1.0,
        };
        assert!(e.to_string().contains("alpha"));
        assert!(StatsError::EmptyInput.to_string().contains("empty"));
        let e = StatsError::NoConvergence { routine: "betainc" };
        assert!(e.to_string().contains("betainc"));
        let e = StatsError::Undefined { reason: "constant" };
        assert!(e.to_string().contains("constant"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
