//! Deterministic random sampling helpers.
//!
//! Every stochastic component in the `vdbench` workspace takes an explicit
//! `u64` seed so experiments are exactly reproducible. [`SeededRng`] wraps a
//! [`rand::rngs::StdRng`] with the sampling primitives the suite needs:
//! normal and gamma variates (implemented locally to avoid extra
//! dependencies), index sampling with and without replacement, and stream
//! splitting for independent sub-experiments.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derives the seed of sub-stream `index` from a `base` seed with a
/// SplitMix64-style finalizer.
///
/// This is the primitive behind deterministic *parallel* sampling: a
/// caller draws one `base` value from its sequential generator, then every
/// work item `i` builds its own `SeededRng::new(derive_seed(base, i))`.
/// The result depends only on `(base, index)` — never on which thread ran
/// the item or in what order — so parallel and serial execution produce
/// bit-identical output.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random number generator with statistics-oriented helpers.
///
/// ```
/// use vdbench_stats::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(), b.uniform()); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a *numbered* sub-stream,
    /// consuming one draw from this generator for the base. Equivalent to
    /// `SeededRng::new(derive_seed(self.next_u64(), index))`; see
    /// [`derive_seed`] for the determinism contract.
    pub fn split_index(&mut self, index: u64) -> SeededRng {
        SeededRng::new(derive_seed(self.inner.next_u64(), index))
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// The derivation mixes the label into the parent seed with the
    /// FNV-1a hash, so sibling streams do not overlap and adding a stream
    /// never perturbs existing ones.
    pub fn split(&mut self, label: &str) -> SeededRng {
        SeededRng::new(self.split_seed(label))
    }

    /// Returns the seed [`split`](Self::split) would construct its child
    /// from, consuming the same single parent draw. Lets callers record a
    /// sub-stream's identity (e.g. for deferred materialization) without
    /// instantiating the generator.
    pub fn split_seed(&mut self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.split_seed_hashed(h)
    }

    /// [`split_seed`](Self::split_seed) for a label whose FNV-1a hash the
    /// caller computed itself — `split_seed_hashed(fnv1a(label))` is
    /// bit-identical to `split_seed(label)` and consumes the same single
    /// parent draw. This is the allocation-free path for hot label
    /// families like `"unit-{i}"`, where the caller can hash the shared
    /// prefix once and fold only the digits per call.
    pub fn split_seed_hashed(&mut self, label_hash: u64) -> u64 {
        label_hash ^ self.inner.next_u64()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_in requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal requires std_dev >= 0");
        mean + std_dev * self.standard_normal()
    }

    /// Gamma(shape, scale) variate via Marsaglia–Tsang squeeze, with the
    /// standard boost for `shape < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is non-positive.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0, "gamma requires positive params");
        if shape < 1.0 {
            // Boost: X_a = X_{a+1} * U^{1/a}
            let boost = self.uniform().powf(1.0 / shape);
            return self.gamma(shape + 1.0, scale) * boost;
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * scale;
            }
        }
    }

    /// Beta(alpha, beta) variate via the two-gamma construction.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn beta(&mut self, alpha: f64, beta: f64) -> f64 {
        let x = self.gamma(alpha, 1.0);
        let y = self.gamma(beta, 1.0);
        x / (x + y)
    }

    /// Binomial(n, p) variate by direct simulation (adequate for the n used
    /// throughout the suite).
    pub fn binomial(&mut self, n: usize, p: f64) -> usize {
        (0..n).filter(|_| self.bernoulli(p)).count()
    }

    /// Samples `k` indices from `0..n` **without** replacement using a
    /// partial Fisher–Yates shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx = Vec::with_capacity(n);
        self.sample_without_replacement_into(n, k, &mut idx);
        idx
    }

    /// [`Self::sample_without_replacement`] into a caller-provided buffer —
    /// the hot-loop form used by the bootstrap's subsample kernel, which
    /// draws one index set per replicate and would otherwise allocate a
    /// fresh `Vec` each time. Consumes **exactly** the same generator draws
    /// as the allocating form, so the two are interchangeable without
    /// perturbing downstream streams.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_without_replacement_into(&mut self, n: usize, k: usize, idx: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} from {n} without replacement");
        idx.clear();
        idx.extend(0..n);
        for i in 0..k {
            let j = self.range(i, n.max(i + 1));
            idx.swap(i, j);
        }
        idx.truncate(k);
    }

    /// Samples `k` indices from `0..n` **with** replacement (the bootstrap
    /// primitive).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` and `k > 0`.
    pub fn sample_with_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.index(n)).collect()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses one element of a non-empty slice uniformly.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Samples an index according to the (non-negative, not necessarily
    /// normalized) weights. Returns `None` when all weights are zero or the
    /// slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Raw access to the underlying RNG for interoperating with `rand`
    /// distributions elsewhere in the workspace.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;

    #[test]
    fn determinism() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn split_seed_hashed_matches_split_seed() {
        let mut a = SeededRng::new(0xFEED);
        let mut b = SeededRng::new(0xFEED);
        for i in 0..50u64 {
            let label = format!("unit-{i}");
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            assert_eq!(a.split_seed(&label), b.split_seed_hashed(h), "unit {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let mut parent1 = SeededRng::new(9);
        let mut parent2 = SeededRng::new(9);
        let mut c1 = parent1.split("corpus");
        let mut c2 = parent2.split("corpus");
        assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());

        let mut parent3 = SeededRng::new(9);
        let mut d = parent3.split("detectors");
        assert_ne!(c1.uniform().to_bits(), d.uniform().to_bits());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeededRng::new(42);
        let s: Summary = (0..50_000).map(|_| rng.standard_normal()).collect();
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!((s.sample_std_dev() - 1.0).abs() < 0.02);
    }

    #[test]
    fn gamma_moments() {
        let mut rng = SeededRng::new(42);
        let shape = 3.0;
        let scale = 2.0;
        let s: Summary = (0..50_000).map(|_| rng.gamma(shape, scale)).collect();
        assert!((s.mean() - shape * scale).abs() < 0.1);
        assert!((s.sample_variance() - shape * scale * scale).abs() < 0.5);
    }

    #[test]
    fn gamma_small_shape() {
        let mut rng = SeededRng::new(42);
        let s: Summary = (0..50_000).map(|_| rng.gamma(0.5, 1.0)).collect();
        assert!((s.mean() - 0.5).abs() < 0.02);
        assert!(s.min() > 0.0);
    }

    #[test]
    fn beta_bounds_and_mean() {
        let mut rng = SeededRng::new(7);
        let s: Summary = (0..20_000).map(|_| rng.beta(2.0, 6.0)).collect();
        assert!(s.min() >= 0.0 && s.max() <= 1.0);
        assert!((s.mean() - 0.25).abs() < 0.01);
    }

    #[test]
    fn binomial_mean() {
        let mut rng = SeededRng::new(11);
        let s: Summary = (0..5_000).map(|_| rng.binomial(40, 0.3) as f64).collect();
        assert!((s.mean() - 12.0).abs() < 0.25);
    }

    #[test]
    fn sampling_without_replacement_unique() {
        let mut rng = SeededRng::new(5);
        let idx = rng.sample_without_replacement(20, 10);
        assert_eq!(idx.len(), 10);
        let mut seen = idx.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&i| i < 20));
    }

    #[test]
    fn sampling_full_permutation() {
        let mut rng = SeededRng::new(5);
        let mut idx = rng.sample_without_replacement(8, 8);
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_into_matches_allocating_form() {
        let mut a = SeededRng::new(17);
        let mut b = SeededRng::new(17);
        let mut buf = Vec::new();
        for (n, k) in [(10, 3), (8, 8), (5, 1), (4, 0)] {
            let owned = a.sample_without_replacement(n, k);
            b.sample_without_replacement_into(n, k, &mut buf);
            assert_eq!(owned, buf, "n={n} k={k}");
        }
        // Generators stay in lockstep afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn sampling_too_many_panics() {
        let mut rng = SeededRng::new(5);
        let _ = rng.sample_without_replacement(3, 4);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SeededRng::new(77);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[]), None);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(1);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0)); // clamped
        assert!(!rng.bernoulli(-1.0)); // clamped
    }
}
