//! Confidence intervals for binomial proportions.
//!
//! Vulnerability-detection metrics such as recall and precision are binomial
//! proportions estimated on finite workloads; comparing tools honestly
//! requires interval estimates, not just point values. This module provides
//! the Wald (normal), Wilson score, Agresti–Coull and exact Clopper–Pearson
//! intervals.

use crate::special::{beta_inc_inv, normal_quantile};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A confidence level in `(0, 1)`, e.g. `0.95`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confidence(f64);

impl Confidence {
    /// The conventional 95% level.
    pub const P95: Confidence = Confidence(0.95);
    /// The 99% level.
    pub const P99: Confidence = Confidence(0.99);
    /// The 90% level.
    pub const P90: Confidence = Confidence(0.90);

    /// Creates a confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < level < 1`.
    pub fn new(level: f64) -> Result<Self> {
        if !level.is_finite() || level <= 0.0 || level >= 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                value: level,
            });
        }
        Ok(Confidence(level))
    }

    /// The level as a fraction, e.g. `0.95`.
    pub fn level(self) -> f64 {
        self.0
    }

    /// Two-sided tail mass `α = 1 - level`.
    pub fn alpha(self) -> f64 {
        1.0 - self.0
    }

    /// The standard normal critical value `z_{1-α/2}`.
    pub fn z_value(self) -> f64 {
        // Confidence is validated on construction, so the quantile is
        // always defined.
        normal_quantile(1.0 - self.alpha() / 2.0).expect("validated level")
    }
}

impl Default for Confidence {
    fn default() -> Self {
        Confidence::P95
    }
}

/// A two-sided interval estimate `[lower, upper]` for a proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinomialInterval {
    /// Lower endpoint, clamped to `[0, 1]`.
    pub lower: f64,
    /// Upper endpoint, clamped to `[0, 1]`.
    pub upper: f64,
    /// Point estimate `successes / trials`.
    pub estimate: f64,
}

impl BinomialInterval {
    /// Interval half-width (`(upper - lower) / 2`).
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lower && p <= self.upper
    }

    /// Whether two intervals are disjoint — the crude but conservative
    /// criterion used to call two tools "distinguishable" on a workload.
    pub fn disjoint_from(&self, other: &BinomialInterval) -> bool {
        self.upper < other.lower || other.upper < self.lower
    }
}

fn validate(successes: u64, trials: u64) -> Result<()> {
    if trials == 0 {
        return Err(StatsError::EmptyInput);
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter {
            name: "successes",
            value: successes as f64,
        });
    }
    Ok(())
}

/// Wald (simple normal approximation) interval. Included for completeness
/// and for demonstrating its poor coverage at extreme proportions; prefer
/// [`wilson`] in analysis code.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `trials == 0` and
/// [`StatsError::InvalidParameter`] when `successes > trials`.
pub fn wald(successes: u64, trials: u64, conf: Confidence) -> Result<BinomialInterval> {
    validate(successes, trials)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = conf.z_value();
    let half = z * (p * (1.0 - p) / n).sqrt();
    Ok(BinomialInterval {
        lower: (p - half).max(0.0),
        upper: (p + half).min(1.0),
        estimate: p,
    })
}

/// Wilson score interval — good coverage across the whole `[0, 1]` range,
/// the workhorse interval of the suite.
///
/// # Errors
///
/// Same domain errors as [`wald`].
///
/// ```
/// use vdbench_stats::intervals::{wilson, Confidence};
/// let iv = wilson(8, 10, Confidence::P95).unwrap();
/// assert!(iv.lower > 0.4 && iv.upper < 1.0);
/// assert!(iv.contains(0.8));
/// ```
pub fn wilson(successes: u64, trials: u64, conf: Confidence) -> Result<BinomialInterval> {
    let _span = vdbench_telemetry::span!("stats", "wilson_interval", trials = trials);
    validate(successes, trials)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = conf.z_value();
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // Snap endpoints at the boundary counts so floating-point slack never
    // excludes the point estimate itself.
    let lower = if successes == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let upper = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    Ok(BinomialInterval {
        lower,
        upper,
        estimate: p,
    })
}

/// Agresti–Coull "add z²/2 successes and failures" interval.
///
/// # Errors
///
/// Same domain errors as [`wald`].
pub fn agresti_coull(successes: u64, trials: u64, conf: Confidence) -> Result<BinomialInterval> {
    validate(successes, trials)?;
    let z = conf.z_value();
    let z2 = z * z;
    let n_tilde = trials as f64 + z2;
    let p_tilde = (successes as f64 + z2 / 2.0) / n_tilde;
    let half = z * (p_tilde * (1.0 - p_tilde) / n_tilde).sqrt();
    let lower = if successes == 0 {
        0.0
    } else {
        (p_tilde - half).max(0.0)
    };
    let upper = if successes == trials {
        1.0
    } else {
        (p_tilde + half).min(1.0)
    };
    Ok(BinomialInterval {
        lower,
        upper,
        estimate: successes as f64 / trials as f64,
    })
}

/// Exact Clopper–Pearson interval via beta quantiles.
///
/// Guaranteed coverage at the cost of conservatism; used when an experiment
/// needs a defensible worst-case bound.
///
/// # Errors
///
/// Same domain errors as [`wald`]; also propagates numerical errors from the
/// incomplete-beta inversion.
pub fn clopper_pearson(successes: u64, trials: u64, conf: Confidence) -> Result<BinomialInterval> {
    validate(successes, trials)?;
    let alpha = conf.alpha();
    let n = trials;
    let k = successes;
    let lower = if k == 0 {
        0.0
    } else {
        beta_inc_inv(k as f64, (n - k) as f64 + 1.0, alpha / 2.0)?
    };
    let upper = if k == n {
        1.0
    } else {
        beta_inc_inv(k as f64 + 1.0, (n - k) as f64, 1.0 - alpha / 2.0)?
    };
    Ok(BinomialInterval {
        lower,
        upper,
        estimate: k as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_construction() {
        assert!(Confidence::new(0.95).is_ok());
        assert!(Confidence::new(0.0).is_err());
        assert!(Confidence::new(1.0).is_err());
        assert!(Confidence::new(f64::NAN).is_err());
        assert!((Confidence::P95.z_value() - 1.96).abs() < 0.001);
        assert!((Confidence::default().level() - 0.95).abs() < 1e-12);
        assert!((Confidence::P99.alpha() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_trials_rejected_everywhere() {
        for f in [wald, wilson, agresti_coull, clopper_pearson] {
            assert_eq!(
                f(0, 0, Confidence::P95).unwrap_err(),
                StatsError::EmptyInput
            );
        }
    }

    #[test]
    fn successes_exceeding_trials_rejected() {
        assert!(wilson(5, 3, Confidence::P95).is_err());
    }

    #[test]
    fn intervals_contain_estimate_and_are_ordered() {
        for &(k, n) in &[
            (0u64, 10u64),
            (1, 10),
            (5, 10),
            (9, 10),
            (10, 10),
            (50, 1000),
        ] {
            for f in [wald, wilson, agresti_coull, clopper_pearson] {
                let iv = f(k, n, Confidence::P95).unwrap();
                assert!(iv.lower <= iv.upper, "k={k} n={n}");
                assert!(iv.lower >= 0.0 && iv.upper <= 1.0);
                // The Wald interval degenerates at the boundary but still
                // contains the point estimate.
                assert!(iv.contains(iv.estimate), "k={k} n={n} iv={iv:?}");
            }
        }
    }

    #[test]
    fn wilson_known_value() {
        // Wilson 95% for 8/10: approx [0.4902, 0.9433]
        let iv = wilson(8, 10, Confidence::P95).unwrap();
        assert!((iv.lower - 0.4902).abs() < 0.002, "lower {}", iv.lower);
        assert!((iv.upper - 0.9433).abs() < 0.002, "upper {}", iv.upper);
    }

    #[test]
    fn clopper_pearson_known_value() {
        // Exact 95% for 8/10: approx [0.4439, 0.9748]
        let iv = clopper_pearson(8, 10, Confidence::P95).unwrap();
        assert!((iv.lower - 0.4439).abs() < 0.002, "lower {}", iv.lower);
        assert!((iv.upper - 0.9748).abs() < 0.002, "upper {}", iv.upper);
    }

    #[test]
    fn clopper_pearson_boundaries() {
        let iv = clopper_pearson(0, 20, Confidence::P95).unwrap();
        assert_eq!(iv.lower, 0.0);
        // "Rule of three"-ish upper bound near 3/n * ln-scale.
        assert!(iv.upper > 0.1 && iv.upper < 0.2);
        let iv = clopper_pearson(20, 20, Confidence::P95).unwrap();
        assert_eq!(iv.upper, 1.0);
        assert!(iv.lower > 0.8);
    }

    #[test]
    fn widths_shrink_with_n() {
        let small = wilson(10, 20, Confidence::P95).unwrap();
        let large = wilson(500, 1000, Confidence::P95).unwrap();
        assert!(large.half_width() < small.half_width() / 3.0);
    }

    #[test]
    fn clopper_contains_wilson_typically() {
        // Clopper–Pearson is conservative: it should (almost always) enclose
        // the Wilson interval.
        for &(k, n) in &[(3u64, 25u64), (12, 40), (70, 100)] {
            let cp = clopper_pearson(k, n, Confidence::P95).unwrap();
            let wi = wilson(k, n, Confidence::P95).unwrap();
            assert!(cp.lower <= wi.lower + 1e-9, "k={k} n={n}");
            assert!(cp.upper >= wi.upper - 1e-9, "k={k} n={n}");
        }
    }

    #[test]
    fn disjointness() {
        let a = wilson(90, 100, Confidence::P95).unwrap();
        let b = wilson(10, 100, Confidence::P95).unwrap();
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        let c = wilson(85, 100, Confidence::P95).unwrap();
        assert!(!a.disjoint_from(&c));
    }

    #[test]
    fn higher_confidence_wider() {
        let p90 = wilson(30, 60, Confidence::P90).unwrap();
        let p99 = wilson(30, 60, Confidence::P99).unwrap();
        assert!(p99.half_width() > p90.half_width());
    }
}
