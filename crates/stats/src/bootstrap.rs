//! Bootstrap resampling.
//!
//! Metric values on a benchmark workload are statistics of a finite sample
//! of code units; the bootstrap gives distribution-free interval estimates
//! and powers the *discriminative power* and *ranking stability* experiments
//! (Fig. 2, Fig. 3).

use crate::descriptive::quantile_sorted;
use crate::rng::SeededRng;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Lower percentile endpoint.
    pub lower: f64,
    /// Upper percentile endpoint.
    pub upper: f64,
    /// Statistic evaluated on the original sample.
    pub point: f64,
    /// Bootstrap standard error (std-dev of the replicate distribution).
    pub std_error: f64,
}

impl BootstrapCi {
    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Configurable bootstrap engine.
///
/// ```
/// use vdbench_stats::{Bootstrap, SeededRng};
///
/// let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let mut rng = SeededRng::new(42);
/// let ci = Bootstrap::new(500)
///     .percentile_ci(&data, 0.95, |s| s.iter().sum::<f64>() / s.len() as f64, &mut rng)
///     .unwrap();
/// assert!(ci.contains(4.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bootstrap {
    replicates: usize,
}

impl Bootstrap {
    /// Creates an engine performing `replicates` resamples per call.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    pub fn new(replicates: usize) -> Self {
        assert!(replicates > 0, "bootstrap requires at least one replicate");
        Bootstrap { replicates }
    }

    /// Number of replicates per call.
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// Draws the raw replicate distribution of `statistic` over resamples of
    /// `data` (with replacement, same size).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `data` is empty.
    pub fn replicate_distribution<T, F>(
        &self,
        data: &[T],
        mut statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone,
        F: FnMut(&[T]) -> f64,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = data.len();
        let mut scratch: Vec<T> = Vec::with_capacity(n);
        let mut out = Vec::with_capacity(self.replicates);
        for _ in 0..self.replicates {
            scratch.clear();
            for _ in 0..n {
                scratch.push(data[rng.index(n)].clone());
            }
            out.push(statistic(&scratch));
        }
        Ok(out)
    }

    /// Percentile bootstrap confidence interval for an arbitrary statistic.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
    pub fn percentile_ci<T, F>(
        &self,
        data: &[T],
        level: f64,
        mut statistic: F,
        rng: &mut SeededRng,
    ) -> Result<BootstrapCi>
    where
        T: Clone,
        F: FnMut(&[T]) -> f64,
    {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                value: level,
            });
        }
        let point = if data.is_empty() {
            return Err(StatsError::EmptyInput);
        } else {
            statistic(data)
        };
        let mut reps = self.replicate_distribution(data, statistic, rng)?;
        reps.sort_by(|a, b| a.total_cmp(b));
        let alpha = 1.0 - level;
        let lower = quantile_sorted(&reps, alpha / 2.0);
        let upper = quantile_sorted(&reps, 1.0 - alpha / 2.0);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        let var = reps.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
            / (reps.len().saturating_sub(1).max(1)) as f64;
        Ok(BootstrapCi {
            lower,
            upper,
            point,
            std_error: var.sqrt(),
        })
    }

    /// Probability, under resampling, that `statistic(sample_a) >
    /// statistic(sample_b)` — the engine behind the *discriminative power*
    /// analysis: how often does a metric correctly order two tools whose
    /// true quality differs?
    ///
    /// Both samples are resampled independently each replicate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if either sample is empty.
    pub fn superiority_probability<T, F>(
        &self,
        sample_a: &[T],
        sample_b: &[T],
        mut statistic: F,
        rng: &mut SeededRng,
    ) -> Result<f64>
    where
        T: Clone,
        F: FnMut(&[T]) -> f64,
    {
        if sample_a.is_empty() || sample_b.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut wins = 0usize;
        let mut scratch_a: Vec<T> = Vec::with_capacity(sample_a.len());
        let mut scratch_b: Vec<T> = Vec::with_capacity(sample_b.len());
        for _ in 0..self.replicates {
            scratch_a.clear();
            for _ in 0..sample_a.len() {
                scratch_a.push(sample_a[rng.index(sample_a.len())].clone());
            }
            scratch_b.clear();
            for _ in 0..sample_b.len() {
                scratch_b.push(sample_b[rng.index(sample_b.len())].clone());
            }
            if statistic(&scratch_a) > statistic(&scratch_b) {
                wins += 1;
            }
        }
        Ok(wins as f64 / self.replicates as f64)
    }

    /// Subsample (without replacement) a fraction of the data and evaluate
    /// the statistic, once per replicate — used by the ranking-stability
    /// experiment (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a fraction outside `(0, 1]`.
    pub fn subsample_distribution<T, F>(
        &self,
        data: &[T],
        fraction: f64,
        mut statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone,
        F: FnMut(&[T]) -> f64,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "fraction",
                value: fraction,
            });
        }
        let k = ((data.len() as f64 * fraction).round() as usize).clamp(1, data.len());
        let mut out = Vec::with_capacity(self.replicates);
        let mut scratch: Vec<T> = Vec::with_capacity(k);
        for _ in 0..self.replicates {
            let idx = rng.sample_without_replacement(data.len(), k);
            scratch.clear();
            scratch.extend(idx.into_iter().map(|i| data[i].clone()));
            out.push(statistic(&scratch));
        }
        Ok(out)
    }
}

impl Default for Bootstrap {
    /// 1000 replicates, the suite-wide default.
    fn default() -> Self {
        Bootstrap::new(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_panics() {
        let _ = Bootstrap::new(0);
    }

    #[test]
    fn ci_covers_true_mean() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 7919) % 100) as f64).collect();
        let truth = mean_stat(&data);
        let mut rng = SeededRng::new(1);
        let ci = Bootstrap::new(800)
            .percentile_ci(&data, 0.95, mean_stat, &mut rng)
            .unwrap();
        assert!(ci.contains(truth));
        assert!((ci.point - truth).abs() < 1e-12);
        assert!(ci.std_error > 0.0);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 10) as f64).collect();
        let mut rng = SeededRng::new(2);
        let b = Bootstrap::new(500);
        let ci_small = b.percentile_ci(&small, 0.95, mean_stat, &mut rng).unwrap();
        let ci_large = b.percentile_ci(&large, 0.95, mean_stat, &mut rng).unwrap();
        assert!(ci_large.width() < ci_small.width() / 2.0);
    }

    #[test]
    fn empty_data_rejected() {
        let mut rng = SeededRng::new(3);
        let empty: Vec<f64> = vec![];
        assert!(Bootstrap::default()
            .percentile_ci(&empty, 0.95, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .replicate_distribution(&empty, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn bad_level_rejected() {
        let mut rng = SeededRng::new(3);
        let data = [1.0, 2.0];
        assert!(Bootstrap::default()
            .percentile_ci(&data, 1.5, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .percentile_ci(&data, 0.0, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn superiority_detects_clear_difference() {
        let high: Vec<f64> = (0..200).map(|i| 10.0 + (i % 5) as f64).collect();
        let low: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let mut rng = SeededRng::new(4);
        let p = Bootstrap::new(300)
            .superiority_probability(&high, &low, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 1.0);
        let p = Bootstrap::new(300)
            .superiority_probability(&low, &high, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn superiority_near_half_for_identical_distributions() {
        let a: Vec<f64> = (0..300).map(|i| (i % 7) as f64).collect();
        let mut rng = SeededRng::new(5);
        let p = Bootstrap::new(2000)
            .superiority_probability(&a, &a, mean_stat, &mut rng)
            .unwrap();
        assert!((p - 0.5).abs() < 0.08, "p={p}");
    }

    #[test]
    fn subsample_distribution_shape() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = SeededRng::new(6);
        let reps = Bootstrap::new(200)
            .subsample_distribution(&data, 0.5, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(reps.len(), 200);
        let m = mean_stat(&reps);
        assert!((m - 49.5).abs() < 2.0, "m={m}");
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 0.0, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 1.1, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn subsample_full_fraction_is_permutation_invariant_mean() {
        let data = [1.0, 2.0, 3.0];
        let mut rng = SeededRng::new(7);
        let reps = Bootstrap::new(10)
            .subsample_distribution(&data, 1.0, mean_stat, &mut rng)
            .unwrap();
        for r in reps {
            assert!((r - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let run = |seed| {
            let mut rng = SeededRng::new(seed);
            Bootstrap::new(100)
                .percentile_ci(&data, 0.9, mean_stat, &mut rng)
                .unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
