//! Bootstrap resampling.
//!
//! Metric values on a benchmark workload are statistics of a finite sample
//! of code units; the bootstrap gives distribution-free interval estimates
//! and powers the *discriminative power* and *ranking stability* experiments
//! (Fig. 2, Fig. 3).
//!
//! # Parallelism and determinism
//!
//! Replicates are generated on the rayon pool. Each method draws **one**
//! base value from the caller's sequential generator, then replicate `i`
//! samples from its own `SeededRng::new(derive_seed(base, i))` stream (see
//! [`crate::rng::derive_seed`]). Because the per-replicate stream depends
//! only on `(base, i)`, the replicate vector is bit-identical whether the
//! pool runs one thread (`RAYON_NUM_THREADS=1`) or many — and the caller's
//! generator advances by exactly one draw per call either way.

use crate::descriptive::quantile_unsorted;
use crate::rng::{derive_seed, SeededRng};
use crate::{Result, StatsError};
use rand::RngCore;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Records one resampling run on the `stats.bootstrap.replicates`
/// histogram (telemetry registry). The handle is resolved once per
/// process; when recording is disabled the histogram still counts — it is
/// a plain always-on metric, not a span — but resolution is deferred so
/// programs that never bootstrap pay nothing.
fn record_replicates(n: usize) {
    use std::sync::OnceLock;
    use vdbench_telemetry::registry::Histogram;
    static HIST: OnceLock<std::sync::Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        vdbench_telemetry::registry::global().histogram("stats.bootstrap.replicates")
    })
    .record(n as u64);
}

/// Bumps the `bootstrap.scratch.reuses` counter by `n` — the number of
/// replicates a worker evaluated by *reusing* its per-worker scratch buffer
/// instead of allocating a fresh resample `Vec` (i.e. every replicate after
/// the first on each worker chunk). The counter is the observable proof
/// that the streaming kernels actually avoid per-replicate allocation; the
/// kernel bench and the scratch-reuse regression test read it back.
fn record_scratch_reuses(n: u64) {
    use std::sync::OnceLock;
    use vdbench_telemetry::registry::Counter;
    static COUNTER: OnceLock<std::sync::Arc<Counter>> = OnceLock::new();
    if n > 0 {
        COUNTER
            .get_or_init(|| {
                vdbench_telemetry::registry::global().counter("bootstrap.scratch.reuses")
            })
            .add(n);
    }
}

/// Per-worker resampling scratch: a reusable buffer plus the running count
/// of reuses, flushed to the telemetry counter when the worker chunk ends.
struct ReplicateScratch<T> {
    buf: Vec<T>,
    reuses: u64,
}

impl<T> ReplicateScratch<T> {
    fn with_capacity(n: usize) -> Self {
        ReplicateScratch {
            buf: Vec::with_capacity(n),
            reuses: 0,
        }
    }

    /// Clears the buffer for the next replicate, counting a reuse whenever
    /// the buffer had already been filled once.
    fn begin_replicate(&mut self) -> &mut Vec<T> {
        if !self.buf.is_empty() {
            self.reuses += 1;
        }
        self.buf.clear();
        &mut self.buf
    }
}

impl<T> Drop for ReplicateScratch<T> {
    fn drop(&mut self) {
        record_scratch_reuses(self.reuses);
    }
}

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Lower percentile endpoint.
    pub lower: f64,
    /// Upper percentile endpoint.
    pub upper: f64,
    /// Statistic evaluated on the original sample.
    pub point: f64,
    /// Bootstrap standard error (std-dev of the replicate distribution).
    pub std_error: f64,
}

impl BootstrapCi {
    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Configurable bootstrap engine.
///
/// ```
/// use vdbench_stats::{Bootstrap, SeededRng};
///
/// let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let mut rng = SeededRng::new(42);
/// let ci = Bootstrap::new(500)
///     .percentile_ci(&data, 0.95, |s| s.iter().sum::<f64>() / s.len() as f64, &mut rng)
///     .unwrap();
/// assert!(ci.contains(4.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bootstrap {
    replicates: usize,
}

impl Bootstrap {
    /// Creates an engine performing `replicates` resamples per call.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    pub fn new(replicates: usize) -> Self {
        assert!(replicates > 0, "bootstrap requires at least one replicate");
        Bootstrap { replicates }
    }

    /// Number of replicates per call.
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// Draws the raw replicate distribution of `statistic` over resamples of
    /// `data` (with replacement, same size).
    ///
    /// Replicate `i` streams its resample into a **per-worker scratch
    /// buffer** (`map_init`): each worker allocates one buffer for its whole
    /// chunk and clears/refills it per replicate, instead of materializing a
    /// fresh `Vec` per replicate. Because replicate `i`'s RNG depends only
    /// on `(base, i)` and the scratch carries no state between items, the
    /// output is bit-identical to the retained materializing oracle
    /// [`Self::replicate_distribution_materialized`] at any thread count
    /// (proptested).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `data` is empty.
    pub fn replicate_distribution<T, F>(
        &self,
        data: &[T],
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_replicates",
            replicates = self.replicates,
            n = data.len()
        );
        record_replicates(self.replicates);
        let n = data.len();
        let base = rng.next_u64();
        let out: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map_init(
                || ReplicateScratch::<T>::with_capacity(n),
                |state, i| {
                    let mut r = SeededRng::new(derive_seed(base, i as u64));
                    let scratch = state.begin_replicate();
                    for _ in 0..n {
                        scratch.push(data[r.index(n)].clone());
                    }
                    statistic(scratch)
                },
            )
            .collect();
        Ok(out)
    }

    /// The PR-1 materializing replicate loop, retained verbatim as the
    /// equivalence oracle for [`Self::replicate_distribution`]: one fresh
    /// `Vec` per replicate, identical RNG streams. The proptest suite
    /// asserts the streaming path matches this bit-for-bit, and the kernel
    /// bench reports old-vs-new throughput against it. Not used by any
    /// production path.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `data` is empty.
    pub fn replicate_distribution_materialized<T, F>(
        &self,
        data: &[T],
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = data.len();
        let base = rng.next_u64();
        let out: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map(|i| {
                let mut r = SeededRng::new(derive_seed(base, i as u64));
                let mut scratch: Vec<T> = Vec::with_capacity(n);
                for _ in 0..n {
                    scratch.push(data[r.index(n)].clone());
                }
                statistic(&scratch)
            })
            .collect();
        Ok(out)
    }

    /// Percentile bootstrap confidence interval for an arbitrary statistic.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
    pub fn percentile_ci<T, F>(
        &self,
        data: &[T],
        level: f64,
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<BootstrapCi>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                value: level,
            });
        }
        let point = if data.is_empty() {
            return Err(StatsError::EmptyInput);
        } else {
            statistic(data)
        };
        let mut reps = self.replicate_distribution(data, &statistic, rng)?;
        // Moments first, over the replicate order (deterministic — it is
        // the derive_seed stream order), then the two percentile endpoints
        // by quickselect: expected O(R) total instead of the full
        // O(R log R) sort this replaces. `quantile_unsorted` only permutes
        // the buffer, so the second call stays correct.
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        let var = reps.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
            / (reps.len().saturating_sub(1).max(1)) as f64;
        let alpha = 1.0 - level;
        let lower = quantile_unsorted(&mut reps, alpha / 2.0);
        let upper = quantile_unsorted(&mut reps, 1.0 - alpha / 2.0);
        Ok(BootstrapCi {
            lower,
            upper,
            point,
            std_error: var.sqrt(),
        })
    }

    /// Percentile bootstrap confidence interval for a **two-sample**
    /// statistic: each replicate resamples `sample_a` and `sample_b`
    /// independently (with replacement, original sizes) and evaluates
    /// `statistic(resample_a, resample_b)`. Used by perfwatch to interval
    /// the baseline-vs-candidate delta of a tracked perf series.
    ///
    /// Draw order per replicate matches [`Self::superiority_probability`]
    /// (resample A fully, then B, from one derive_seed stream), so results
    /// are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if either sample is empty and
    /// [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
    pub fn two_sample_ci<T, F>(
        &self,
        sample_a: &[T],
        sample_b: &[T],
        level: f64,
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<BootstrapCi>
    where
        T: Clone + Sync,
        F: Fn(&[T], &[T]) -> f64 + Sync,
    {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                value: level,
            });
        }
        if sample_a.is_empty() || sample_b.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_two_sample_ci",
            replicates = self.replicates
        );
        record_replicates(self.replicates);
        let point = statistic(sample_a, sample_b);
        let base = rng.next_u64();
        let mut reps: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map_init(
                || {
                    (
                        ReplicateScratch::<T>::with_capacity(sample_a.len()),
                        ReplicateScratch::<T>::with_capacity(sample_b.len()),
                    )
                },
                |(state_a, state_b), i| {
                    let mut r = SeededRng::new(derive_seed(base, i as u64));
                    let a = state_a.begin_replicate();
                    for _ in 0..sample_a.len() {
                        a.push(sample_a[r.index(sample_a.len())].clone());
                    }
                    let b = state_b.begin_replicate();
                    for _ in 0..sample_b.len() {
                        b.push(sample_b[r.index(sample_b.len())].clone());
                    }
                    statistic(a, b)
                },
            )
            .collect();
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        let var = reps.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
            / (reps.len().saturating_sub(1).max(1)) as f64;
        let alpha = 1.0 - level;
        let lower = quantile_unsorted(&mut reps, alpha / 2.0);
        let upper = quantile_unsorted(&mut reps, 1.0 - alpha / 2.0);
        Ok(BootstrapCi {
            lower,
            upper,
            point,
            std_error: var.sqrt(),
        })
    }

    /// Probability, under resampling, that `statistic(sample_a) >
    /// statistic(sample_b)` — the engine behind the *discriminative power*
    /// analysis: how often does a metric correctly order two tools whose
    /// true quality differs?
    ///
    /// Both samples are resampled independently each replicate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if either sample is empty.
    pub fn superiority_probability<T, F>(
        &self,
        sample_a: &[T],
        sample_b: &[T],
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<f64>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if sample_a.is_empty() || sample_b.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_superiority",
            replicates = self.replicates
        );
        record_replicates(self.replicates);
        let base = rng.next_u64();
        // Two per-worker scratch buffers (one per sample), refilled per
        // replicate in the same draw order as the old materializing loop:
        // resample A fully, then resample B, from one replicate stream.
        let wins: usize = (0..self.replicates)
            .into_par_iter()
            .map_init(
                || {
                    (
                        ReplicateScratch::<T>::with_capacity(sample_a.len()),
                        ReplicateScratch::<T>::with_capacity(sample_b.len()),
                    )
                },
                |(state_a, state_b), i| {
                    let mut r = SeededRng::new(derive_seed(base, i as u64));
                    let a = state_a.begin_replicate();
                    for _ in 0..sample_a.len() {
                        a.push(sample_a[r.index(sample_a.len())].clone());
                    }
                    let b = state_b.begin_replicate();
                    for _ in 0..sample_b.len() {
                        b.push(sample_b[r.index(sample_b.len())].clone());
                    }
                    usize::from(statistic(a) > statistic(b))
                },
            )
            .collect::<Vec<usize>>()
            .into_iter()
            .sum();
        Ok(wins as f64 / self.replicates as f64)
    }

    /// Subsample (without replacement) a fraction of the data and evaluate
    /// the statistic, once per replicate — used by the ranking-stability
    /// experiment (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a fraction outside `(0, 1]`.
    pub fn subsample_distribution<T, F>(
        &self,
        data: &[T],
        fraction: f64,
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "fraction",
                value: fraction,
            });
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_subsample",
            replicates = self.replicates,
            fraction = fraction
        );
        record_replicates(self.replicates);
        let k = ((data.len() as f64 * fraction).round() as usize).clamp(1, data.len());
        let base = rng.next_u64();
        // Per-worker scratch: one index buffer (filled by the `_into`
        // sampling form, which consumes exactly the same generator draws as
        // the allocating form) and one value buffer, both reused across the
        // worker's replicates.
        let out: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map_init(
                || {
                    (
                        Vec::<usize>::with_capacity(data.len()),
                        ReplicateScratch::<T>::with_capacity(k),
                    )
                },
                |(idx, state), i| {
                    let mut r = SeededRng::new(derive_seed(base, i as u64));
                    r.sample_without_replacement_into(data.len(), k, idx);
                    let scratch = state.begin_replicate();
                    for &j in idx.iter() {
                        scratch.push(data[j].clone());
                    }
                    statistic(scratch)
                },
            )
            .collect();
        Ok(out)
    }
}

impl Default for Bootstrap {
    /// 1000 replicates, the suite-wide default.
    fn default() -> Self {
        Bootstrap::new(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_panics() {
        let _ = Bootstrap::new(0);
    }

    #[test]
    fn ci_covers_true_mean() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 7919) % 100) as f64).collect();
        let truth = mean_stat(&data);
        let mut rng = SeededRng::new(1);
        let ci = Bootstrap::new(800)
            .percentile_ci(&data, 0.95, mean_stat, &mut rng)
            .unwrap();
        assert!(ci.contains(truth));
        assert!((ci.point - truth).abs() < 1e-12);
        assert!(ci.std_error > 0.0);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 10) as f64).collect();
        let mut rng = SeededRng::new(2);
        let b = Bootstrap::new(500);
        let ci_small = b.percentile_ci(&small, 0.95, mean_stat, &mut rng).unwrap();
        let ci_large = b.percentile_ci(&large, 0.95, mean_stat, &mut rng).unwrap();
        assert!(ci_large.width() < ci_small.width() / 2.0);
    }

    #[test]
    fn empty_data_rejected() {
        let mut rng = SeededRng::new(3);
        let empty: Vec<f64> = vec![];
        assert!(Bootstrap::default()
            .percentile_ci(&empty, 0.95, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .replicate_distribution(&empty, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn bad_level_rejected() {
        let mut rng = SeededRng::new(3);
        let data = [1.0, 2.0];
        assert!(Bootstrap::default()
            .percentile_ci(&data, 1.5, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .percentile_ci(&data, 0.0, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn superiority_detects_clear_difference() {
        let high: Vec<f64> = (0..200).map(|i| 10.0 + (i % 5) as f64).collect();
        let low: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let mut rng = SeededRng::new(4);
        let p = Bootstrap::new(300)
            .superiority_probability(&high, &low, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 1.0);
        let p = Bootstrap::new(300)
            .superiority_probability(&low, &high, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn superiority_near_half_for_identical_distributions() {
        let a: Vec<f64> = (0..300).map(|i| (i % 7) as f64).collect();
        let mut rng = SeededRng::new(5);
        let p = Bootstrap::new(2000)
            .superiority_probability(&a, &a, mean_stat, &mut rng)
            .unwrap();
        assert!((p - 0.5).abs() < 0.08, "p={p}");
    }

    #[test]
    fn subsample_distribution_shape() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = SeededRng::new(6);
        let reps = Bootstrap::new(200)
            .subsample_distribution(&data, 0.5, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(reps.len(), 200);
        let m = mean_stat(&reps);
        assert!((m - 49.5).abs() < 2.0, "m={m}");
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 0.0, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 1.1, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn subsample_full_fraction_is_permutation_invariant_mean() {
        let data = [1.0, 2.0, 3.0];
        let mut rng = SeededRng::new(7);
        let reps = Bootstrap::new(10)
            .subsample_distribution(&data, 1.0, mean_stat, &mut rng)
            .unwrap();
        for r in reps {
            assert!((r - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_sample_ci_brackets_mean_shift() {
        let a: Vec<f64> = (0..200).map(|i| 10.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let diff = |x: &[f64], y: &[f64]| mean_stat(x) - mean_stat(y);
        let mut rng = SeededRng::new(21);
        let ci = Bootstrap::new(600)
            .two_sample_ci(&a, &b, 0.95, diff, &mut rng)
            .unwrap();
        assert!((ci.point - 10.0).abs() < 1e-12);
        assert!(ci.lower > 9.0 && ci.upper < 11.0, "ci={ci:?}");
        assert!(!ci.contains(0.0));
    }

    #[test]
    fn two_sample_ci_validation_and_determinism() {
        let data = [1.0, 2.0, 3.0];
        let diff = |x: &[f64], y: &[f64]| mean_stat(x) - mean_stat(y);
        let mut rng = SeededRng::new(22);
        assert!(Bootstrap::default()
            .two_sample_ci::<f64, _>(&[], &data, 0.95, diff, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .two_sample_ci::<f64, _>(&data, &[], 0.95, diff, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .two_sample_ci(&data, &data, 1.5, diff, &mut rng)
            .is_err());
        let run = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let mut rng = SeededRng::new(0xACE);
            let ci = Bootstrap::new(301)
                .two_sample_ci(&data, &data, 0.9, diff, &mut rng)
                .unwrap();
            std::env::remove_var("RAYON_NUM_THREADS");
            (ci.lower.to_bits(), ci.upper.to_bits(), ci.point.to_bits())
        };
        assert_eq!(run("1"), run("5"));
    }

    #[test]
    fn parallel_and_serial_replicates_are_bit_identical() {
        let data: Vec<f64> = (0..120).map(|i| ((i * 31) % 17) as f64).collect();
        let run = || {
            let mut rng = SeededRng::new(0xB007);
            Bootstrap::new(257)
                .replicate_distribution(&data, mean_stat, &mut rng)
                .unwrap()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = run();
        std::env::set_var("RAYON_NUM_THREADS", "7");
        let parallel = run();
        std::env::remove_var("RAYON_NUM_THREADS");
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }

    #[test]
    fn streaming_matches_materialized_oracle_bitwise() {
        let data: Vec<f64> = (0..90).map(|i| ((i * 13) % 23) as f64 * 0.5).collect();
        let b = Bootstrap::new(301);
        for threads in ["1", "6"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let mut r1 = SeededRng::new(0xFEED);
            let mut r2 = SeededRng::new(0xFEED);
            let fast = b.replicate_distribution(&data, mean_stat, &mut r1).unwrap();
            let oracle = b
                .replicate_distribution_materialized(&data, mean_stat, &mut r2)
                .unwrap();
            let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
            let oracle_bits: Vec<u64> = oracle.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, oracle_bits, "threads={threads}");
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn scratch_reuse_counter_advances() {
        let counter = vdbench_telemetry::registry::global().counter("bootstrap.scratch.reuses");
        let before = counter.get();
        // Serial: one worker, 64 replicates → 63 reuses recorded at least.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut rng = SeededRng::new(11);
        let _ = Bootstrap::new(64)
            .replicate_distribution(&data, mean_stat, &mut rng)
            .unwrap();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(
            counter.get() >= before + 63,
            "before={before} after={}",
            counter.get()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let run = |seed| {
            let mut rng = SeededRng::new(seed);
            Bootstrap::new(100)
                .percentile_ci(&data, 0.9, mean_stat, &mut rng)
                .unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
