//! Bootstrap resampling.
//!
//! Metric values on a benchmark workload are statistics of a finite sample
//! of code units; the bootstrap gives distribution-free interval estimates
//! and powers the *discriminative power* and *ranking stability* experiments
//! (Fig. 2, Fig. 3).
//!
//! # Parallelism and determinism
//!
//! Replicates are generated on the rayon pool. Each method draws **one**
//! base value from the caller's sequential generator, then replicate `i`
//! samples from its own `SeededRng::new(derive_seed(base, i))` stream (see
//! [`crate::rng::derive_seed`]). Because the per-replicate stream depends
//! only on `(base, i)`, the replicate vector is bit-identical whether the
//! pool runs one thread (`RAYON_NUM_THREADS=1`) or many — and the caller's
//! generator advances by exactly one draw per call either way.

use crate::descriptive::quantile_sorted;
use crate::rng::{derive_seed, SeededRng};
use crate::{Result, StatsError};
use rand::RngCore;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Records one resampling run on the `stats.bootstrap.replicates`
/// histogram (telemetry registry). The handle is resolved once per
/// process; when recording is disabled the histogram still counts — it is
/// a plain always-on metric, not a span — but resolution is deferred so
/// programs that never bootstrap pay nothing.
fn record_replicates(n: usize) {
    use std::sync::OnceLock;
    use vdbench_telemetry::registry::Histogram;
    static HIST: OnceLock<std::sync::Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        vdbench_telemetry::registry::global().histogram("stats.bootstrap.replicates")
    })
    .record(n as u64);
}

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Lower percentile endpoint.
    pub lower: f64,
    /// Upper percentile endpoint.
    pub upper: f64,
    /// Statistic evaluated on the original sample.
    pub point: f64,
    /// Bootstrap standard error (std-dev of the replicate distribution).
    pub std_error: f64,
}

impl BootstrapCi {
    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Configurable bootstrap engine.
///
/// ```
/// use vdbench_stats::{Bootstrap, SeededRng};
///
/// let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let mut rng = SeededRng::new(42);
/// let ci = Bootstrap::new(500)
///     .percentile_ci(&data, 0.95, |s| s.iter().sum::<f64>() / s.len() as f64, &mut rng)
///     .unwrap();
/// assert!(ci.contains(4.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bootstrap {
    replicates: usize,
}

impl Bootstrap {
    /// Creates an engine performing `replicates` resamples per call.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    pub fn new(replicates: usize) -> Self {
        assert!(replicates > 0, "bootstrap requires at least one replicate");
        Bootstrap { replicates }
    }

    /// Number of replicates per call.
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// Draws the raw replicate distribution of `statistic` over resamples of
    /// `data` (with replacement, same size).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `data` is empty.
    pub fn replicate_distribution<T, F>(
        &self,
        data: &[T],
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_replicates",
            replicates = self.replicates,
            n = data.len()
        );
        record_replicates(self.replicates);
        let n = data.len();
        let base = rng.next_u64();
        let out: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map(|i| {
                let mut r = SeededRng::new(derive_seed(base, i as u64));
                let mut scratch: Vec<T> = Vec::with_capacity(n);
                for _ in 0..n {
                    scratch.push(data[r.index(n)].clone());
                }
                statistic(&scratch)
            })
            .collect();
        Ok(out)
    }

    /// Percentile bootstrap confidence interval for an arbitrary statistic.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a level outside `(0, 1)`.
    pub fn percentile_ci<T, F>(
        &self,
        data: &[T],
        level: f64,
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<BootstrapCi>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                value: level,
            });
        }
        let point = if data.is_empty() {
            return Err(StatsError::EmptyInput);
        } else {
            statistic(data)
        };
        let mut reps = self.replicate_distribution(data, &statistic, rng)?;
        reps.sort_by(|a, b| a.total_cmp(b));
        let alpha = 1.0 - level;
        let lower = quantile_sorted(&reps, alpha / 2.0);
        let upper = quantile_sorted(&reps, 1.0 - alpha / 2.0);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        let var = reps.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
            / (reps.len().saturating_sub(1).max(1)) as f64;
        Ok(BootstrapCi {
            lower,
            upper,
            point,
            std_error: var.sqrt(),
        })
    }

    /// Probability, under resampling, that `statistic(sample_a) >
    /// statistic(sample_b)` — the engine behind the *discriminative power*
    /// analysis: how often does a metric correctly order two tools whose
    /// true quality differs?
    ///
    /// Both samples are resampled independently each replicate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if either sample is empty.
    pub fn superiority_probability<T, F>(
        &self,
        sample_a: &[T],
        sample_b: &[T],
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<f64>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if sample_a.is_empty() || sample_b.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_superiority",
            replicates = self.replicates
        );
        record_replicates(self.replicates);
        let base = rng.next_u64();
        let wins: usize = (0..self.replicates)
            .into_par_iter()
            .map(|i| {
                let mut r = SeededRng::new(derive_seed(base, i as u64));
                let resample = |sample: &[T], r: &mut SeededRng| -> Vec<T> {
                    (0..sample.len())
                        .map(|_| sample[r.index(sample.len())].clone())
                        .collect()
                };
                let a = resample(sample_a, &mut r);
                let b = resample(sample_b, &mut r);
                usize::from(statistic(&a) > statistic(&b))
            })
            .collect::<Vec<usize>>()
            .into_iter()
            .sum();
        Ok(wins as f64 / self.replicates as f64)
    }

    /// Subsample (without replacement) a fraction of the data and evaluate
    /// the statistic, once per replicate — used by the ranking-stability
    /// experiment (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty data and
    /// [`StatsError::InvalidParameter`] for a fraction outside `(0, 1]`.
    pub fn subsample_distribution<T, F>(
        &self,
        data: &[T],
        fraction: f64,
        statistic: F,
        rng: &mut SeededRng,
    ) -> Result<Vec<f64>>
    where
        T: Clone + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "fraction",
                value: fraction,
            });
        }
        let _span = vdbench_telemetry::span!(
            "stats",
            "bootstrap_subsample",
            replicates = self.replicates,
            fraction = fraction
        );
        record_replicates(self.replicates);
        let k = ((data.len() as f64 * fraction).round() as usize).clamp(1, data.len());
        let base = rng.next_u64();
        let out: Vec<f64> = (0..self.replicates)
            .into_par_iter()
            .map(|i| {
                let mut r = SeededRng::new(derive_seed(base, i as u64));
                let idx = r.sample_without_replacement(data.len(), k);
                let scratch: Vec<T> = idx.into_iter().map(|j| data[j].clone()).collect();
                statistic(&scratch)
            })
            .collect();
        Ok(out)
    }
}

impl Default for Bootstrap {
    /// 1000 replicates, the suite-wide default.
    fn default() -> Self {
        Bootstrap::new(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_panics() {
        let _ = Bootstrap::new(0);
    }

    #[test]
    fn ci_covers_true_mean() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 7919) % 100) as f64).collect();
        let truth = mean_stat(&data);
        let mut rng = SeededRng::new(1);
        let ci = Bootstrap::new(800)
            .percentile_ci(&data, 0.95, mean_stat, &mut rng)
            .unwrap();
        assert!(ci.contains(truth));
        assert!((ci.point - truth).abs() < 1e-12);
        assert!(ci.std_error > 0.0);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 10) as f64).collect();
        let mut rng = SeededRng::new(2);
        let b = Bootstrap::new(500);
        let ci_small = b.percentile_ci(&small, 0.95, mean_stat, &mut rng).unwrap();
        let ci_large = b.percentile_ci(&large, 0.95, mean_stat, &mut rng).unwrap();
        assert!(ci_large.width() < ci_small.width() / 2.0);
    }

    #[test]
    fn empty_data_rejected() {
        let mut rng = SeededRng::new(3);
        let empty: Vec<f64> = vec![];
        assert!(Bootstrap::default()
            .percentile_ci(&empty, 0.95, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .replicate_distribution(&empty, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn bad_level_rejected() {
        let mut rng = SeededRng::new(3);
        let data = [1.0, 2.0];
        assert!(Bootstrap::default()
            .percentile_ci(&data, 1.5, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::default()
            .percentile_ci(&data, 0.0, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn superiority_detects_clear_difference() {
        let high: Vec<f64> = (0..200).map(|i| 10.0 + (i % 5) as f64).collect();
        let low: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let mut rng = SeededRng::new(4);
        let p = Bootstrap::new(300)
            .superiority_probability(&high, &low, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 1.0);
        let p = Bootstrap::new(300)
            .superiority_probability(&low, &high, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn superiority_near_half_for_identical_distributions() {
        let a: Vec<f64> = (0..300).map(|i| (i % 7) as f64).collect();
        let mut rng = SeededRng::new(5);
        let p = Bootstrap::new(2000)
            .superiority_probability(&a, &a, mean_stat, &mut rng)
            .unwrap();
        assert!((p - 0.5).abs() < 0.08, "p={p}");
    }

    #[test]
    fn subsample_distribution_shape() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = SeededRng::new(6);
        let reps = Bootstrap::new(200)
            .subsample_distribution(&data, 0.5, mean_stat, &mut rng)
            .unwrap();
        assert_eq!(reps.len(), 200);
        let m = mean_stat(&reps);
        assert!((m - 49.5).abs() < 2.0, "m={m}");
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 0.0, mean_stat, &mut rng)
            .is_err());
        assert!(Bootstrap::new(10)
            .subsample_distribution(&data, 1.1, mean_stat, &mut rng)
            .is_err());
    }

    #[test]
    fn subsample_full_fraction_is_permutation_invariant_mean() {
        let data = [1.0, 2.0, 3.0];
        let mut rng = SeededRng::new(7);
        let reps = Bootstrap::new(10)
            .subsample_distribution(&data, 1.0, mean_stat, &mut rng)
            .unwrap();
        for r in reps {
            assert!((r - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_and_serial_replicates_are_bit_identical() {
        let data: Vec<f64> = (0..120).map(|i| ((i * 31) % 17) as f64).collect();
        let run = || {
            let mut rng = SeededRng::new(0xB007);
            Bootstrap::new(257)
                .replicate_distribution(&data, mean_stat, &mut rng)
                .unwrap()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = run();
        std::env::set_var("RAYON_NUM_THREADS", "7");
        let parallel = run();
        std::env::remove_var("RAYON_NUM_THREADS");
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let run = |seed| {
            let mut rng = SeededRng::new(seed);
            Bootstrap::new(100)
                .percentile_ci(&data, 0.9, mean_stat, &mut rng)
                .unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
