//! Special mathematical functions.
//!
//! Implements the gamma/beta/error-function family needed for binomial
//! confidence intervals and hypothesis tests: log-gamma (Lanczos
//! approximation), regularized incomplete gamma and beta functions
//! (series/continued-fraction evaluation, Numerical Recipes style), the error
//! function and the standard normal CDF and quantile (Acklam's rational
//! approximation refined with one Halley step).

use crate::{Result, StatsError};

/// Machine-precision guard used by the continued-fraction evaluators.
const FPMIN: f64 = f64::MIN_POSITIVE / f64::EPSILON;
/// Maximum iterations for iterative routines.
const MAX_ITER: usize = 400;
/// Relative tolerance for iterative routines.
const EPS: f64 = 3.0e-15;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, accurate to
/// roughly 15 significant digits across the positive reals.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `x <= 0` or `x` is not
/// finite.
///
/// ```
/// use vdbench_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0).unwrap() - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
        });
    }
    Ok(ln_gamma_unchecked(x))
}

/// Lanczos coefficients for g = 7.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

fn ln_gamma_unchecked(x: f64) -> f64 {
    // Lanczos is valid for x > 0.5; use the reflection-free shifted form.
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma_unchecked(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the beta function `ln B(a, b)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if either argument is
/// non-positive or non-finite.
pub fn ln_beta(a: f64, b: f64) -> Result<f64> {
    Ok(ln_gamma(a)? + ln_gamma(b)? - ln_gamma(a + b)?)
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, monotonically increasing from 0 at `x = 0`
/// to 1 as `x → ∞`. Used for chi-square CDFs.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `a <= 0` or `x < 0`, and
/// [`StatsError::NoConvergence`] if the expansion stalls (pathological
/// arguments).
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
        });
    }
    if !x.is_finite() || x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same domain restrictions as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

/// Series expansion for `P(a, x)`, converges quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let ln_ga = ln_gamma_unchecked(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_ga).exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_p_series",
    })
}

/// Continued fraction for `Q(a, x)`, converges quickly for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> Result<f64> {
    let ln_ga = ln_gamma_unchecked(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_ga).exp() * h);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_q_cf",
    })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// This is the CDF of the Beta(a, b) distribution evaluated at `x`; it
/// underpins exact binomial tails (Clopper–Pearson intervals, binomial
/// tests).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `a <= 0`, `b <= 0` or `x`
/// lies outside `[0, 1]`, and [`StatsError::NoConvergence`] if the continued
/// fraction stalls.
///
/// ```
/// use vdbench_stats::special::beta_inc;
/// // I_{0.5}(2, 2) = 0.5 by symmetry
/// assert!((beta_inc(2.0, 2.0, 0.5).unwrap() - 0.5).abs() < 1e-12);
/// ```
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
        });
    }
    if !b.is_finite() || b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "b",
            value: b,
        });
    }
    if !x.is_finite() || !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)?).exp();
    // Use the continued fraction in its rapidly converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0 - front * beta_cf(b, a, 1.0 - x)? / b)
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "beta_cf" })
}

/// Inverse of the regularized incomplete beta function.
///
/// Finds `x` such that `I_x(a, b) = p` by bisection refined with Newton
/// steps; accurate to about 1e-12 in `x`.
///
/// # Errors
///
/// Propagates domain errors from [`beta_inc`] and rejects `p` outside
/// `[0, 1]`.
pub fn beta_inc_inv(a: f64, b: f64, p: f64) -> Result<f64> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
        });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }
    // Bisection with monotone I_x; 200 iterations give ~2^-200 bracketing,
    // stop early on tolerance.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = 0.5;
    for _ in 0..200 {
        let v = beta_inc(a, b, x)?;
        if (v - p).abs() < 1e-14 {
            break;
        }
        if v < p {
            lo = x;
        } else {
            hi = x;
        }
        x = 0.5 * (lo + hi);
        if hi - lo < 1e-15 {
            break;
        }
    }
    Ok(x)
}

/// Error function `erf(x)`, accurate to about 1.2e-7 (Abramowitz–Stegun
/// 7.1.26 refined via the complementary formulation from Numerical Recipes,
/// giving ~1e-12 effective accuracy for the normal CDF use-case).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)`.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (`erfcc`),
/// with relative error below 1.2e-7 everywhere; adequate for p-values and
/// interval construction at the tolerances used in this suite.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use vdbench_stats::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
/// assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` (a.k.a. probit).
///
/// Implements Acklam's rational approximation followed by one Halley
/// refinement step, giving ~1e-9 absolute accuracy on `(0, 1)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `p` outside the open
/// interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
        });
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Natural log of `n choose k` computed via log-gamma, valid for large `n`.
///
/// # Panics
///
/// Never panics; `k > n` yields negative infinity (the binomial coefficient
/// is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma_unchecked(n as f64 + 1.0)
        - ln_gamma_unchecked(k as f64 + 1.0)
        - ln_gamma_unchecked((n - k) as f64 + 1.0)
}

/// Binomial probability mass `P(X = k)` for `X ~ Binomial(n, p)`.
///
/// Computed in log space for numerical stability at large `n`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial lower tail `P(X <= k)` via the incomplete beta identity.
///
/// `P(X <= k) = I_{1-p}(n-k, k+1)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `p` outside `[0, 1]`.
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
        });
    }
    if k >= n {
        return Ok(1.0);
    }
    if p == 0.0 {
        return Ok(1.0);
    }
    if p == 1.0 {
        return Ok(0.0);
    }
    beta_inc((n - k) as f64, k as f64 + 1.0, 1.0 - p)
}

/// Chi-square distribution CDF with `df` degrees of freedom.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for non-positive `df` or
/// negative `x`.
pub fn chi_square_cdf(x: f64, df: f64) -> Result<f64> {
    if !df.is_finite() || df <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "df",
            value: df,
        });
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
        });
    }
    gamma_p(df / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            let expect = f.ln();
            assert!(
                (ln_gamma(x).unwrap() - expect).abs() < 1e-11,
                "ln_gamma({x})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5).unwrap() - expect).abs() < 1e-11);
        // Γ(3/2) = sqrt(π)/2
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5).unwrap() - expect).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x).unwrap() - expect).abs() < TOL, "x={x}");
        }
        assert_eq!(gamma_p(2.5, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn gamma_q_complements_p() {
        for &a in &[0.5, 1.0, 3.3, 10.0] {
            for &x in &[0.2, 1.0, 4.0, 20.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert!((p + q - 1.0).abs() < TOL);
            }
        }
    }

    #[test]
    fn beta_inc_symmetry_and_bounds() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0).unwrap(), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            let lhs = beta_inc(a, b, x).unwrap();
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x (uniform CDF)
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((beta_inc(1.0, 1.0, x).unwrap() - x).abs() < TOL);
        }
    }

    #[test]
    fn beta_inc_inv_round_trip() {
        for &(a, b) in &[(2.0, 3.0), (0.5, 0.5), (10.0, 1.0), (1.0, 1.0)] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = beta_inc_inv(a, b, p).unwrap();
                let back = beta_inc(a, b, x).unwrap();
                assert!((back - p).abs() < 1e-9, "a={a} b={b} p={p}");
            }
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 2e-7);
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 2e-7);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_quantile_round_trip() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p).unwrap();
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p={p}");
        }
        assert!((normal_quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-6);
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252.0f64.ln()).abs() < 1e-11);
        assert_eq!(ln_choose(4, 0), 0.0);
        assert_eq!(ln_choose(4, 4), 0.0);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 20;
        for &p in &[0.0, 0.1, 0.5, 0.93, 1.0] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn binomial_cdf_matches_pmf_sum() {
        let n = 30;
        let p = 0.37;
        let mut acc = 0.0;
        for k in 0..=n {
            acc += binomial_pmf(n, k, p);
            let cdf = binomial_cdf(n, k, p).unwrap();
            assert!((cdf - acc).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn binomial_cdf_edge_probabilities() {
        assert_eq!(binomial_cdf(10, 3, 0.0).unwrap(), 1.0);
        assert_eq!(binomial_cdf(10, 3, 1.0).unwrap(), 0.0);
        assert_eq!(binomial_cdf(10, 10, 0.4).unwrap(), 1.0);
        assert!(binomial_cdf(10, 3, 1.5).is_err());
    }

    #[test]
    fn chi_square_cdf_known_values() {
        // df=1: P(X <= 3.841) ≈ 0.95
        assert!((chi_square_cdf(3.841_458_820_694_124, 1.0).unwrap() - 0.95).abs() < 1e-6);
        // df=2: CDF(x) = 1 - e^{-x/2}
        for &x in &[0.5f64, 1.0, 5.0] {
            let expect = 1.0 - (-x / 2.0).exp();
            assert!((chi_square_cdf(x, 2.0).unwrap() - expect).abs() < 1e-10);
        }
        assert!(chi_square_cdf(-1.0, 2.0).is_err());
        assert!(chi_square_cdf(1.0, 0.0).is_err());
    }
}
