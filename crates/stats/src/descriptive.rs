//! Descriptive statistics over `f64` samples.
//!
//! [`Summary`] accumulates moments with Welford's numerically stable online
//! algorithm and keeps the sorted data needed for order statistics lazily.

use crate::{Result, StatsError};

/// A one-pass summary of a sample: count, mean, variance, extrema, and
/// (on demand) order statistics.
///
/// ```
/// use vdbench_stats::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.len(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    data: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            data: Vec::new(),
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        s.extend(values.iter().copied());
        s
    }

    /// Adds one observation (Welford update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.data.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the summary holds no data.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean. Returns `NaN` when empty (matching the convention of
    /// `f64` aggregate operations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n - 1` denominator). `NaN` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population variance (`n` denominator). `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`).
    pub fn std_error(&self) -> f64 {
        self.sample_std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest observation, `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation, `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Range (`max - min`), `NaN` when empty.
    pub fn range(&self) -> f64 {
        self.max() - self.min()
    }

    /// Coefficient of variation (`std_dev / mean`); `NaN` when the mean is
    /// zero or data is insufficient.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::NAN
        } else {
            self.sample_std_dev() / m
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between
    /// closest ranks (type-7, the R/NumPy default).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] on an empty summary and
    /// [`StatsError::InvalidParameter`] for `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=1.0).contains(&q) || !q.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "q",
                value: q,
            });
        }
        // One clone is unavoidable behind `&self`, but the full
        // O(n log n) sort is not: a quickselect gets the two endpoint
        // order statistics in expected O(n).
        let mut scratch = self.data.clone();
        Ok(quantile_unsorted(&mut scratch, q))
    }

    /// Sample median.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] on an empty summary.
    pub fn median(&self) -> Result<f64> {
        self.quantile(0.5)
    }

    /// Interquartile range (Q3 − Q1).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] on an empty summary.
    pub fn iqr(&self) -> Result<f64> {
        Ok(self.quantile(0.75)? - self.quantile(0.25)?)
    }

    /// Immutable view of the raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.data
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Type-7 quantile of **already sorted** data.
///
/// Callers must ensure `sorted` is in ascending order; this is the hot-path
/// primitive behind [`Summary::quantile`] and the bootstrap machinery.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Type-7 quantile of **unsorted** data without sorting it: the two
/// closest-rank order statistics are found with `select_nth_unstable_by`
/// (expected O(n), vs the O(n log n) clone-and-sort this replaces in
/// [`Summary::quantile`] and the bootstrap percentile endpoints).
///
/// `data` is reordered (partially partitioned) but remains a permutation of
/// the input, so repeated calls on the same buffer stay correct. The result
/// is **bit-identical** to `quantile_sorted(&fully_sorted_data, q)`: the
/// selected order statistics are the same values a `total_cmp` sort would
/// place at those positions, and the interpolation expression is the same.
///
/// # Panics
///
/// Debug-asserts non-empty input; `q` must be in `[0, 1]` (callers
/// validate, matching [`quantile_sorted`]'s contract).
pub fn quantile_unsorted(data: &mut [f64], q: f64) -> f64 {
    debug_assert!(!data.is_empty());
    if data.len() == 1 {
        return data[0];
    }
    let h = (data.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let (_, lo_ref, rest) = data.select_nth_unstable_by(lo, |a, b| a.total_cmp(b));
    let lo_val = *lo_ref;
    if lo == hi {
        lo_val
    } else {
        // hi == lo + 1: the smallest element of the right partition is
        // exactly what a full sort would place at index `hi`.
        let hi_val = rest
            .iter()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
            .expect("right partition non-empty when lo < hi");
        lo_val + (h - lo as f64) * (hi_val - lo_val)
    }
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] on an empty slice.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Weighted arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] for mismatched inputs,
/// [`StatsError::EmptyInput`] when empty, and
/// [`StatsError::InvalidParameter`] when weights are negative or sum to zero.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64> {
    if values.len() != weights.len() {
        return Err(StatsError::LengthMismatch {
            left: values.len(),
            right: weights.len(),
        });
    }
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (&v, &w) in values.iter().zip(weights) {
        if w < 0.0 || !w.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "weight",
                value: w,
            });
        }
        num += v * w;
        den += w;
    }
    if den == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "weight_sum",
            value: 0.0,
        });
    }
    Ok(num / den)
}

/// Geometric mean of strictly positive values.
///
/// Used for aggregating expert pairwise judgments (AIJ) where the geometric
/// mean is the only consistency-preserving aggregator.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::InvalidParameter`] for non-positive entries.
pub fn geometric_mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = 0.0;
    for &v in values {
        if v <= 0.0 || !v.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "value",
                value: v,
            });
        }
        acc += v.ln();
    }
    Ok((acc / values.len() as f64).exp())
}

/// Harmonic mean of strictly positive values.
///
/// This is the aggregation underlying the F-measure, included so the metric
/// catalog can be expressed in terms of reusable primitives.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::InvalidParameter`] for non-positive entries.
pub fn harmonic_mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = 0.0;
    for &v in values {
        if v <= 0.0 || !v.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "value",
                value: v,
            });
        }
        acc += 1.0 / v;
    }
    Ok(values.len() as f64 / acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_behaviour() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.median().is_err());
        assert_eq!(s.median().unwrap_err(), StatsError::EmptyInput);
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median().unwrap(), 42.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s = Summary::from_slice(&data);
        let m = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0);
        assert!((s.mean() - m).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn quantiles_type7() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(1.0).unwrap(), 4.0);
        assert!((s.median().unwrap() - 2.5).abs() < 1e-12);
        assert!((s.quantile(0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((s.iqr().unwrap() - 1.5).abs() < 1e-12);
        assert!(s.quantile(1.5).is_err());
        assert!(s.quantile(f64::NAN).is_err());
    }

    #[test]
    fn quantile_unsorted_input() {
        let s = Summary::from_slice(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(s.median().unwrap(), 5.0);
    }

    #[test]
    fn quantile_unsorted_matches_sorted_bitwise() {
        let data: Vec<f64> = (0..97)
            .map(|i| ((i * 37) % 23) as f64 * 0.13 - 1.0)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.025, 0.25, 0.5, 0.75, 0.9, 0.975, 1.0] {
            let mut scratch = data.clone();
            let fast = quantile_unsorted(&mut scratch, q);
            let slow = quantile_sorted(&sorted, q);
            assert_eq!(fast.to_bits(), slow.to_bits(), "q={q}");
            // Scratch stays a permutation: a second call still works.
            let again = quantile_unsorted(&mut scratch, q);
            assert_eq!(again.to_bits(), slow.to_bits(), "q={q} (reuse)");
        }
        let mut one = [7.5];
        assert_eq!(quantile_unsorted(&mut one, 0.3), 7.5);
    }

    #[test]
    fn extend_and_collect() {
        let s: Summary = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.len(), 3);
        let mut s2 = Summary::new();
        s2.extend([4.0, 5.0]);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.range(), 1.0);
    }

    #[test]
    fn mean_helpers() {
        assert!(mean(&[]).is_err());
        assert_eq!(mean(&[1.0, 3.0]).unwrap(), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 3.0]).unwrap(), 2.5);
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0], &[-1.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn geometric_and_harmonic() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
        // harmonic mean of p and r is exactly F1's core.
        assert!((harmonic_mean(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[0.5, 1.0]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(harmonic_mean(&[-1.0]).is_err());
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 10.0, 10.0]);
        assert!((s.coefficient_of_variation()).abs() < 1e-12);
        let s = Summary::from_slice(&[0.0, 0.0]);
        assert!(s.coefficient_of_variation().is_nan());
    }
}
