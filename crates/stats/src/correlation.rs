//! Correlation and rank-agreement statistics.
//!
//! The metric-selection study compares *rankings*: rankings of tools induced
//! by different metrics (Table 5), and rankings of metrics produced
//! analytically vs by the MCDA + experts pipeline (Table 6, Fig. 4). The
//! agreement measures live here: Pearson r, Spearman ρ, Kendall τ-b (tie
//! aware) and Kendall's coefficient of concordance W for whole panels.

use crate::{Result, StatsError};

fn check_paired(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    Ok(())
}

/// Pearson product-moment correlation coefficient.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] / [`StatsError::EmptyInput`] for
/// malformed input and [`StatsError::Undefined`] when either sample is
/// constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_paired(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::Undefined {
            reason: "correlation of a constant sample",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of a sample (average rank for ties), 1-based.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation ρ (Pearson on mid-ranks, so tie-aware).
///
/// # Errors
///
/// Same failure modes as [`pearson`].
///
/// ```
/// use vdbench_stats::correlation::spearman;
/// let rho = spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
/// assert!((rho - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    let _span = vdbench_telemetry::span!("stats", "spearman", n = x.len());
    check_paired(x, y)?;
    pearson(&ranks(x), &ranks(y))
}

/// Kendall τ-b rank correlation (tie-corrected).
///
/// O(n²) pair enumeration — exact, and fast enough for the ranking sizes in
/// this suite (tools and metrics number in the tens).
///
/// # Errors
///
/// Returns [`StatsError::Undefined`] when either input is entirely tied,
/// plus the usual input-shape errors.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64> {
    let _span = vdbench_telemetry::span!("stats", "kendall_tau", n = x.len());
    check_paired(x, y)?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Joint tie contributes to neither denominator term.
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    // Count joint ties into both tie totals for the τ-b denominator.
    let joint = n0 - concordant - discordant - ties_x - ties_y;
    let tx = ties_x + joint;
    let ty = ties_y + joint;
    let denom = (((n0 - tx) as f64) * ((n0 - ty) as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::Undefined {
            reason: "kendall tau over fully tied data",
        });
    }
    Ok((concordant - discordant) as f64 / denom)
}

/// Kendall's coefficient of concordance `W` across `m` raters ranking `n`
/// items; `W = 1` means all raters agree perfectly, `W ≈ 0` means no
/// agreement. Tie-corrected.
///
/// `ratings[r][i]` is rater `r`'s score for item `i` (higher = better);
/// scores are converted to ranks internally.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when there are no raters or fewer than
/// two items, [`StatsError::LengthMismatch`] for ragged input, and
/// [`StatsError::Undefined`] when every rater ties every item.
pub fn kendall_w(ratings: &[Vec<f64>]) -> Result<f64> {
    if ratings.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let n = ratings[0].len();
    if n < 2 {
        return Err(StatsError::EmptyInput);
    }
    for row in ratings {
        if row.len() != n {
            return Err(StatsError::LengthMismatch {
                left: n,
                right: row.len(),
            });
        }
    }
    let m = ratings.len() as f64;
    let mut rank_sums = vec![0.0; n];
    let mut tie_correction = 0.0;
    for row in ratings {
        let r = ranks(row);
        for (s, v) in rank_sums.iter_mut().zip(&r) {
            *s += v;
        }
        // Tie correction term: sum over tie groups of (t^3 - t).
        let mut sorted = row.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_correction += t * t * t - t;
            i = j + 1;
        }
    }
    let mean_rank = m * (n as f64 + 1.0) / 2.0;
    let s: f64 = rank_sums.iter().map(|r| (r - mean_rank).powi(2)).sum();
    let nf = n as f64;
    let denom = m * m * (nf * nf * nf - nf) - m * tie_correction;
    if denom == 0.0 {
        return Err(StatsError::Undefined {
            reason: "kendall W over fully tied ratings",
        });
    }
    Ok(12.0 * s / denom)
}

/// Agreement between two rankings expressed as permutations of item ids:
/// converts ranks to scores and delegates to [`kendall_tau`]. Convenience
/// wrapper used throughout the ranking analyses.
///
/// Both slices must contain each item's *rank position* (0 = best).
///
/// # Errors
///
/// Propagates [`kendall_tau`] errors.
pub fn kendall_tau_ranks(a: &[usize], b: &[usize]) -> Result<f64> {
    let fa: Vec<f64> = a.iter().map(|&v| v as f64).collect();
    let fb: Vec<f64> = b.iter().map(|&v| v as f64).collect();
    kendall_tau(&fa, &fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
        let r = ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_known_value() {
        // Classic example: tau = 2(C-D)/(n(n-1))
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [3.0, 4.0, 1.0, 2.0, 5.0];
        // pairs: C=6? compute: expected tau = 0.2 (known example)
        let tau = kendall_tau(&x, &y).unwrap();
        assert!((tau - 0.2).abs() < 1e-12, "tau={tau}");
    }

    #[test]
    fn kendall_with_ties_stays_bounded() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!(tau > 0.0 && tau <= 1.0);
    }

    #[test]
    fn kendall_fully_tied_is_undefined() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn kendall_tau_ranks_wrapper() {
        let a = [0usize, 1, 2, 3];
        let b = [3usize, 2, 1, 0];
        assert!((kendall_tau_ranks(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert!((kendall_tau_ranks(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_w_unanimous() {
        let ratings = vec![
            vec![3.0, 2.0, 1.0],
            vec![30.0, 20.0, 10.0],
            vec![0.9, 0.5, 0.1],
        ];
        assert!((kendall_w(&ratings).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_w_disagreement_lower() {
        let agree = vec![vec![3.0, 2.0, 1.0], vec![3.0, 2.0, 1.0]];
        let disagree = vec![vec![3.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]];
        assert!(kendall_w(&agree).unwrap() > kendall_w(&disagree).unwrap());
    }

    #[test]
    fn kendall_w_errors() {
        assert!(kendall_w(&[]).is_err());
        assert!(kendall_w(&[vec![1.0]]).is_err());
        assert!(kendall_w(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        assert!(matches!(
            kendall_w(&[vec![1.0, 1.0], vec![2.0, 2.0]]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn kendall_w_ties_handled() {
        let ratings = vec![vec![1.0, 1.0, 2.0, 3.0], vec![1.0, 2.0, 2.0, 3.0]];
        let w = kendall_w(&ratings).unwrap();
        assert!(w > 0.5 && w <= 1.0, "w={w}");
    }
}
