//! Correlation and rank-agreement statistics.
//!
//! The metric-selection study compares *rankings*: rankings of tools induced
//! by different metrics (Table 5), and rankings of metrics produced
//! analytically vs by the MCDA + experts pipeline (Table 6, Fig. 4). The
//! agreement measures live here: Pearson r, Spearman ρ, Kendall τ-b (tie
//! aware) and Kendall's coefficient of concordance W for whole panels.

use crate::{Result, StatsError};

fn check_paired(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    Ok(())
}

/// Pearson product-moment correlation coefficient.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] / [`StatsError::EmptyInput`] for
/// malformed input and [`StatsError::Undefined`] when either sample is
/// constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_paired(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::Undefined {
            reason: "correlation of a constant sample",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of a sample (average rank for ties), 1-based.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx = Vec::new();
    let mut out = Vec::new();
    ranks_with_scratch(values, &mut idx, &mut out);
    out
}

/// Mid-ranks written into `out`, reusing `idx` as the argsort scratch —
/// the hot-loop form of [`ranks`] used by [`kendall_w`] and the Friedman
/// test, which rank one row per rater/block and would otherwise allocate a
/// fresh index permutation and rank vector per call.
///
/// Returns the tie-correction term `Σ (t³ − t)` over the tie groups of
/// `values` (exact: every addend and partial sum is an integer below
/// 2⁵³), which is precisely the quantity the callers used to recompute
/// with a clone-and-sort pass.
pub fn ranks_with_scratch(values: &[f64], idx: &mut Vec<usize>, out: &mut Vec<f64>) -> f64 {
    let n = values.len();
    idx.clear();
    idx.extend(0..n);
    idx.sort_unstable_by(|&a, &b| values[a].total_cmp(&values[b]));
    out.clear();
    out.resize(n, 0.0);
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    tie_correction
}

/// Spearman rank correlation ρ (Pearson on mid-ranks, so tie-aware).
///
/// # Errors
///
/// Same failure modes as [`pearson`].
///
/// ```
/// use vdbench_stats::correlation::spearman;
/// let rho = spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
/// assert!((rho - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    let _span = vdbench_telemetry::span!("stats", "spearman", n = x.len());
    check_paired(x, y)?;
    pearson(&ranks(x), &ranks(y))
}

/// Kendall τ-b rank correlation (tie-corrected), computed with Knight's
/// O(n log n) merge-sort algorithm (W. R. Knight, JASA 1966).
///
/// The pairs are never enumerated. Instead:
///
/// 1. argsort by `(x, y)` lexicographically;
/// 2. count `T_x = Σ t(t−1)/2` over the x-tie groups and the *joint* ties
///    `Σ u(u−1)/2` over the (x, y)-tie groups in that order;
/// 3. merge-sort the y-sequence (taken in x-sorted order) counting strict
///    inversions — each inversion is exactly one discordant pair `D`
///    (pairs inside an x-tie group are pre-sorted by y, so they can never
///    invert, and equal y values merge stably without counting);
/// 4. read `T_y` off the now-sorted y-sequence;
/// 5. recover `C = n0 − T_x − T_y + joint − D` where `n0 = n(n−1)/2`.
///
/// The tie-correction terms match the τ-b denominator definition: `T_x`
/// counts every pair tied on x (including joint ties) and `T_y` every pair
/// tied on y, so `τ_b = (C − D) / √((n0 − T_x)(n0 − T_y))`. All counts are
/// exact `i64`s and the final expression performs the *same* float
/// operations as the retained O(n²) oracle [`kendall_tau_naive`], so the two
/// agree bit-for-bit on NaN-free input (equivalence is proptested; `±0.0`
/// keys are canonicalized so `total_cmp` grouping matches `==` grouping).
///
/// # Errors
///
/// Returns [`StatsError::Undefined`] when either input is entirely tied,
/// plus the usual input-shape errors.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64> {
    let _span = vdbench_telemetry::span!("stats", "kendall_tau", n = x.len());
    check_paired(x, y)?;
    let n = x.len();
    // Canonicalize -0.0 to +0.0 (IEEE: -0.0 + 0.0 == +0.0) so that
    // `total_cmp` sorting groups exactly the values `==` considers tied.
    let kx: Vec<f64> = x.iter().map(|&v| v + 0.0).collect();
    let ky: Vec<f64> = y.iter().map(|&v| v + 0.0).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| kx[a].total_cmp(&kx[b]).then(ky[a].total_cmp(&ky[b])));

    // T_x and joint ties from the x-sorted order.
    let mut tx = 0i64;
    let mut joint = 0i64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && kx[idx[j + 1]] == kx[idx[i]] {
            j += 1;
        }
        let t = (j - i + 1) as i64;
        tx += t * (t - 1) / 2;
        let mut a = i;
        while a <= j {
            let mut b = a;
            while b < j && ky[idx[b + 1]] == ky[idx[a]] {
                b += 1;
            }
            let u = (b - a + 1) as i64;
            joint += u * (u - 1) / 2;
            a = b + 1;
        }
        i = j + 1;
    }

    // Discordant pairs = strict inversions of the y-sequence in x-order.
    let mut ys: Vec<f64> = idx.iter().map(|&k| ky[k]).collect();
    let mut buf = vec![0.0; n];
    let discordant = merge_count_inversions(&mut ys, &mut buf);

    // T_y from the now fully sorted y-sequence.
    let mut ty = 0i64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && ys[j + 1] == ys[i] {
            j += 1;
        }
        let t = (j - i + 1) as i64;
        ty += t * (t - 1) / 2;
        i = j + 1;
    }

    let n0 = (n * (n - 1) / 2) as i64;
    let concordant = n0 - tx - ty + joint - discordant;
    let denom = (((n0 - tx) as f64) * ((n0 - ty) as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::Undefined {
            reason: "kendall tau over fully tied data",
        });
    }
    Ok((concordant - discordant) as f64 / denom)
}

/// Bottom-up merge sort of `data` counting strict inversions (`data[i] >
/// data[j]` with `i < j`). Equal elements merge stably (left first) and are
/// never counted. `buf` must have the same length as `data`.
fn merge_count_inversions(data: &mut [f64], buf: &mut [f64]) -> i64 {
    let n = data.len();
    debug_assert_eq!(buf.len(), n);
    let mut inversions = 0i64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if data[i] <= data[j] {
                    buf[k] = data[i];
                    i += 1;
                } else {
                    buf[k] = data[j];
                    j += 1;
                    inversions += (mid - i) as i64;
                }
                k += 1;
            }
            buf[k..k + (mid - i)].copy_from_slice(&data[i..mid]);
            k += mid - i;
            buf[k..k + (hi - j)].copy_from_slice(&data[j..hi]);
            data[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

/// The original O(n²) pair-enumeration Kendall τ-b, retained verbatim as
/// the test oracle for [`kendall_tau`]: the proptest suite asserts the two
/// agree *bit-for-bit* on arbitrary NaN-free input (including heavy ties),
/// and the criterion kernel bench reports old-vs-new throughput against it.
/// Not used by any production path.
///
/// # Errors
///
/// Same failure modes as [`kendall_tau`].
pub fn kendall_tau_naive(x: &[f64], y: &[f64]) -> Result<f64> {
    check_paired(x, y)?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Joint tie contributes to neither denominator term.
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    // Count joint ties into both tie totals for the τ-b denominator.
    let joint = n0 - concordant - discordant - ties_x - ties_y;
    let tx = ties_x + joint;
    let ty = ties_y + joint;
    let denom = (((n0 - tx) as f64) * ((n0 - ty) as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::Undefined {
            reason: "kendall tau over fully tied data",
        });
    }
    Ok((concordant - discordant) as f64 / denom)
}

/// Kendall's coefficient of concordance `W` across `m` raters ranking `n`
/// items; `W = 1` means all raters agree perfectly, `W ≈ 0` means no
/// agreement. Tie-corrected.
///
/// `ratings[r][i]` is rater `r`'s score for item `i` (higher = better);
/// scores are converted to ranks internally.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when there are no raters or fewer than
/// two items, [`StatsError::LengthMismatch`] for ragged input, and
/// [`StatsError::Undefined`] when every rater ties every item.
pub fn kendall_w(ratings: &[Vec<f64>]) -> Result<f64> {
    if ratings.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let n = ratings[0].len();
    if n < 2 {
        return Err(StatsError::EmptyInput);
    }
    for row in ratings {
        if row.len() != n {
            return Err(StatsError::LengthMismatch {
                left: n,
                right: row.len(),
            });
        }
    }
    let m = ratings.len() as f64;
    let mut rank_sums = vec![0.0; n];
    let mut tie_correction = 0.0;
    // Scratch hoisted out of the per-rater loop: one argsort permutation and
    // one rank buffer, reused for every row instead of two fresh allocations
    // (plus a clone-and-sort for the tie term) per rater. The tie-correction
    // sum `Σ (t³ − t)` returned by `ranks_with_scratch` is exact integer
    // arithmetic in f64, so regrouping the per-row additions is bit-identical
    // to the old group-at-a-time accumulation.
    let mut idx_scratch = Vec::with_capacity(n);
    let mut rank_scratch = Vec::with_capacity(n);
    for row in ratings {
        tie_correction += ranks_with_scratch(row, &mut idx_scratch, &mut rank_scratch);
        for (s, v) in rank_sums.iter_mut().zip(&rank_scratch) {
            *s += v;
        }
    }
    let mean_rank = m * (n as f64 + 1.0) / 2.0;
    let s: f64 = rank_sums.iter().map(|r| (r - mean_rank).powi(2)).sum();
    let nf = n as f64;
    let denom = m * m * (nf * nf * nf - nf) - m * tie_correction;
    if denom == 0.0 {
        return Err(StatsError::Undefined {
            reason: "kendall W over fully tied ratings",
        });
    }
    Ok(12.0 * s / denom)
}

/// Agreement between two rankings expressed as permutations of item ids:
/// converts ranks to scores and delegates to [`kendall_tau`]. Convenience
/// wrapper used throughout the ranking analyses.
///
/// Both slices must contain each item's *rank position* (0 = best).
///
/// # Errors
///
/// Propagates [`kendall_tau`] errors.
pub fn kendall_tau_ranks(a: &[usize], b: &[usize]) -> Result<f64> {
    let fa: Vec<f64> = a.iter().map(|&v| v as f64).collect();
    let fb: Vec<f64> = b.iter().map(|&v| v as f64).collect();
    kendall_tau(&fa, &fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
        let r = ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_known_value() {
        // Classic example: tau = 2(C-D)/(n(n-1))
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [3.0, 4.0, 1.0, 2.0, 5.0];
        // pairs: C=6? compute: expected tau = 0.2 (known example)
        let tau = kendall_tau(&x, &y).unwrap();
        assert!((tau - 0.2).abs() < 1e-12, "tau={tau}");
    }

    #[test]
    fn kendall_with_ties_stays_bounded() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!(tau > 0.0 && tau <= 1.0);
    }

    #[test]
    fn kendall_fully_tied_is_undefined() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn kendall_tau_ranks_wrapper() {
        let a = [0usize, 1, 2, 3];
        let b = [3usize, 2, 1, 0];
        assert!((kendall_tau_ranks(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert!((kendall_tau_ranks(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_w_unanimous() {
        let ratings = vec![
            vec![3.0, 2.0, 1.0],
            vec![30.0, 20.0, 10.0],
            vec![0.9, 0.5, 0.1],
        ];
        assert!((kendall_w(&ratings).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_w_disagreement_lower() {
        let agree = vec![vec![3.0, 2.0, 1.0], vec![3.0, 2.0, 1.0]];
        let disagree = vec![vec![3.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]];
        assert!(kendall_w(&agree).unwrap() > kendall_w(&disagree).unwrap());
    }

    #[test]
    fn kendall_w_errors() {
        assert!(kendall_w(&[]).is_err());
        assert!(kendall_w(&[vec![1.0]]).is_err());
        assert!(kendall_w(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        assert!(matches!(
            kendall_w(&[vec![1.0, 1.0], vec![2.0, 2.0]]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn kendall_fast_matches_naive_bitwise() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 2.0, 3.0, 4.0, 5.0], &[3.0, 4.0, 1.0, 2.0, 5.0]),
            (&[1.0, 1.0, 2.0, 3.0], &[1.0, 2.0, 2.0, 3.0]),
            (&[2.0, 2.0, 2.0, 1.0], &[5.0, 5.0, 1.0, 1.0]),
            (&[-0.0, 0.0, 1.0, -1.0], &[0.0, -0.0, 2.0, 2.0]),
            (
                &[0.1, 0.2, 0.2, 0.2, 0.1, 0.3],
                &[9.0, 8.0, 8.0, 7.0, 9.0, 1.0],
            ),
        ];
        for (x, y) in cases {
            let fast = kendall_tau(x, y).unwrap();
            let naive = kendall_tau_naive(x, y).unwrap();
            assert_eq!(fast.to_bits(), naive.to_bits(), "x={x:?} y={y:?}");
        }
    }

    #[test]
    fn kendall_fast_and_naive_agree_on_undefined() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Undefined { .. })
        ));
        assert!(matches!(
            kendall_tau_naive(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn merge_count_inversions_known_values() {
        let mut v = [3.0, 1.0, 2.0];
        let mut buf = vec![0.0; 3];
        assert_eq!(merge_count_inversions(&mut v, &mut buf), 2);
        assert_eq!(v, [1.0, 2.0, 3.0]);

        let mut v = [5.0, 4.0, 3.0, 2.0, 1.0];
        let mut buf = vec![0.0; 5];
        assert_eq!(merge_count_inversions(&mut v, &mut buf), 10);

        // Equal elements are not inversions.
        let mut v = [2.0, 2.0, 2.0, 1.0];
        let mut buf = vec![0.0; 4];
        assert_eq!(merge_count_inversions(&mut v, &mut buf), 3);

        let mut v: [f64; 0] = [];
        let mut buf = vec![];
        assert_eq!(merge_count_inversions(&mut v, &mut buf), 0);
    }

    #[test]
    fn ranks_with_scratch_reuse_and_tie_term() {
        let mut idx = Vec::new();
        let mut out = Vec::new();
        let t1 = ranks_with_scratch(&[10.0, 20.0, 20.0, 30.0], &mut idx, &mut out);
        assert_eq!(out, vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(t1, 6.0); // one tie group of 2: 2³−2
                             // Reuse the same buffers for a second, differently sized call.
        let t2 = ranks_with_scratch(&[5.0, 5.0, 5.0], &mut idx, &mut out);
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
        assert_eq!(t2, 24.0); // 3³−3
    }

    #[test]
    fn kendall_w_ties_handled() {
        let ratings = vec![vec![1.0, 1.0, 2.0, 3.0], vec![1.0, 2.0, 2.0, 3.0]];
        let w = kendall_w(&ratings).unwrap();
        assert!(w > 0.5 && w <= 1.0, "w={w}");
    }
}
