//! Fixed-bin histograms for diagnostic output and figure data.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A histogram with equal-width bins over a fixed range.
///
/// Out-of-range observations are counted in saturating edge bins so no data
/// is silently dropped.
///
/// ```
/// use vdbench_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
/// for &x in &[0.1, 0.3, 0.3, 0.9] {
///     h.record(x);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.counts()[1], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `lo >= hi`, the bounds
    /// are not finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Records one observation. Non-finite values are counted as
    /// out-of-range (below for `-inf`/NaN, above for `+inf`).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.below += 1;
            return;
        }
        if x >= self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let bin = ((x - self.lo) / width) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range (including NaN).
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Normalized bin densities (fractions of in-range observations). An
    /// empty histogram yields all zeros.
    pub fn densities(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn out_of_range_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0); // upper bound is exclusive
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn bin_centers_and_densities() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
        h.extend([0.5, 0.6, 2.5, 3.9]);
        let d = h.densities();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.25).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_densities_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.densities(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_center_bounds() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_center(2);
    }
}
