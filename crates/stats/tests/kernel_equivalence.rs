//! Property-based equivalence suite for the optimized hot kernels.
//!
//! Every kernel rewritten in the performance pass retains its historical
//! implementation as an oracle; these tests assert the fast path agrees
//! with the oracle **bit-for-bit** (`to_bits` equality, not tolerance):
//!
//! * Knight's O(n log n) Kendall τ-b vs the O(n²) pair scan, on heavily
//!   tied data (small integer domains) including `-0.0` and sign mixes;
//! * the streaming per-worker-scratch bootstrap replicates vs the
//!   materializing loop, for mean / precision-style / composite
//!   statistics, at one worker **and** at many workers;
//! * `select_nth`-based quantiles vs full-sort quantiles.
//!
//! Thread-count cases serialize on a process lock because
//! `RAYON_NUM_THREADS` is process-global (same idiom as the determinism
//! suite in `vdbench-core`).

use proptest::prelude::*;
use std::sync::Mutex;
use vdbench_stats::correlation::{kendall_tau, kendall_tau_naive};
use vdbench_stats::descriptive::{quantile_sorted, quantile_unsorted};
use vdbench_stats::{Bootstrap, SeededRng};

/// Guards the process-global `RAYON_NUM_THREADS` variable.
static THREAD_ENV: Mutex<()> = Mutex::new(());

/// Heavily tied series: values drawn from a small signed-integer domain,
/// scaled so some become `-0.0` (`-0 * 0.5`). This is the adversarial
/// regime for tie bookkeeping.
fn tied_f64s(len_max: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-4i64..5).prop_map(|v| v as f64 * 0.5), 2..len_max)
}

proptest! {
    #[test]
    fn kendall_knight_matches_naive_bitwise(
        pairs in proptest::collection::vec(((-4i64..5), (-4i64..5)), 2..80)
    ) {
        let x: Vec<f64> = pairs.iter().map(|(a, _)| *a as f64 * 0.5).collect();
        let y: Vec<f64> = pairs.iter().map(|(_, b)| *b as f64 * 0.5).collect();
        match (kendall_tau(&x, &y), kendall_tau_naive(&x, &y)) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "fast {} != naive {}",
                fast,
                slow
            ),
            (fast, slow) => prop_assert_eq!(fast, slow),
        }
    }

    #[test]
    fn kendall_handles_negative_zero_mixes(xs in tied_f64s(40)) {
        // Pair the series against a shifted copy of itself: plenty of
        // ties, both signs of zero on both axes.
        let ys: Vec<f64> = xs.iter().rev().map(|v| -v).collect();
        match (kendall_tau(&xs, &ys), kendall_tau_naive(&xs, &ys)) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast.to_bits(), slow.to_bits()),
            (fast, slow) => prop_assert_eq!(fast, slow),
        }
    }

    #[test]
    fn quantile_unsorted_matches_full_sort_bitwise(
        data in proptest::collection::vec(-1000i64..1000, 1..120),
        qnum in 0u32..21,
    ) {
        let q = f64::from(qnum) / 20.0;
        let vals: Vec<f64> = data.iter().map(|&v| v as f64 * 0.25).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let expect = quantile_sorted(&sorted, q);
        let mut scratch = vals;
        let got = quantile_unsorted(&mut scratch, q);
        prop_assert_eq!(got.to_bits(), expect.to_bits(), "q={}", q);
    }
}

/// The three statistic shapes the pipeline bootstraps: a mean, a
/// precision-style ratio over thresholded values, and a composite of both.
type NamedStat = (&'static str, fn(&[f64]) -> f64);

fn statistics() -> [NamedStat; 3] {
    fn mean(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }
    fn precision_like(s: &[f64]) -> f64 {
        let tp = s.iter().filter(|&&v| v > 0.5).count() as f64;
        let all = s.len() as f64;
        tp / all
    }
    fn composite(s: &[f64]) -> f64 {
        let m = mean(s);
        let p = precision_like(s);
        (2.0 * m * p) / (m + p + 1e-9)
    }
    [
        ("mean", mean),
        ("precision", precision_like),
        ("composite", composite),
    ]
}

proptest! {
    // Fewer cases: each runs 2 × 3 × 200 replicates under two pool sizes.
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn streaming_replicates_match_materialized_at_any_thread_count(
        data in proptest::collection::vec(0i64..100, 1..50),
        seed in 0u64..1_000_000,
    ) {
        let _guard = THREAD_ENV.lock().expect("thread-env lock poisoned");
        let vals: Vec<f64> = data.iter().map(|&v| v as f64 / 100.0).collect();
        let boot = Bootstrap::new(200);
        for threads in ["1", "6"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let mut outcomes = Vec::new();
            for (name, stat) in statistics() {
                let mut rng_a = SeededRng::new(seed);
                let mut rng_b = SeededRng::new(seed);
                let fast = boot
                    .replicate_distribution(&vals, stat, &mut rng_a)
                    .expect("non-empty input");
                let slow = boot
                    .replicate_distribution_materialized(&vals, stat, &mut rng_b)
                    .expect("non-empty input");
                outcomes.push((name, fast, slow));
            }
            std::env::remove_var("RAYON_NUM_THREADS");
            for (name, fast, slow) in outcomes {
                prop_assert_eq!(fast.len(), slow.len());
                for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    prop_assert_eq!(
                        f.to_bits(),
                        s.to_bits(),
                        "stat {} replicate {} with {} threads: {} != {}",
                        name, i, threads, f, s
                    );
                }
            }
        }
    }
}
