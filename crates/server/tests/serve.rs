//! End-to-end tests of `vdbench serve` over real TCP sockets.
//!
//! The disk-store configuration and the telemetry counters are
//! process-global, so every test takes one lock, points the store at its
//! own scratch directory, runs its own server on an ephemeral port, and
//! asserts on *counter deltas* rather than absolute values. The
//! properties under test are the service's headline guarantees:
//!
//! * campaign responses are byte-identical to the batch renderers and
//!   land in the batch artifact key space;
//! * cold → warm on one server, and warm across a **restart** — a
//!   committed blob survives the process because commitment is the
//!   atomic publication, not server memory;
//! * a thundering herd on one cold key computes exactly once;
//! * a saturated server sheds cold work with 429 but keeps serving warm;
//! * per-client step budgets deny with 429 and detector-style accounting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Barrier, Mutex, MutexGuard};

use vdbench_core::cache::{clear, reset_stats};
use vdbench_core::set_disk_cache;
use vdbench_detectors::ScanPolicy;
use vdbench_server::{start, ApiRequest, ServerConfig, ServiceConfig, StatsResponse};
use vdbench_telemetry::registry::global;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Scratch blob store wired into the global cache config; detached and
/// deleted on drop.
struct ScratchStore {
    dir: PathBuf,
}

impl ScratchStore {
    fn open(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("vdbench-serve-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        clear();
        set_disk_cache(Some(dir.clone()));
        reset_stats();
        ScratchStore { dir }
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        set_disk_cache(None);
        clear();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        service: ServiceConfig::default(),
    }
}

/// One blocking request over a fresh connection; returns `(status, body)`.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    read_response(stream)
}

fn read_response(stream: TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn counter(name: &str) -> u64 {
    global().counter(name).get()
}

#[test]
fn health_stats_and_error_statuses() {
    let _guard = lock();
    let store = ScratchStore::open("health");
    let server = start(server_config()).expect("bind");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/v1/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, _) = request(addr, "GET", "/nowhere", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST", "/v1/healthz", "{}");
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/v1/scan", r#"{"tool":"nope"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown tool"), "{body}");

    let (status, body) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&body).expect("stats parse");
    assert!(stats.latency.count > 0, "requests were timed");

    // Raw garbage on the socket is answered with 400, not a hang.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"definitely not http\r\n\r\n")
        .expect("send");
    let (status, _) = read_response(stream);
    assert_eq!(status, 400);

    server.shutdown();
    drop(store);
}

#[test]
fn campaign_response_is_byte_identical_to_the_batch_renderer() {
    let _guard = lock();
    let store = ScratchStore::open("campaign");
    let server = start(server_config()).expect("bind");
    let addr = server.addr();
    let expected = vdbench_bench::tables::preamble();

    let cold_before = counter("server.cold_misses");
    let (status, body) = request(addr, "POST", "/v1/campaign", r#"{"artifact":"preamble"}"#);
    assert_eq!(status, 200);
    assert_eq!(body, expected, "service must serve the batch bytes");
    assert_eq!(counter("server.cold_misses"), cold_before + 1);

    // The response went into the *batch* artifact key space: run_all
    // would now replay it, and the service serves it warm.
    let req = ApiRequest::parse("/v1/campaign", r#"{"artifact":"preamble"}"#).expect("parse");
    assert_eq!(
        vdbench_core::raw_blob_get(req.cache_kind(), req.cache_key()).as_deref(),
        Some(expected.as_str())
    );
    let warm_before = counter("server.warm_hits");
    let (status, body) = request(addr, "POST", "/v1/campaign", r#"{"artifact":"preamble"}"#);
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    assert_eq!(counter("server.warm_hits"), warm_before + 1);

    server.shutdown();
    drop(store);
}

#[test]
fn committed_blobs_survive_a_server_restart() {
    let _guard = lock();
    let store = ScratchStore::open("restart");
    let body_json = r#"{"tool":"taint","units":20,"seed":41}"#;

    let first = start(server_config()).expect("bind");
    let cold_before = counter("server.cold_misses");
    let (status, cold_body) = request(first.addr(), "POST", "/v1/scan", body_json);
    assert_eq!(status, 200);
    assert_eq!(counter("server.cold_misses"), cold_before + 1);
    let (status, warm_body) = request(first.addr(), "POST", "/v1/scan", body_json);
    assert_eq!(status, 200);
    assert_eq!(warm_body, cold_body);
    first.shutdown();

    // Kill the compute tier, keep the store: a fresh server must serve
    // the committed response warm on its very first request.
    let second = start(server_config()).expect("rebind");
    let cold_before = counter("server.cold_misses");
    let warm_before = counter("server.warm_hits");
    let (status, replayed) = request(second.addr(), "POST", "/v1/scan", body_json);
    assert_eq!(status, 200);
    assert_eq!(replayed, cold_body, "restart must lose no committed blob");
    assert_eq!(counter("server.cold_misses"), cold_before, "no recompute");
    assert_eq!(counter("server.warm_hits"), warm_before + 1);
    second.shutdown();
    drop(store);
}

#[test]
fn thundering_herd_on_one_cold_key_computes_once() {
    let _guard = lock();
    let store = ScratchStore::open("herd");
    let server = start(server_config()).expect("bind");
    let addr = server.addr();
    // A deliberately chunky compute so the herd arrives while the leader
    // is still working.
    let body_json = r#"{"tool":"pentest","units":800,"seed":4242}"#;

    let cold_before = counter("server.cold_misses");
    let coalesced_before = counter("server.coalesced");
    let warm_before = counter("server.warm_hits");
    let rescanned_before = counter("scan.units.rescanned");

    const HERD: usize = 8;
    let barrier = Barrier::new(HERD);
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..HERD)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let (status, body) = request(addr, "POST", "/v1/scan", body_json);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("herd thread"))
            .collect()
    });

    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every herd member gets the same bytes");
    }
    assert_eq!(
        counter("server.cold_misses"),
        cold_before + 1,
        "exactly one computation"
    );
    assert_eq!(
        counter("scan.units.rescanned"),
        rescanned_before + 800,
        "the streamed scan itself ran once (800 units, no repeats)"
    );
    let followers = (counter("server.coalesced") - coalesced_before)
        + (counter("server.warm_hits") - warm_before);
    assert_eq!(followers, (HERD - 1) as u64, "everyone else reused it");
    assert!(
        counter("server.coalesced") > coalesced_before,
        "the herd must exercise the in-flight path, not just the disk tier"
    );

    server.shutdown();
    drop(store);
}

#[test]
fn saturated_server_sheds_cold_but_serves_warm() {
    let _guard = lock();
    let store = ScratchStore::open("shed");
    // Zero compute slots: every cold request must be load-shed.
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        service: ServiceConfig {
            max_inflight: 0,
            ..ServiceConfig::default()
        },
    })
    .expect("bind");
    let addr = server.addr();
    let body_json = r#"{"tool":"taint","units":15,"seed":77}"#;

    let shed_before = counter("server.shed");
    let (status, body) = request(addr, "POST", "/v1/scan", body_json);
    assert_eq!(status, 429);
    assert!(body.contains("capacity"), "{body}");
    assert_eq!(counter("server.shed"), shed_before + 1);

    // Commit the blob out of band: the same request is now warm traffic,
    // which is never shed.
    let req = ApiRequest::parse("/v1/scan", body_json).expect("parse");
    vdbench_core::raw_blob_put(req.cache_kind(), req.cache_key(), "{\"warm\":true}");
    let (status, body) = request(addr, "POST", "/v1/scan", body_json);
    assert_eq!(status, 200);
    assert_eq!(body, "{\"warm\":true}");

    server.shutdown();
    drop(store);
}

#[test]
fn client_budgets_deny_with_detector_style_accounting() {
    let _guard = lock();
    let store = ScratchStore::open("budget");
    // Default policy prices a 20-unit cold compute at 4 × 20 = 80 steps;
    // budget 81 leaves room for exactly one warm hit afterwards.
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        service: ServiceConfig {
            client_budget: Some(81),
            policy: ScanPolicy::default(),
            ..ServiceConfig::default()
        },
    })
    .expect("bind");
    let addr = server.addr();
    let alice = r#"{"tool":"taint","units":20,"seed":9,"client":"alice"}"#;

    let (status, _) = request(addr, "POST", "/v1/scan", alice);
    assert_eq!(status, 200, "cold compute fits the budget");
    let (status, _) = request(addr, "POST", "/v1/scan", alice);
    assert_eq!(status, 200, "one warm hit fits too");
    let denied_before = counter("server.budget_denied");
    let (status, body) = request(addr, "POST", "/v1/scan", alice);
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("over request budget"), "{body}");
    assert!(body.contains("82 steps spent of 81 budgeted"), "{body}");
    assert_eq!(counter("server.budget_denied"), denied_before + 1);

    // Ledgers are per client: bob still gets the (warm) answer.
    let bob = r#"{"tool":"taint","units":20,"seed":9,"client":"bob"}"#;
    let (status, _) = request(addr, "POST", "/v1/scan", bob);
    assert_eq!(status, 200);

    // A compute the client can never afford is denied up front without
    // occupying a slot.
    let greedy = r#"{"tool":"taint","units":200,"seed":10,"client":"greedy"}"#;
    let (status, body) = request(addr, "POST", "/v1/scan", greedy);
    assert_eq!(status, 429);
    assert!(body.contains("800 steps"), "{body}");

    server.shutdown();
    drop(store);
}
