//! The minimal HTTP/1.1 subset the campaign service speaks.
//!
//! Deliberately tiny — no network dependencies exist in this workspace,
//! and the service needs only: request line + headers + `Content-Length`
//! bodies in, status line + fixed headers + body out, with keep-alive.
//! Everything else (chunked encoding, continuations, multi-line headers,
//! expect/100) is rejected as a parse error the caller answers with 400.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request body size: campaign requests are small JSON
/// documents, so anything bigger is a client error (or abuse), not load.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Upper bound on header count per request.
const MAX_HEADERS: usize = 64;

/// One parsed request off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased by the client ("GET", "POST").
    pub method: String,
    /// Request target as sent (no query parsing; the API is body-based).
    pub path: String,
    /// Decoded request body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

/// One response to put on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` response.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// An error response with a one-field JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        body.push_str(&serde_json::to_string(message).unwrap_or_else(|_| "\"error\"".into()));
        body.push('}');
        HttpResponse {
            status,
            content_type: "application/json",
            body,
        }
    }
}

/// Reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Whether an I/O error is a read-timeout on a socket with a deadline.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// `read_line` that retries read-timeouts once any byte of the request
/// has arrived (a request split across TCP segments must not be dropped
/// by an idle-poll deadline). A timeout on a *completely idle* line —
/// `line` still empty — propagates so the caller can poll for shutdown.
fn read_line_patient(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e) if is_timeout(&e) && !line.is_empty() => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly between requests; `Err(InvalidData)` is a malformed request
/// the caller should answer with 400 and close; idle read-timeouts (no
/// byte of a next request yet) and other errors propagate untouched.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if read_line_patient(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("unsupported HTTP version"));
    }
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        if read_header_line(reader, &mut header)? == 0 {
            return Err(malformed("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            let body = read_body(reader, content_length)?;
            return Ok(Some(HttpRequest {
                method,
                path,
                body,
                keep_alive,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(malformed("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(malformed("body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    Err(malformed("too many headers"))
}

/// `read_line` for headers and body framing: by this point the request
/// has started, so read-timeouts always retry.
fn read_header_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(e),
        }
    }
}

fn read_body(reader: &mut BufReader<TcpStream>, len: usize) -> io::Result<String> {
    let mut buf = vec![0u8; len];
    let mut filled = 0;
    // Manual fill loop: `read_exact` cannot resume after a read-timeout
    // mid-body, and the body may trickle in across segments.
    while filled < len {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(malformed("connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(buf).map_err(|_| malformed("body is not UTF-8"))
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Writes one response (with `Connection: keep-alive`/`close` as asked)
/// and flushes. Head and body go out in a **single** write: a split
/// write puts the body in a second small TCP segment, and on a
/// keep-alive connection Nagle + delayed-ACK turns that into a ~40ms
/// stall per request.
pub fn write_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.push_str(&response.body);
    stream.write_all(wire.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_json_escaped() {
        let r = HttpResponse::error(400, "quote \" and\nnewline");
        assert_eq!(r.status, 400);
        assert_eq!(r.body, "{\"error\":\"quote \\\" and\\nnewline\"}");
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200u16, 400, 404, 405, 429, 500] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
        assert_eq!(reason(418), "Unknown");
    }
}
