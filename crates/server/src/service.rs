//! The campaign service proper: routing, tiers, admission control,
//! per-client budgets and single-flight deduplication.
//!
//! Every API request resolves to a `(kind, key)` address in the
//! content-addressed blob store and then walks three tiers:
//!
//! 1. **Warm** — the blob is committed on disk: serve its bytes straight
//!    off the store (microseconds, no locks beyond the page cache).
//! 2. **Coalesced** — another connection is already computing this exact
//!    key: attach to its in-flight computation and receive a fan-out copy
//!    when it lands (the thundering-herd path — one compute, N answers).
//! 3. **Cold** — nobody has this key: acquire one of the bounded
//!    in-flight compute slots (or be load-shed with 429), register the
//!    flight, and compute. The compute itself fans out over the
//!    workspace's data-parallel layer (scanner scoring, case-study tool
//!    rosters), so admission control bounds *computations*, not threads.
//!
//! Budgets reuse the detectors' step-cost model: a cold compute is priced
//! at [`vdbench_detectors::ScanPolicy::step_budget`] over the request's
//! workload units — exactly what a resilient scan attempt of that size
//! would be billed — while warm and coalesced responses cost a flat
//! [`WARM_COST_STEPS`]. A client over budget gets 429 with the spent/budget
//! accounting in the error body.
//!
//! Counters (`server.*` on the process-global telemetry registry) and a
//! log₂ latency histogram make every tier's traffic observable via
//! `GET /v1/stats`.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use vdbench_detectors::{ScanError, ScanPolicy};
use vdbench_telemetry::registry::{global, Counter, Histogram};

use crate::http::{HttpRequest, HttpResponse};
use crate::request::ApiRequest;

/// Flat step price of a warm hit or a coalesced fan-out copy. Cold
/// computes are priced by [`ScanPolicy::step_budget`] instead.
pub const WARM_COST_STEPS: u64 = 1;

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Maximum concurrently *computing* requests; cold arrivals beyond
    /// this are load-shed with 429 (warm and coalesced traffic is never
    /// shed — it does no new work).
    pub max_inflight: usize,
    /// Per-client lifetime step budget (`None` = unmetered).
    pub client_budget: Option<u64>,
    /// The step-cost model cold computes are priced with.
    pub policy: ScanPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_inflight: 64,
            client_budget: None,
            policy: ScanPolicy::default(),
        }
    }
}

/// One in-flight computation other connections can attach to.
struct Flight {
    result: Mutex<Option<Result<String, String>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Parks until the leader fills the result, then takes a copy.
    fn wait(&self) -> Result<String, String> {
        let mut guard = self.result.lock().expect("flight lock");
        while guard.is_none() {
            guard = self.done.wait(guard).expect("flight lock");
        }
        guard.clone().expect("checked above")
    }

    fn fill(&self, result: Result<String, String>) {
        *self.result.lock().expect("flight lock") = Some(result);
        self.done.notify_all();
    }
}

/// `server.*` telemetry handles, resolved once at service construction.
struct ServeCounters {
    accepted: Arc<Counter>,
    warm_hits: Arc<Counter>,
    cold_misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    shed: Arc<Counter>,
    budget_denied: Arc<Counter>,
    bytes_out: Arc<Counter>,
    latency_us: Arc<Histogram>,
}

impl ServeCounters {
    fn resolve() -> Self {
        let r = global();
        ServeCounters {
            accepted: r.counter("server.accepted"),
            warm_hits: r.counter("server.warm_hits"),
            cold_misses: r.counter("server.cold_misses"),
            coalesced: r.counter("server.coalesced"),
            shed: r.counter("server.shed"),
            budget_denied: r.counter("server.budget_denied"),
            bytes_out: r.counter("server.bytes_out"),
            latency_us: r.histogram("server.latency_us"),
        }
    }
}

/// How one request enters the compute tier.
enum Role {
    /// This connection owns the computation.
    Leader(Arc<Flight>),
    /// Another connection is computing this key; attach and wait.
    Follower(Arc<Flight>),
    /// The blob landed between the warm probe and flight registration.
    Landed(String),
    /// No compute slot free: load-shed.
    Shed,
    /// The client cannot afford the cold compute.
    OverBudget(ScanError),
}

/// The stateless compute tier behind `vdbench serve`: all durable state
/// lives in the content-addressed blob store, so a restarted service
/// resumes serving every previously committed response warm.
pub struct Service {
    cfg: ServiceConfig,
    counters: ServeCounters,
    inflight: AtomicUsize,
    flights: Mutex<HashMap<(&'static str, u64), Arc<Flight>>>,
    spent: Mutex<HashMap<String, u64>>,
}

impl Service {
    /// Builds a service over the process-global telemetry registry and
    /// whatever disk cache directory [`vdbench_core::set_disk_cache`]
    /// configured.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        Service {
            cfg,
            counters: ServeCounters::resolve(),
            inflight: AtomicUsize::new(0),
            flights: Mutex::new(HashMap::new()),
            spent: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Handles one parsed HTTP request, fully instrumented: a `server`
    /// span per request (Chrome-trace exportable like every other
    /// category), the `server.*` counters, and the latency histogram.
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let _span =
            vdbench_telemetry::span!("server", "request", method = req.method, path = req.path);
        let start = Instant::now();
        let response = self.route(req);
        self.counters.bytes_out.add(response.body.len() as u64);
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.counters.latency_us.record(micros);
        response
    }

    fn route(&self, req: &HttpRequest) -> HttpResponse {
        const API: [&str; 3] = ["/v1/campaign", "/v1/scan", "/v1/case-study"];
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => HttpResponse::ok("text/plain; charset=utf-8", "ok\n"),
            ("GET", "/v1/stats") => self.stats_response(),
            ("POST", p) if API.contains(&p) => self.serve_api(p, &req.body),
            (_, p) if API.contains(&p) || p == "/v1/healthz" || p == "/v1/stats" => {
                HttpResponse::error(405, "method not allowed")
            }
            _ => HttpResponse::error(404, "not found"),
        }
    }

    fn serve_api(&self, path: &str, body: &str) -> HttpResponse {
        self.counters.accepted.inc();
        let req = match ApiRequest::parse(path, body) {
            Ok(r) => r,
            Err(e) => return HttpResponse::error(400, &e),
        };
        let kind = req.cache_kind();
        let key = req.cache_key();

        // Tier 1 — warm: a committed blob answers immediately.
        if let Some(text) = vdbench_core::raw_blob_get(kind, key) {
            if let Err(e) = self.charge(req.client(), WARM_COST_STEPS) {
                self.counters.budget_denied.inc();
                return HttpResponse::error(429, &budget_message(req.client(), &e));
            }
            self.counters.warm_hits.inc();
            return HttpResponse::ok(req.content_type(), text);
        }

        // Tiers 2/3 — the leader/follower decision must be atomic with
        // flight registration, so it happens under the flights lock.
        match self.enter_flight(&req, kind, key) {
            Role::Landed(text) => {
                if let Err(e) = self.charge(req.client(), WARM_COST_STEPS) {
                    self.counters.budget_denied.inc();
                    return HttpResponse::error(429, &budget_message(req.client(), &e));
                }
                self.counters.warm_hits.inc();
                HttpResponse::ok(req.content_type(), text)
            }
            Role::Follower(flight) => {
                self.counters.coalesced.inc();
                if let Err(e) = self.charge(req.client(), WARM_COST_STEPS) {
                    self.counters.budget_denied.inc();
                    return HttpResponse::error(429, &budget_message(req.client(), &e));
                }
                respond(&req, flight.wait())
            }
            Role::Shed => {
                self.counters.shed.inc();
                HttpResponse::error(
                    429,
                    &format!(
                        "server at capacity ({} computations in flight); retry",
                        self.cfg.max_inflight
                    ),
                )
            }
            Role::OverBudget(e) => {
                self.counters.budget_denied.inc();
                HttpResponse::error(429, &budget_message(req.client(), &e))
            }
            Role::Leader(flight) => {
                self.counters.cold_misses.inc();
                let result = catch_unwind(AssertUnwindSafe(|| req.compute()))
                    .unwrap_or_else(|_| Err("compute panicked".to_string()));
                // Commit the blob *before* retiring the flight so there is
                // never a moment where the key is neither in flight nor on
                // disk (campaign artifacts publish inside their compute).
                if let (Ok(text), true) = (&result, req.needs_publish()) {
                    vdbench_core::raw_blob_put(kind, key, text);
                }
                flight.fill(result.clone());
                self.flights
                    .lock()
                    .expect("flights lock")
                    .remove(&(kind, key));
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                respond(&req, result)
            }
        }
    }

    /// Decides, atomically, how this request enters the compute tier.
    fn enter_flight(&self, req: &ApiRequest, kind: &'static str, key: u64) -> Role {
        let mut flights = self.flights.lock().expect("flights lock");
        if let Some(flight) = flights.get(&(kind, key)) {
            return Role::Follower(Arc::clone(flight));
        }
        // A leader may have committed and retired between our warm probe
        // and this lock: re-probe the store before starting a duplicate
        // compute.
        if let Some(text) = vdbench_core::raw_blob_get(kind, key) {
            return Role::Landed(text);
        }
        let admitted = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.cfg.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            return Role::Shed;
        }
        let cost = self.cfg.policy.step_budget(req.cost_units()).max(1);
        if let Err(e) = self.charge(req.client(), cost) {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Role::OverBudget(e);
        }
        let flight = Arc::new(Flight::new());
        flights.insert((kind, key), Arc::clone(&flight));
        Role::Leader(flight)
    }

    /// Charges `steps` against the client's lifetime budget; the denial
    /// carries the detectors' budget accounting.
    fn charge(&self, client: &str, steps: u64) -> Result<(), ScanError> {
        let Some(budget) = self.cfg.client_budget else {
            return Ok(());
        };
        let mut spent = self.spent.lock().expect("spent lock");
        let entry = spent.entry(client.to_string()).or_insert(0);
        let next = entry.saturating_add(steps);
        if next > budget {
            return Err(ScanError::Timeout {
                budget,
                spent: next,
            });
        }
        *entry = next;
        Ok(())
    }

    fn stats_response(&self) -> HttpResponse {
        let snapshot = global().snapshot();
        let latency = self.counters.latency_us.snapshot();
        let stats = StatsResponse {
            server: snapshot.counters_with_prefix("server."),
            cache: snapshot.counters_with_prefix("cache."),
            scan: snapshot.counters_with_prefix("scan."),
            latency: LatencySummary {
                count: latency.count,
                p50_us: latency.quantile_upper_bound(0.50),
                p99_us: latency.quantile_upper_bound(0.99),
            },
        };
        match serde_json::to_string(&stats) {
            Ok(body) => HttpResponse::ok("application/json", body),
            Err(e) => HttpResponse::error(500, &e.to_string()),
        }
    }
}

fn respond(req: &ApiRequest, result: Result<String, String>) -> HttpResponse {
    match result {
        Ok(text) => HttpResponse::ok(req.content_type(), text),
        Err(e) => HttpResponse::error(500, &e),
    }
}

fn budget_message(client: &str, e: &ScanError) -> String {
    match e {
        ScanError::Timeout { budget, spent } => format!(
            "client `{client}` over request budget: {spent} steps spent of {budget} budgeted"
        ),
        other => other.to_string(),
    }
}

/// The `GET /v1/stats` document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// `server.*` counters (accepted, warm_hits, cold_misses, coalesced,
    /// shed, budget_denied, bytes_out).
    pub server: BTreeMap<String, u64>,
    /// `cache.*` counters from the blob store underneath.
    pub cache: BTreeMap<String, u64>,
    /// `scan.*` counters from the streamed/sharded scan engine
    /// (`scan.shards`, `scan.units.rescanned`, `scan.units.replayed`) and
    /// the resilient scanner (`scan.attempts`, …). Only counters that
    /// fired appear.
    pub scan: BTreeMap<String, u64>,
    /// Request latency summary off the log₂ histogram.
    pub latency: LatencySummary,
}

/// Latency summary: bucket upper bounds, so quantiles are conservative.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Median latency upper bound in microseconds (absent before traffic).
    pub p50_us: Option<u64>,
    /// 99th-percentile latency upper bound in microseconds.
    pub p99_us: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            body: String::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            body: body.into(),
            keep_alive: true,
        }
    }

    #[test]
    fn routing_statuses() {
        let svc = Service::new(ServiceConfig::default());
        assert_eq!(svc.handle(&get("/v1/healthz")).status, 200);
        assert_eq!(svc.handle(&get("/v1/stats")).status, 200);
        assert_eq!(svc.handle(&get("/v1/scan")).status, 405);
        assert_eq!(svc.handle(&post("/v1/healthz", "")).status, 405);
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        assert_eq!(svc.handle(&post("/v1/scan", "{}")).status, 400);
    }

    #[test]
    fn budget_ledger_charges_and_denies() {
        let svc = Service::new(ServiceConfig {
            client_budget: Some(10),
            ..ServiceConfig::default()
        });
        assert!(svc.charge("a", 4).is_ok());
        assert!(svc.charge("a", 6).is_ok());
        let err = svc.charge("a", 1).unwrap_err();
        assert!(matches!(
            err,
            ScanError::Timeout {
                budget: 10,
                spent: 11
            }
        ));
        // Ledgers are per client.
        assert!(svc.charge("b", 10).is_ok());
        // Unmetered service never denies.
        let free = Service::new(ServiceConfig::default());
        assert!(free.charge("a", u64::MAX).is_ok());
        assert!(free.charge("a", u64::MAX).is_ok());
    }

    #[test]
    fn scan_requests_surface_streaming_counters_in_stats() {
        let svc = Service::new(ServiceConfig::default());
        let resp = svc.handle(&post(
            "/v1/scan",
            r#"{"tool":"pattern","units":25,"seed":41}"#,
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let stats: StatsResponse =
            serde_json::from_str(&svc.handle(&get("/v1/stats")).body).unwrap();
        assert!(*stats.scan.get("scan.shards").unwrap_or(&0) > 0);
        let rescanned = *stats.scan.get("scan.units.rescanned").unwrap_or(&0);
        let replayed = *stats.scan.get("scan.units.replayed").unwrap_or(&0);
        assert!(rescanned + replayed >= 25, "every unit was accounted");
    }

    #[test]
    fn stats_document_round_trips() {
        let svc = Service::new(ServiceConfig::default());
        // Drive one (invalid) API request so `server.accepted` is non-zero:
        // the stats document only lists counters that have fired.
        assert_eq!(svc.handle(&post("/v1/scan", "{}")).status, 400);
        let resp = svc.handle(&get("/v1/stats"));
        assert_eq!(resp.status, 200);
        let stats: StatsResponse = serde_json::from_str(&resp.body).unwrap();
        assert!(*stats.server.get("server.accepted").unwrap_or(&0) > 0);
        assert!(stats.latency.count > 0, "handled requests were timed");
        assert!(stats.latency.p50_us.is_some());
    }
}
