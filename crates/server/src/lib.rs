//! `vdbench serve` — a concurrent campaign service over the
//! content-addressed blob store.
//!
//! The batch pipeline (`run_all`) and this service share one source of
//! truth: the disk blob store introduced with the persistent cache. The
//! service is a **stateless compute tier** in front of it — a std-TCP
//! HTTP/1.1 subset ([`http`]) that canonicalizes each JSON request into
//! the cache key space ([`request`]), serves warm blobs straight off the
//! disk tier, and schedules cold misses through admission control,
//! per-client step budgets and single-flight deduplication ([`service`]).
//! Kill the process mid-load and restart it: every previously committed
//! response is still served warm, because commitment *is* the atomic
//! blob publication, not server memory.
//!
//! [`loadgen`] is the paired load generator (`vdbench loadgen`): a
//! fixed-seed mixed request pool driven over persistent connections,
//! measuring client-side percentiles and reading the server's tier
//! counters back over `GET /v1/stats` into `BENCH_serve.json`.
//!
//! See DESIGN.md §15, "Service architecture".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod loadgen;
pub mod request;
pub mod server;
pub mod service;

pub use http::{HttpRequest, HttpResponse};
pub use loadgen::LoadgenConfig;
pub use request::{tool_by_name, ApiRequest, ScanSummary, TOOL_NAMES};
pub use server::{start, ServerConfig, ServerHandle};
pub use service::{Service, ServiceConfig, StatsResponse, WARM_COST_STEPS};
pub use vdbench_bench::serve_record::{SeedPassRecord, ServeRecord};
