//! The TCP front of the service: accept loop, connection threads,
//! keep-alive, and orderly shutdown.
//!
//! The listener runs non-blocking so the accept loop can observe the
//! shutdown flag; each accepted connection gets a thread with a short
//! read timeout for the same reason. Connection threads are tracked and
//! joined on shutdown, so [`ServerHandle::shutdown`] returning means no
//! request is still executing.

use std::io::{self, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, write_response, HttpResponse};
use crate::service::{Service, ServiceConfig};

/// How the server is bound and tuned.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Service tuning (admission control, budgets, step-cost policy).
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7071".to_string(),
            service: ServiceConfig::default(),
        }
    }
}

/// Poll interval of the accept loop and the per-connection read timeout:
/// the latency bound on observing a shutdown request.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`]
/// (the CLI, which runs until killed).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections to drain, and
    /// joins all server threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks forever serving traffic (the `vdbench serve` foreground
    /// path); only process death stops the server.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds and starts serving; returns once the listener is accepting.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let service = Arc::new(Service::new(cfg.service));

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &service, &accept_stop);
    });

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    let connections: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let handle = std::thread::spawn(move || serve_connection(stream, &service, &stop));
                let mut conns = connections.lock().expect("connections lock");
                conns.push(handle);
                // Opportunistically reap finished connections so a
                // long-running server doesn't accumulate dead handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for handle in connections.into_inner().expect("connections lock") {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, service: &Service, stop: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // Request/response exchanges are one small segment each way; without
    // nodelay, Nagle + the peer's delayed ACK serializes keep-alive
    // round-trips at ~40ms apiece.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let response = service.handle(&request);
                let keep_alive = request.keep_alive;
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            // Peer closed cleanly between requests.
            Ok(None) => return,
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                let response = HttpResponse::error(400, &e.to_string());
                let _ = write_response(&mut writer, &response, false);
                return;
            }
            // Read timeout: idle keep-alive connection; close once the
            // server is shutting down, otherwise keep listening.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
