//! Typed API requests: parsing, validation, canonicalization and the
//! mapping onto the content-addressed cache key space.
//!
//! Every POST body deserializes into a *wire* struct (all fields
//! optional), is validated and defaulted into a concrete request, and is
//! then **canonicalized**: the concrete request re-serializes to a JSON
//! document with a fixed field order and fully resolved defaults, and
//! that byte string — minus the client identity, which must never change
//! what is computed — is FNV-1a-hashed into the same 64-bit key space the
//! disk store already uses ([`vdbench_core::fnv1a_key`]). Two requests
//! that mean the same work therefore collapse onto one key, one blob and
//! one computation, no matter how their JSON was spelled.
//!
//! Campaign-artifact requests short-circuit the canonical hash: their key
//! is [`vdbench_core::artifact_key`], i.e. *exactly* the key the batch
//! `run_all` files its rendered artifacts under — a warm service response
//! is byte-identical to the batch transcript because it is the same blob.

use serde::{Deserialize, Serialize};
use vdbench_bench::{figures, tables, EXPERIMENT_SEED};
use vdbench_core::{Scenario, ScenarioId};
use vdbench_corpus::{Corpus, CorpusBuilder};
use vdbench_detectors::{Detector, DynamicScanner, PatternScanner, TaintAnalyzer};

/// Largest corpus a scan request may ask for. Scans run through the
/// fixed-memory streamed/sharded engine ([`vdbench_core::streamed_scan`]),
/// so the cap bounds compute time, not memory — million-unit requests are
/// admissible (admission control bounds how many run at once).
pub const MAX_SCAN_UNITS: u64 = 1_000_000;

/// Largest workload a case-study request may ask for. Case studies
/// materialize their corpus and run the full tool roster, so they keep
/// the original tight bound.
pub const MAX_CASE_STUDY_UNITS: u64 = 2_000;

/// Default client identity when a request carries none.
pub const ANON_CLIENT: &str = "anon";

/// Fallback experiment seed for scan and case-study requests (the CLI
/// default, so `vdbench scan`'s output matches a default-seed request).
pub const DEFAULT_SEED: u64 = 2015;

/// The campaign artifacts the service can render, in `run_all` order.
pub fn artifact_names() -> [&'static str; 16] {
    [
        "preamble", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
        "table9", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
    ]
}

/// The renderer behind one campaign artifact — the same functions the
/// batch `run_all` binary fans out over the worker pool.
fn artifact_renderer(name: &str) -> Option<fn() -> String> {
    Some(match name {
        "preamble" => tables::preamble,
        "table1" => tables::table1,
        "table2" => tables::table2,
        "table3" => tables::table3,
        "table4" => tables::table4,
        "table5" => tables::table5,
        "table6" => tables::table6,
        "table7" => tables::table7,
        "table8" => tables::table8,
        "table9" => tables::table9,
        "fig1" => figures::fig1,
        "fig2" => figures::fig2,
        "fig3" => figures::fig3,
        "fig4" => figures::fig4,
        "fig5" => figures::fig5,
        "fig6" => figures::fig6,
        _ => return None,
    })
}

/// The scan tools addressable over the API, with their wire names (the
/// same names the `vdbench scan --tool` flag accepts).
pub const TOOL_NAMES: [&str; 7] = [
    "pattern",
    "pattern-cons",
    "taint",
    "taint-shallow",
    "pentest",
    "pentest-quick",
    "pentest-stateful",
];

/// Instantiates a detection tool from its wire name.
pub fn tool_by_name(name: &str) -> Option<Box<dyn Detector>> {
    Some(match name {
        "pattern" => Box::new(PatternScanner::aggressive()),
        "pattern-cons" => Box::new(PatternScanner::conservative()),
        "taint" => Box::new(TaintAnalyzer::precise()),
        "taint-shallow" => Box::new(TaintAnalyzer::shallow()),
        "pentest" => Box::new(DynamicScanner::thorough()),
        "pentest-quick" => Box::new(DynamicScanner::quick()),
        "pentest-stateful" => Box::new(DynamicScanner::stateful()),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Wire forms (every field optional; unknown fields ignored)
// ---------------------------------------------------------------------------

#[derive(Debug, Deserialize)]
struct CampaignWire {
    artifact: Option<String>,
    client: Option<String>,
}

#[derive(Debug, Deserialize)]
struct ScanWire {
    tool: Option<String>,
    units: Option<u64>,
    density: Option<f64>,
    stored_rate: Option<f64>,
    seed: Option<u64>,
    client: Option<String>,
}

#[derive(Debug, Deserialize)]
struct CaseStudyWire {
    scenario: Option<String>,
    units: Option<u64>,
    seed: Option<u64>,
    client: Option<String>,
}

// ---------------------------------------------------------------------------
// Concrete requests
// ---------------------------------------------------------------------------

/// A validated `POST /v1/campaign` request: one batch artifact by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRequest {
    /// Artifact name (one of [`artifact_names`]).
    pub artifact: String,
    /// Client identity for budget accounting.
    pub client: String,
}

/// A validated `POST /v1/scan` request: one tool over one generated
/// corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequest {
    /// Tool wire name (one of [`TOOL_NAMES`]).
    pub tool: String,
    /// Corpus size in units.
    pub units: u64,
    /// Vulnerability density in `[0, 1]`.
    pub density: f64,
    /// Stored (second-order) vulnerability rate in `[0, 1]`.
    pub stored_rate: f64,
    /// Corpus generator seed.
    pub seed: u64,
    /// Client identity for budget accounting.
    pub client: String,
}

/// A validated `POST /v1/case-study` request: one scenario's standard
/// case study, optionally at an overridden workload size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseStudyRequest {
    /// Scenario label ("S1" … "S4").
    pub scenario: String,
    /// Workload size in units (scenario default when not overridden).
    pub units: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Client identity for budget accounting.
    pub client: String,
}

/// One validated API request, ready to key, budget and compute.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// `POST /v1/campaign`.
    Campaign(CampaignRequest),
    /// `POST /v1/scan`.
    Scan(ScanRequest),
    /// `POST /v1/case-study`.
    CaseStudy(CaseStudyRequest),
}

fn normalize_client(client: Option<String>) -> Result<String, String> {
    let client = client.unwrap_or_else(|| ANON_CLIENT.to_string());
    if client.is_empty() || client.len() > 64 {
        return Err("client must be 1..=64 characters".into());
    }
    Ok(client)
}

fn check_unit_range(what: &str, value: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(format!("{what} must be in [0, 1], got {value}"))
    }
}

/// Looks a standard scenario up by its case-insensitive label.
fn scenario_by_label(label: &str) -> Option<Scenario> {
    ScenarioId::all()
        .iter()
        .find(|id| id.label().eq_ignore_ascii_case(label))
        .map(|id| Scenario::standard(*id))
}

impl ApiRequest {
    /// Parses and validates the body POSTed to `path`. An empty body is
    /// treated as `{}` so defaultable endpoints stay curl-friendly.
    pub fn parse(path: &str, body: &str) -> Result<ApiRequest, String> {
        let body = if body.trim().is_empty() { "{}" } else { body };
        match path {
            "/v1/campaign" => {
                let wire: CampaignWire = serde_json::from_str(body).map_err(|e| e.to_string())?;
                let artifact = wire.artifact.ok_or("campaign request needs \"artifact\"")?;
                if artifact_renderer(&artifact).is_none() {
                    return Err(format!(
                        "unknown artifact `{artifact}` (one of: {})",
                        artifact_names().join(", ")
                    ));
                }
                Ok(ApiRequest::Campaign(CampaignRequest {
                    artifact,
                    client: normalize_client(wire.client)?,
                }))
            }
            "/v1/scan" => {
                let wire: ScanWire = serde_json::from_str(body).map_err(|e| e.to_string())?;
                let tool = wire.tool.ok_or("scan request needs \"tool\"")?;
                if tool_by_name(&tool).is_none() {
                    return Err(format!(
                        "unknown tool `{tool}` (one of: {})",
                        TOOL_NAMES.join(", ")
                    ));
                }
                let units = wire.units.unwrap_or(200);
                if units == 0 || units > MAX_SCAN_UNITS {
                    return Err(format!(
                        "units must be in 1..={MAX_SCAN_UNITS}, got {units}"
                    ));
                }
                let density = wire.density.unwrap_or(0.3);
                check_unit_range("density", density)?;
                let stored_rate = wire.stored_rate.unwrap_or(0.12);
                check_unit_range("stored_rate", stored_rate)?;
                Ok(ApiRequest::Scan(ScanRequest {
                    tool,
                    units,
                    density,
                    stored_rate,
                    seed: wire.seed.unwrap_or(DEFAULT_SEED),
                    client: normalize_client(wire.client)?,
                }))
            }
            "/v1/case-study" => {
                let wire: CaseStudyWire = serde_json::from_str(body).map_err(|e| e.to_string())?;
                let label = wire
                    .scenario
                    .ok_or("case-study request needs \"scenario\"")?;
                let scenario = scenario_by_label(&label)
                    .ok_or_else(|| format!("unknown scenario `{label}` (S1, S2, S3 or S4)"))?;
                let units = wire.units.unwrap_or(scenario.workload_units as u64);
                if units == 0 || units > MAX_CASE_STUDY_UNITS {
                    return Err(format!(
                        "units must be in 1..={MAX_CASE_STUDY_UNITS}, got {units}"
                    ));
                }
                Ok(ApiRequest::CaseStudy(CaseStudyRequest {
                    scenario: scenario.id.label().to_string(),
                    units,
                    seed: wire.seed.unwrap_or(DEFAULT_SEED),
                    client: normalize_client(wire.client)?,
                }))
            }
            other => Err(format!("no such endpoint {other}")),
        }
    }

    /// The client identity the request bills against.
    #[must_use]
    pub fn client(&self) -> &str {
        match self {
            ApiRequest::Campaign(r) => &r.client,
            ApiRequest::Scan(r) => &r.client,
            ApiRequest::CaseStudy(r) => &r.client,
        }
    }

    /// The canonical byte string of the request: endpoint tag plus every
    /// field in fixed order, all defaults resolved, floats by their exact
    /// bit pattern, and the client excluded — identity must never shard
    /// the key space. This is what the cache key hashes (campaign
    /// artifacts instead share the batch `"art"` keys — see
    /// [`ApiRequest::cache_key`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            ApiRequest::Campaign(r) => {
                format!("campaign\u{1f}{}\u{1f}{EXPERIMENT_SEED}", r.artifact)
            }
            ApiRequest::Scan(r) => format!(
                "scan\u{1f}{}\u{1f}{}\u{1f}{:016x}\u{1f}{:016x}\u{1f}{}",
                r.tool,
                r.units,
                r.density.to_bits(),
                r.stored_rate.to_bits(),
                r.seed,
            ),
            ApiRequest::CaseStudy(r) => format!(
                "case-study\u{1f}{}\u{1f}{}\u{1f}{}",
                r.scenario, r.units, r.seed
            ),
        }
    }

    /// The blob-store kind the response is filed under.
    #[must_use]
    pub fn cache_kind(&self) -> &'static str {
        match self {
            // The batch artifact tier: same kind, same key, same bytes as
            // `run_all`.
            ApiRequest::Campaign(_) => "art",
            ApiRequest::Scan(_) => "srv-scan",
            ApiRequest::CaseStudy(_) => "srv-case",
        }
    }

    /// The 64-bit key the response blob lives under.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        match self {
            ApiRequest::Campaign(r) => vdbench_core::artifact_key(&r.artifact, EXPERIMENT_SEED),
            _ => vdbench_core::fnv1a_key(self.canonical().as_bytes()),
        }
    }

    /// Workload size in corpus units — the input to the per-client budget
    /// charge (the detectors' step-budget model prices a scan attempt at
    /// `steps_per_unit × units`).
    #[must_use]
    pub fn cost_units(&self) -> usize {
        match self {
            // Artifacts run the standard assessment workload.
            ApiRequest::Campaign(_) => vdbench_bench::experiment_config().workload_size as usize,
            ApiRequest::Scan(r) => r.units as usize,
            ApiRequest::CaseStudy(r) => r.units as usize,
        }
    }

    /// Content type of a successful response.
    #[must_use]
    pub fn content_type(&self) -> &'static str {
        match self {
            ApiRequest::Scan(_) => "application/json",
            _ => "text/plain; charset=utf-8",
        }
    }

    /// Whether the service must publish the computed response itself
    /// (campaign artifacts are published by [`vdbench_core::cached_artifact`]
    /// inside the compute).
    #[must_use]
    pub fn needs_publish(&self) -> bool {
        !matches!(self, ApiRequest::Campaign(_))
    }

    /// Computes the response body (the cold path; runs on the rayon
    /// pool). Pure: same request, same bytes, at any thread count.
    pub fn compute(&self) -> Result<String, String> {
        match self {
            ApiRequest::Campaign(r) => {
                let render = artifact_renderer(&r.artifact).ok_or("artifact vanished")?;
                Ok(vdbench_core::cached_artifact(
                    &r.artifact,
                    EXPERIMENT_SEED,
                    render,
                ))
            }
            ApiRequest::Scan(r) => {
                let tool = tool_by_name(&r.tool).ok_or("tool vanished")?;
                // The streamed/sharded engine: fixed-memory at any corpus
                // size, and repeat scans of unchanged units replay their
                // manifest entries instead of recomputing.
                let report = vdbench_core::streamed_scan(
                    tool.as_ref(),
                    &r.corpus_builder(),
                    vdbench_core::DEFAULT_SHARD_UNITS,
                );
                let summary = ScanSummary::from_report(r, &report);
                serde_json::to_string(&summary).map_err(|e| e.to_string())
            }
            ApiRequest::CaseStudy(r) => {
                let mut scenario = scenario_by_label(&r.scenario).ok_or("scenario vanished")?;
                scenario.workload_units = r.units as usize;
                let report = vdbench_core::cached_case_study(&scenario, r.seed)
                    .map_err(|e| e.to_string())?;
                Ok(report
                    .to_table(&format!("{} — {}", scenario.id, scenario.name))
                    .render_ascii())
            }
        }
    }
}

impl ScanRequest {
    /// The generator configuration the request describes.
    #[must_use]
    pub fn corpus_builder(&self) -> CorpusBuilder {
        CorpusBuilder::new()
            .units(self.units as usize)
            .vulnerability_density(self.density)
            .stored_rate(self.stored_rate)
            .seed(self.seed)
            .clone()
    }

    /// The corpus the request describes, materialized.
    #[must_use]
    pub fn build_corpus(&self) -> Corpus {
        self.corpus_builder().build()
    }
}

/// The JSON document a `/v1/scan` request answers with: the request
/// echo, the confusion matrix, and the headline rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanSummary {
    /// Tool wire name.
    pub tool: String,
    /// Corpus size in units.
    pub units: u64,
    /// Vulnerability sites scored.
    pub sites: u64,
    /// Corpus generator seed.
    pub seed: u64,
    /// True positives.
    pub true_positives: u64,
    /// False positives.
    pub false_positives: u64,
    /// False negatives.
    pub false_negatives: u64,
    /// True negatives.
    pub true_negatives: u64,
    /// Recall (`NaN` serializes as `null`).
    pub tpr: f64,
    /// Fall-out.
    pub fpr: f64,
    /// Precision.
    pub ppv: f64,
}

impl ScanSummary {
    fn from_report(request: &ScanRequest, report: &vdbench_core::StreamedScanReport) -> Self {
        let cm = &report.confusion;
        ScanSummary {
            tool: request.tool.clone(),
            units: request.units,
            sites: report.sites,
            seed: request.seed,
            true_positives: cm.tp,
            false_positives: cm.fp,
            false_negatives: cm.fn_,
            true_negatives: cm.tn,
            tpr: cm.tpr(),
            fpr: cm.fpr(),
            ppv: cm.ppv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spelling_variants_collapse_onto_one_key() {
        let a = ApiRequest::parse("/v1/scan", r#"{"tool":"taint"}"#).unwrap();
        let b = ApiRequest::parse(
            "/v1/scan",
            r#"{ "seed": 2015, "client": "alice", "tool": "taint", "units": 200 }"#,
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical(), "defaults resolve identically");
        assert_eq!(a.cache_key(), b.cache_key());
        // … but the client identity still reaches the budget ledger.
        assert_eq!(a.client(), ANON_CLIENT);
        assert_eq!(b.client(), "alice");
    }

    #[test]
    fn different_work_gets_different_keys() {
        let base = ApiRequest::parse("/v1/scan", r#"{"tool":"taint"}"#).unwrap();
        for other in [
            r#"{"tool":"pattern"}"#,
            r#"{"tool":"taint","units":201}"#,
            r#"{"tool":"taint","density":0.31}"#,
            r#"{"tool":"taint","seed":2016}"#,
        ] {
            let req = ApiRequest::parse("/v1/scan", other).unwrap();
            assert_ne!(base.cache_key(), req.cache_key(), "{other}");
        }
        let case = ApiRequest::parse("/v1/case-study", r#"{"scenario":"S1"}"#).unwrap();
        assert_ne!(base.cache_key(), case.cache_key());
    }

    #[test]
    fn campaign_requests_share_the_batch_artifact_keys() {
        let req = ApiRequest::parse("/v1/campaign", r#"{"artifact":"table2"}"#).unwrap();
        assert_eq!(req.cache_kind(), "art");
        assert_eq!(
            req.cache_key(),
            vdbench_core::artifact_key("table2", EXPERIMENT_SEED)
        );
        assert!(!req.needs_publish(), "cached_artifact publishes itself");
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        for (path, body, needle) in [
            ("/v1/campaign", "{}", "needs \"artifact\""),
            (
                "/v1/campaign",
                r#"{"artifact":"table99"}"#,
                "unknown artifact",
            ),
            ("/v1/scan", "{}", "needs \"tool\""),
            ("/v1/scan", r#"{"tool":"nope"}"#, "unknown tool"),
            ("/v1/scan", r#"{"tool":"taint","units":0}"#, "units must be"),
            (
                "/v1/scan",
                r#"{"tool":"taint","density":1.5}"#,
                "density must be",
            ),
            ("/v1/case-study", r#"{"scenario":"S9"}"#, "unknown scenario"),
            ("/v1/nope", "{}", "no such endpoint"),
            ("/v1/scan", "not json", "json error"),
        ] {
            let err = ApiRequest::parse(path, body).unwrap_err();
            assert!(err.contains(needle), "{path} {body}: {err}");
        }
    }

    #[test]
    fn case_study_defaults_to_the_scenario_workload() {
        let req = ApiRequest::parse("/v1/case-study", r#"{"scenario":"s3"}"#).unwrap();
        let ApiRequest::CaseStudy(ref r) = req else {
            panic!("wrong variant")
        };
        assert_eq!(r.scenario, "S3", "label is canonicalized to upper case");
        assert_eq!(
            r.units,
            Scenario::standard(ScenarioId::S3Procurement).workload_units as u64
        );
        assert_eq!(req.cost_units(), r.units as usize);
    }

    #[test]
    fn scan_caps_admit_streaming_scale_but_case_studies_stay_bounded() {
        let ok = ApiRequest::parse("/v1/scan", r#"{"tool":"pattern","units":1000000}"#);
        assert!(ok.is_ok(), "million-unit scans stream in fixed memory");
        let too_big =
            ApiRequest::parse("/v1/scan", r#"{"tool":"pattern","units":1000001}"#).unwrap_err();
        assert!(too_big.contains("units must be"), "{too_big}");
        let case =
            ApiRequest::parse("/v1/case-study", r#"{"scenario":"S1","units":2001}"#).unwrap_err();
        assert!(case.contains("units must be in 1..=2000"), "{case}");
    }

    #[test]
    fn scan_summary_matches_a_direct_scan() {
        let req = ApiRequest::parse("/v1/scan", r#"{"tool":"taint","units":30,"seed":7}"#).unwrap();
        let body = req.compute().unwrap();
        let summary: ScanSummary = serde_json::from_str(&body).unwrap();
        let ApiRequest::Scan(ref r) = req else {
            panic!("wrong variant")
        };
        let corpus = r.build_corpus();
        let tool = tool_by_name("taint").unwrap();
        let direct = vdbench_detectors::score_detector(tool.as_ref(), &corpus);
        let cm = direct.confusion();
        assert_eq!(summary.true_positives, cm.tp);
        assert_eq!(summary.false_positives, cm.fp);
        assert_eq!(summary.false_negatives, cm.fn_);
        assert_eq!(summary.true_negatives, cm.tn);
        assert_eq!(summary.sites, corpus.site_count() as u64);
    }
}
