//! The load generator behind `vdbench loadgen`: drives a running
//! `vdbench serve` instance with a fixed-seed mixed warm/cold request
//! pool and writes the measured record to `BENCH_serve.json`.
//!
//! Two phases:
//!
//! 1. **Seed pass** — every connection walks the *whole* pool in the
//!    same order. The first arrivals at each key are a deliberate
//!    thundering herd: one connection computes, the rest coalesce onto
//!    its flight, and by the end of the pass every pool key is committed
//!    to the blob store.
//! 2. **Measured pass** — for the configured duration each connection
//!    hammers pool keys picked by its own splitmix64 stream, recording
//!    client-side latency per request. With the pool committed, this is
//!    the warm path: the measured throughput and percentiles are the
//!    service's steady-state numbers, and the server-side counter deltas
//!    give the warm-hit ratio.
//!
//! Everything is seeded, so two runs against the same server issue the
//! same requests in the same per-thread order.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use vdbench_bench::serve_record::{SeedPassRecord, ServeRecord};

use crate::request::{artifact_names, TOOL_NAMES};
use crate::service::StatsResponse;

/// Load-generator tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address to drive.
    pub addr: String,
    /// Measured-phase duration in seconds.
    pub duration_secs: f64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Pool-shuffling seed.
    pub seed: u64,
    /// Distinct scan requests in the pool.
    pub pool_scans: usize,
    /// Whether campaign artifacts join the pool (cold-seeding them runs
    /// the full batch renderers — substantial; off by default so a smoke
    /// run stays fast, on when warming a cache `run_all` will share).
    pub artifacts: bool,
    /// Where to write the JSON record (`None` = don't write).
    pub out: Option<String>,
    /// Perfwatch ledger directory: when set, the run also appends a
    /// `serve` entry there (see DESIGN.md §17). `None` = capture off.
    pub perf_history: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7071".to_string(),
            duration_secs: 3.0,
            connections: 8,
            seed: 2015,
            pool_scans: 64,
            artifacts: false,
            out: Some("BENCH_serve.json".to_string()),
            perf_history: vdbench_perfwatch::env_dir().map(|p| p.to_string_lossy().into_owned()),
        }
    }
}

/// One poolable request.
#[derive(Debug, Clone)]
struct PoolEntry {
    path: &'static str,
    body: String,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the fixed-seed request pool: scans across every tool at varied
/// small workloads, the four standard case studies, and (optionally) the
/// sixteen campaign artifacts.
fn build_pool(cfg: &LoadgenConfig) -> Vec<PoolEntry> {
    let mut pool = Vec::new();
    let mut rng = cfg.seed;
    for i in 0..cfg.pool_scans {
        let r = splitmix64(&mut rng);
        let tool = TOOL_NAMES[(r % TOOL_NAMES.len() as u64) as usize];
        let units = 10 + (r >> 8) % 21; // 10..=30: cheap cold computes
        let density = 0.05 * (1.0 + ((r >> 16) % 10) as f64); // 0.05..=0.5
        let seed = cfg.seed.wrapping_add(i as u64);
        pool.push(PoolEntry {
            path: "/v1/scan",
            body: format!(
                "{{\"tool\":\"{tool}\",\"units\":{units},\"density\":{density},\"seed\":{seed}}}"
            ),
        });
    }
    for (i, scenario) in ["S1", "S2", "S3", "S4"].iter().enumerate() {
        let units = 30 + 10 * i;
        pool.push(PoolEntry {
            path: "/v1/case-study",
            body: format!(
                "{{\"scenario\":\"{scenario}\",\"units\":{units},\"seed\":{}}}",
                cfg.seed
            ),
        });
    }
    if cfg.artifacts {
        for name in artifact_names() {
            pool.push(PoolEntry {
                path: "/v1/campaign",
                body: format!("{{\"artifact\":\"{name}\"}}"),
            });
        }
    }
    pool
}

/// A persistent keep-alive connection to the server.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    host: String,
}

impl Client {
    fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            host: addr.to_string(),
        })
    }

    /// Issues one request; returns `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len(),
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
        Ok((status, body))
    }
}

fn fetch_stats(addr: &str) -> io::Result<StatsResponse> {
    let mut client = Client::connect(addr)?;
    let (status, body) = client.request("GET", "/v1/stats", "")?;
    if status != 200 {
        return Err(io::Error::other(format!("stats returned {status}")));
    }
    serde_json::from_str(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn server_counter(stats: &StatsResponse, name: &str) -> u64 {
    stats.server.get(name).copied().unwrap_or(0)
}

/// Per-thread tally of one phase.
#[derive(Default)]
struct Tally {
    requests: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// Runs the load generator against a live server and returns the record
/// (also written to `cfg.out` when set).
pub fn run(cfg: &LoadgenConfig) -> io::Result<ServeRecord> {
    let pool = build_pool(cfg);
    let connections = cfg.connections.max(1);

    // Phase 1 — seed: every connection walks the whole pool in the same
    // order, so cold keys see a deliberate thundering herd.
    let before_seed = fetch_stats(&cfg.addr)?;
    let seed_start = Instant::now();
    let seed_tallies: Vec<io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let pool = &pool;
                let addr = cfg.addr.as_str();
                scope.spawn(move || -> io::Result<Tally> {
                    let mut client = Client::connect(addr)?;
                    let mut tally = Tally::default();
                    for entry in pool {
                        let (status, _) = client.request("POST", entry.path, &entry.body)?;
                        tally.requests += 1;
                        if status != 200 {
                            tally.errors += 1;
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let seed_elapsed = seed_start.elapsed();
    let mut seed_pass = SeedPassRecord {
        duration_secs: seed_elapsed.as_secs_f64(),
        ..SeedPassRecord::default()
    };
    for tally in seed_tallies {
        let tally = tally?;
        seed_pass.requests += tally.requests;
        seed_pass.errors += tally.errors;
    }
    let after_seed = fetch_stats(&cfg.addr)?;
    seed_pass.cold_misses = server_counter(&after_seed, "server.cold_misses")
        .saturating_sub(server_counter(&before_seed, "server.cold_misses"));
    seed_pass.coalesced = server_counter(&after_seed, "server.coalesced")
        .saturating_sub(server_counter(&before_seed, "server.coalesced"));

    // Phase 2 — measured: duration-bounded random hammering of the now
    // warm pool, with client-side latency sampling.
    let duration = Duration::from_secs_f64(cfg.duration_secs.max(0.1));
    let stop = AtomicBool::new(false);
    let measure_start = Instant::now();
    let tallies: Vec<io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|thread_index| {
                let pool = &pool;
                let addr = cfg.addr.as_str();
                let stop = &stop;
                let mut rng = cfg.seed ^ (0xC0FF_EE00 + thread_index as u64);
                scope.spawn(move || -> io::Result<Tally> {
                    let mut client = Client::connect(addr)?;
                    let mut tally = Tally::default();
                    while !stop.load(Ordering::Relaxed) {
                        let entry = &pool[(splitmix64(&mut rng) % pool.len() as u64) as usize];
                        let sent = Instant::now();
                        let (status, _) = client.request("POST", entry.path, &entry.body)?;
                        let micros = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                        tally.latencies_us.push(micros);
                        tally.requests += 1;
                        if status != 200 {
                            tally.errors += 1;
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        // The scope's main thread is the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let measured_elapsed = measure_start.elapsed();
    let after_measure = fetch_stats(&cfg.addr)?;

    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for tally in tallies {
        let tally = tally?;
        requests += tally.requests;
        errors += tally.errors;
        latencies.extend(tally.latencies_us);
    }
    latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).max(1);
        latencies[rank.min(latencies.len()) - 1]
    };
    let accepted_delta = server_counter(&after_measure, "server.accepted")
        .saturating_sub(server_counter(&after_seed, "server.accepted"));
    let warm_delta = server_counter(&after_measure, "server.warm_hits")
        .saturating_sub(server_counter(&after_seed, "server.warm_hits"));
    let elapsed_secs = measured_elapsed.as_secs_f64();

    let record = ServeRecord {
        addr: cfg.addr.clone(),
        seed: cfg.seed,
        connections: connections as u64,
        pool_size: pool.len() as u64,
        seed_pass,
        duration_secs: elapsed_secs,
        requests,
        errors,
        throughput_rps: if elapsed_secs > 0.0 {
            requests as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        warm_hit_ratio: if accepted_delta > 0 {
            warm_delta as f64 / accepted_delta as f64
        } else {
            0.0
        },
        server: after_measure.server.clone(),
    };

    if let Some(path) = &cfg.out {
        let json = serde_json::to_string_pretty(&record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json + "\n")?;
    }
    if let Some(dir) = &cfg.perf_history {
        append_serve_history(
            std::path::Path::new(dir),
            &record,
            &latencies,
            warm_delta,
            accepted_delta,
        );
    }
    Ok(record)
}

/// Appends the measured pass to the perfwatch ledger. The gated series is
/// the warm-hit proportion against its 0.9 floor — checked with a Wilson
/// interval on the server's own counter deltas, replacing the old
/// `warm ratio > 0.9` python assertion in CI. Latency and throughput are
/// advisory (absolute numbers vary with host). Latencies are thinned to a
/// deterministic stride subsample of the sorted vector (≤ 256 points) so
/// ledger lines stay small while preserving the distribution's shape.
fn append_serve_history(
    dir: &std::path::Path,
    record: &ServeRecord,
    latencies_us: &[u64],
    warm_delta: u64,
    accepted_delta: u64,
) {
    use vdbench_perfwatch::Series;
    let mut series = Vec::new();
    if accepted_delta > 0 {
        series.push(Series::proportion(
            "warm_hit_ratio",
            "higher",
            true,
            warm_delta.min(accepted_delta),
            accepted_delta,
            0.9,
        ));
    }
    series.push(Series::delta(
        "throughput_rps",
        "req/s",
        "higher",
        false,
        vec![record.throughput_rps],
    ));
    series.push(Series::delta(
        "p50_us",
        "µs",
        "lower",
        false,
        vec![record.p50_us as f64],
    ));
    series.push(Series::delta(
        "p99_us",
        "µs",
        "lower",
        false,
        vec![record.p99_us as f64],
    ));
    if !latencies_us.is_empty() {
        let stride = (latencies_us.len() / 256).max(1);
        let thinned: Vec<f64> = latencies_us
            .iter()
            .step_by(stride)
            .map(|&us| us as f64)
            .collect();
        series.push(Series::delta("latency_us", "µs", "lower", false, thinned));
    }
    let entry = vdbench_perfwatch::RunEntry {
        source: "serve".to_string(),
        unix_ms: vdbench_perfwatch::now_ms(),
        label: "loadgen".to_string(),
        provenance: String::new(),
        baseline: false,
        series,
    };
    match vdbench_perfwatch::append_entry(dir, &entry) {
        Ok(path) => eprintln!("appended perf history to {}", path.display()),
        Err(e) => eprintln!("perf history append failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_seed_deterministic_and_mixed() {
        let cfg = LoadgenConfig {
            artifacts: true,
            ..LoadgenConfig::default()
        };
        let a = build_pool(&cfg);
        let b = build_pool(&cfg);
        assert_eq!(a.len(), cfg.pool_scans + 4 + 16);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.body, y.body, "same seed, same pool");
        }
        // Every endpoint is represented and every body parses.
        for entry in &a {
            assert!(
                crate::request::ApiRequest::parse(entry.path, &entry.body).is_ok(),
                "{} {}",
                entry.path,
                entry.body
            );
        }
        let different = build_pool(&LoadgenConfig {
            seed: 2016,
            artifacts: true,
            ..LoadgenConfig::default()
        });
        assert_ne!(a[0].body, different[0].body, "seed changes the pool");
    }

    #[test]
    fn pool_scan_workloads_stay_cheap() {
        let pool = build_pool(&LoadgenConfig::default());
        for entry in pool.iter().filter(|e| e.path == "/v1/scan") {
            let req = crate::request::ApiRequest::parse(entry.path, &entry.body).unwrap();
            assert!(req.cost_units() <= 30, "{}", entry.body);
        }
    }
}
