//! Scoring detector output against corpus ground truth.

use crate::detector::Detector;
use crate::finding::Finding;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vdbench_corpus::{Corpus, FlowShape, SiteId, VulnClass};
use vdbench_metrics::ConfusionMatrix;

/// The scored outcome at one benchmark case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteOutcome {
    /// The case.
    pub site: SiteId,
    /// Whether the tool reported it.
    pub reported: bool,
    /// The vulnerability class the tool claimed, when it reported one.
    pub claimed_class: Option<VulnClass>,
    /// Ground truth.
    pub vulnerable: bool,
    /// The case's class.
    pub class: VulnClass,
    /// The case's construction shape.
    pub shape: FlowShape,
}

impl SiteOutcome {
    /// Whether the tool got this case right.
    pub fn correct(&self) -> bool {
        self.reported == self.vulnerable
    }
}

/// A detector's complete scored run over a corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    tool: String,
    records: Vec<SiteOutcome>,
}

impl DetectionOutcome {
    /// The tool's name.
    pub fn tool(&self) -> &str {
        &self.tool
    }

    /// Per-site outcomes in corpus order.
    pub fn records(&self) -> &[SiteOutcome] {
        &self.records
    }

    /// Consumes the outcome, yielding its records without cloning — the
    /// manifest-building path of the streamed scanner stores every record
    /// of every shard, so per-record clones would dominate its allocation
    /// profile.
    pub fn into_records(self) -> Vec<SiteOutcome> {
        self.records
    }

    /// Pooled confusion matrix over all cases.
    pub fn confusion(&self) -> ConfusionMatrix {
        ConfusionMatrix::from_outcomes(self.records.iter().map(|r| (r.reported, r.vulnerable)))
    }

    /// Confusion matrix restricted to one vulnerability class.
    pub fn confusion_for_class(&self, class: VulnClass) -> ConfusionMatrix {
        ConfusionMatrix::from_outcomes(
            self.records
                .iter()
                .filter(|r| r.class == class)
                .map(|r| (r.reported, r.vulnerable)),
        )
    }

    /// Confusion matrix restricted to one flow shape.
    pub fn confusion_for_shape(&self, shape: FlowShape) -> ConfusionMatrix {
        ConfusionMatrix::from_outcomes(
            self.records
                .iter()
                .filter(|r| r.shape == shape)
                .map(|r| (r.reported, r.vulnerable)),
        )
    }

    /// Confusion matrix over a subset of cases (by index) — the resampling
    /// hook used by bootstrap analyses.
    pub fn confusion_for_indices(&self, indices: &[usize]) -> ConfusionMatrix {
        ConfusionMatrix::from_outcomes(
            indices
                .iter()
                .filter_map(|&i| self.records.get(i))
                .map(|r| (r.reported, r.vulnerable)),
        )
    }

    /// Macro-averaged metric value: the metric is computed per
    /// vulnerability class and the defined values averaged with equal
    /// class weight. Contrast with the *micro* average
    /// ([`DetectionOutcome::confusion`] pools all cases first), which
    /// lets populous classes dominate — a classic benchmarking pitfall
    /// when class mixes differ between workloads.
    ///
    /// Returns `None` when the metric is undefined on every class.
    pub fn macro_average(&self, metric: &dyn vdbench_metrics::metric::Metric) -> Option<f64> {
        let classes: BTreeSet<VulnClass> = self.records.iter().map(|r| r.class).collect();
        let values: Vec<f64> = classes
            .into_iter()
            .filter_map(|c| metric.compute(&self.confusion_for_class(c)).ok())
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Diagnosis accuracy: among true positives where the tool claimed a
    /// class, the fraction whose claim matches the ground-truth class.
    /// *Detecting* a problem and *identifying* it are different abilities —
    /// a scanner that probes with an SQL payload can legitimately trip a
    /// command-injection sink and misfile the finding.
    ///
    /// Returns `None` when no true positive carried a class claim.
    pub fn diagnosis_accuracy(&self) -> Option<f64> {
        let claims: Vec<&SiteOutcome> = self
            .records
            .iter()
            .filter(|r| r.reported && r.vulnerable && r.claimed_class.is_some())
            .collect();
        if claims.is_empty() {
            return None;
        }
        let correct = claims
            .iter()
            .filter(|r| r.claimed_class == Some(r.class))
            .count();
        Some(correct as f64 / claims.len() as f64)
    }

    /// McNemar discordance counts against another outcome on the same
    /// corpus: `(only_self_correct, only_other_correct)`.
    ///
    /// # Panics
    ///
    /// Panics if the outcomes cover different cases.
    pub fn discordance(&self, other: &DetectionOutcome) -> (u64, u64) {
        assert_eq!(
            self.records.len(),
            other.records.len(),
            "outcomes cover different corpora"
        );
        let mut b = 0;
        let mut c = 0;
        for (a, o) in self.records.iter().zip(&other.records) {
            assert_eq!(a.site, o.site, "outcome order mismatch");
            match (a.correct(), o.correct()) {
                (true, false) => b += 1,
                (false, true) => c += 1,
                _ => {}
            }
        }
        (b, c)
    }
}

impl DetectionOutcome {
    /// The outcome of a scan that never produced results (a failed
    /// resilient scan): no records at all — *not* "nothing reported",
    /// which would silently count every vulnerable case as a miss.
    /// Metrics computed on it are undefined (`NaN`), the honest value
    /// for an unavailable tool.
    #[must_use]
    pub fn empty(tool: impl Into<String>) -> Self {
        DetectionOutcome {
            tool: tool.into(),
            records: Vec::new(),
        }
    }

    /// Appends another shard's records. Scoring one streamed corpus shard
    /// by shard and merging in shard order yields record-for-record the
    /// outcome of scoring the whole corpus at once (records follow site
    /// order, and shards are contiguous site windows), which is what
    /// makes per-shard confusion partials merge associatively into the
    /// monolithic score.
    ///
    /// # Panics
    ///
    /// Panics if the outcomes belong to different tools.
    pub fn merge(&mut self, other: DetectionOutcome) {
        assert_eq!(self.tool, other.tool, "cannot merge outcomes across tools");
        self.records.extend(other.records);
    }
}

/// Runs a detector over a corpus and scores every case.
///
/// A case counts as *reported* when the tool emitted at least one finding
/// at its site (class claims are not required to match — the paper's
/// benchmarks score detection, not classification).
pub fn score_detector(tool: &dyn Detector, corpus: &Corpus) -> DetectionOutcome {
    let findings = tool.analyze_corpus(corpus);
    score_findings(&tool.name(), corpus, &findings)
}

/// Scores an already-collected finding list against a corpus's ground
/// truth — the shared back half of [`score_detector`] and the resilient
/// engine ([`crate::resilient::score_detector_resilient`]), which must
/// score whichever attempt succeeded.
pub fn score_findings(tool: &str, corpus: &Corpus, findings: &[Finding]) -> DetectionOutcome {
    let reported: BTreeSet<SiteId> = findings.iter().map(|f| f.site).collect();
    // First class claim per site (tools may emit several findings).
    let mut claims: std::collections::BTreeMap<SiteId, VulnClass> =
        std::collections::BTreeMap::new();
    for f in findings {
        if let Some(class) = f.class {
            claims.entry(f.site).or_insert(class);
        }
    }
    let records = corpus
        .sites()
        .map(|info| SiteOutcome {
            site: info.site,
            reported: reported.contains(&info.site),
            claimed_class: claims.get(&info.site).copied(),
            vulnerable: info.vulnerable,
            class: info.class,
            shape: info.shape,
        })
        .collect();
    DetectionOutcome {
        tool: tool.to_string(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Finding;
    use vdbench_corpus::{CorpusBuilder, Unit};

    /// Reports every site — the "chatty" extreme.
    #[derive(Debug)]
    struct ReportAll;

    impl Detector for ReportAll {
        fn name(&self) -> String {
            "report-all".into()
        }
        fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
            unit.sinks()
                .into_iter()
                .map(|(_, _, site)| Finding::new(site, None, 1.0, "always"))
                .collect()
        }
    }

    /// Reports nothing — the "silent" extreme.
    #[derive(Debug)]
    struct Silent;

    impl Detector for Silent {
        fn name(&self) -> String {
            "silent".into()
        }
        fn analyze(&self, _corpus: &Corpus, _unit: &Unit) -> Vec<Finding> {
            Vec::new()
        }
    }

    #[test]
    fn extremes_have_expected_confusions() {
        let corpus = CorpusBuilder::new()
            .units(100)
            .vulnerability_density(0.3)
            .seed(1)
            .build();
        let truth_pos = corpus.stats().vulnerable_sites as u64;
        let total = corpus.site_count() as u64;

        let all = score_detector(&ReportAll, &corpus);
        let cm = all.confusion();
        assert_eq!(cm.tp, truth_pos);
        assert_eq!(cm.fp, total - truth_pos);
        assert_eq!(cm.fn_, 0);
        assert_eq!(cm.tn, 0);
        assert_eq!(all.tool(), "report-all");

        let silent = score_detector(&Silent, &corpus);
        let cm = silent.confusion();
        assert_eq!(cm.tp, 0);
        assert_eq!(cm.fn_, truth_pos);
        assert_eq!(cm.tn, total - truth_pos);
    }

    #[test]
    fn class_and_shape_restriction_partition_totals() {
        let corpus = CorpusBuilder::new().units(150).seed(2).build();
        let outcome = score_detector(&ReportAll, &corpus);
        let total: u64 = VulnClass::all()
            .iter()
            .map(|&c| outcome.confusion_for_class(c).total())
            .sum();
        assert_eq!(total, corpus.site_count() as u64);
        let shape_total: u64 = outcome
            .records()
            .iter()
            .map(|r| r.shape)
            .collect::<BTreeSet<_>>()
            .iter()
            .map(|&s| outcome.confusion_for_shape(s).total())
            .sum();
        assert_eq!(shape_total, corpus.site_count() as u64);
    }

    #[test]
    fn index_subsetting() {
        let corpus = CorpusBuilder::new().units(50).seed(3).build();
        let outcome = score_detector(&ReportAll, &corpus);
        let half: Vec<usize> = (0..25).collect();
        assert_eq!(outcome.confusion_for_indices(&half).total(), 25);
        // Out-of-range indices are skipped, not panicking.
        assert_eq!(outcome.confusion_for_indices(&[999]).total(), 0);
    }

    #[test]
    fn diagnosis_accuracy_distinguishes_detection_from_identification() {
        use crate::{DynamicScanner, PatternScanner, TaintAnalyzer};
        let corpus = CorpusBuilder::new()
            .units(300)
            .vulnerability_density(0.5)
            .stored_rate(0.0)
            .seed(21)
            .build();
        // Static tools infer the class from the sink kind: diagnosis is
        // perfect by construction.
        for tool in [
            Box::new(TaintAnalyzer::precise()) as Box<dyn Detector>,
            Box::new(PatternScanner::aggressive()),
        ] {
            let acc = score_detector(tool.as_ref(), &corpus)
                .diagnosis_accuracy()
                .expect("static tools claim classes");
            assert!(acc > 0.99, "{}: diagnosis {acc}", tool.name());
        }
        // The dynamic scanner's class-matched oracle (response signature
        // must match the probing payload) makes its diagnosis exact too.
        let dynamic = score_detector(&DynamicScanner::thorough(), &corpus);
        let acc = dynamic
            .diagnosis_accuracy()
            .expect("scanner claims classes");
        assert!(acc > 0.99, "class-matched oracle: {acc}");
        // A sloppy classifier lands near its configured accuracy.
        let sloppy = crate::ProfileTool::new("sloppy", 1.0, 0.0, 5).with_diagnosis_accuracy(0.7);
        let acc = score_detector(&sloppy, &corpus)
            .diagnosis_accuracy()
            .expect("profile claims classes");
        assert!((acc - 0.7).abs() < 0.1, "configured 0.7, got {acc}");
        // A tool with no class claims yields None.
        let none = score_detector(&ReportAll, &corpus);
        assert_eq!(none.diagnosis_accuracy(), None);
    }

    #[test]
    fn macro_vs_micro_averaging() {
        use vdbench_corpus::VulnClass;
        use vdbench_metrics::basic::Recall;
        // A tool blind to one class: with unequal class sizes, micro and
        // macro recall must differ, and macro is the lower, fairer number
        // when the blind spot is a big class... here we build it so the
        // populous class is detected and the rare one missed.
        #[derive(Debug)]
        struct ClassBlind;
        impl Detector for ClassBlind {
            fn name(&self) -> String {
                "class-blind".into()
            }
            fn analyze(&self, corpus: &Corpus, unit: &vdbench_corpus::Unit) -> Vec<Finding> {
                unit.sinks()
                    .into_iter()
                    .filter(|(_, _, site)| {
                        corpus
                            .site_info(*site)
                            .is_some_and(|i| i.class != VulnClass::WeakHash)
                    })
                    .map(|(_, _, site)| Finding::new(site, None, 1.0, "seen"))
                    .collect()
            }
        }
        let corpus = CorpusBuilder::new()
            .units(300)
            .vulnerability_density(0.5)
            .classes(vec![VulnClass::SqlInjection, VulnClass::WeakHash])
            .seed(9)
            .build();
        let outcome = score_detector(&ClassBlind, &corpus);
        let micro = {
            use vdbench_metrics::metric::Metric;
            Recall.compute(&outcome.confusion()).unwrap()
        };
        let macro_ = outcome.macro_average(&Recall).unwrap();
        // One class fully detected, one fully missed → macro recall = 0.5
        // regardless of class sizes; micro depends on the mix.
        assert!((macro_ - 0.5).abs() < 1e-9, "macro {macro_}");
        assert!(
            (micro - macro_).abs() > 0.01,
            "micro {micro} vs macro {macro_}"
        );
    }

    #[test]
    fn macro_average_none_when_undefined_everywhere() {
        use vdbench_metrics::basic::Recall;
        let corpus = CorpusBuilder::new()
            .units(20)
            .vulnerability_density(0.0)
            .seed(10)
            .build();
        let outcome = score_detector(&Silent, &corpus);
        // No vulnerable cases in any class: recall undefined everywhere.
        assert!(outcome.macro_average(&Recall).is_none());
    }

    #[test]
    fn discordance_between_extremes() {
        let corpus = CorpusBuilder::new()
            .units(80)
            .vulnerability_density(0.25)
            .seed(4)
            .build();
        let all = score_detector(&ReportAll, &corpus);
        let silent = score_detector(&Silent, &corpus);
        let (b, c) = all.discordance(&silent);
        // ReportAll is right exactly on vulnerable cases; Silent exactly on
        // safe ones. Discordance covers every case.
        assert_eq!(b as usize + c as usize, corpus.site_count());
        let (b2, c2) = silent.discordance(&all);
        assert_eq!((b2, c2), (c, b));
        let (b3, c3) = all.discordance(&all);
        assert_eq!((b3, c3), (0, 0));
    }
}
