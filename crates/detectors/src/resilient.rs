//! Resilient scan execution: retry, budgets, and explicit failure.
//!
//! [`score_detector_resilient`] is the fault-tolerant counterpart of
//! [`crate::score_detector`]: it drives a [`Detector`] through up to
//! [`ScanPolicy::max_attempts`] fallible scan attempts, applies a
//! deterministic exponential backoff schedule between attempts, and
//! returns an explicit [`ScanOutcome`] — `Completed` with the scored
//! [`DetectionOutcome`], or `Failed` with the terminal [`ScanError`] —
//! instead of assuming every scan succeeds.
//!
//! # Determinism
//!
//! The backoff schedule is *virtual*: `base_backoff_ms << (attempt-1)`
//! milliseconds are **recorded**, not slept. Sleeping would only slow the
//! benchmark down without changing any result, and recording keeps the
//! engine a pure function of its inputs — two runs of the same campaign
//! report identical backoff totals at any thread count.
//!
//! # Telemetry
//!
//! Every call feeds three always-live registry counters: `scan.attempts`
//! (one per attempt executed), `scan.retries` (attempts after the first)
//! and `scan.failed` (scans whose retry budget was exhausted). When span
//! recording is on, each attempt is visible in the Chrome trace through
//! the `detectors/scan_corpus` span (with its `attempt` argument) and
//! injected faults as `faults/inject` events.

use crate::detector::{Detector, ScanContext};
use crate::score::{score_findings, DetectionOutcome};
use std::fmt;
use std::sync::{Arc, OnceLock};
use vdbench_corpus::Corpus;
use vdbench_telemetry::registry::Counter;

/// Why a scan attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The attempt exceeded its virtual step budget (injected outright,
    /// or emergent from slowdown faults).
    Timeout {
        /// The step budget the attempt was given.
        budget: u64,
        /// The steps the attempt had consumed when it was killed.
        spent: u64,
    },
    /// The tool died mid-scan.
    Crash {
        /// Index of the unit being scanned when the tool died.
        unit: usize,
        /// Tool-reported (or harness-synthesized) crash message.
        message: String,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Timeout { budget, spent } => {
                write!(
                    f,
                    "scan timed out: {spent} steps spent of {budget} budgeted"
                )
            }
            ScanError::Crash { unit, message } => {
                write!(f, "tool crashed at unit {unit}: {message}")
            }
        }
    }
}

impl std::error::Error for ScanError {}

/// Retry and budget policy for resilient scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPolicy {
    /// Maximum scan attempts per tool (≥ 1); `attempts - 1` retries.
    pub max_attempts: u32,
    /// Virtual step budget per attempt, in steps **per corpus unit**: a
    /// nominal unit scan costs 1 step, a slowed one
    /// [`crate::fault::SLOWDOWN_COST`].
    pub steps_per_unit: u64,
    /// Base of the exponential backoff schedule, in virtual
    /// milliseconds: attempt `k` (1-based) is preceded by
    /// `base << (k - 2)` ms for `k ≥ 2`.
    pub base_backoff_ms: u64,
}

impl Default for ScanPolicy {
    fn default() -> Self {
        ScanPolicy {
            max_attempts: 3,
            steps_per_unit: 4,
            base_backoff_ms: 50,
        }
    }
}

impl ScanPolicy {
    /// The step budget one attempt over `units` corpus units receives.
    #[must_use]
    pub fn step_budget(&self, units: usize) -> u64 {
        self.steps_per_unit.saturating_mul(units as u64)
    }

    /// Virtual backoff before attempt `attempt` (1-based): 0 before the
    /// first attempt, then doubling from [`ScanPolicy::base_backoff_ms`].
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            0
        } else {
            self.base_backoff_ms << (attempt - 2).min(32)
        }
    }
}

/// The outcome of one resilient scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanOutcome {
    /// The scan completed (possibly after retries) and was scored.
    Completed {
        /// The scored run.
        outcome: DetectionOutcome,
        /// Attempts executed (1 = first try succeeded).
        attempts: u32,
        /// Total virtual backoff milliseconds spent before the
        /// successful attempt.
        backoff_ms: u64,
    },
    /// Every attempt failed; the scan is reported as unavailable.
    Failed {
        /// The tool whose scan failed.
        tool: String,
        /// Attempts executed (= the policy's `max_attempts`).
        attempts: u32,
        /// Total virtual backoff milliseconds spent across retries.
        backoff_ms: u64,
        /// The terminal attempt's error.
        error: ScanError,
    },
}

impl ScanOutcome {
    /// The tool this outcome belongs to.
    #[must_use]
    pub fn tool(&self) -> &str {
        match self {
            ScanOutcome::Completed { outcome, .. } => outcome.tool(),
            ScanOutcome::Failed { tool, .. } => tool,
        }
    }

    /// Attempts executed.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        match self {
            ScanOutcome::Completed { attempts, .. } | ScanOutcome::Failed { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Retries executed (attempts after the first).
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts().saturating_sub(1)
    }

    /// Total virtual backoff milliseconds.
    #[must_use]
    pub fn backoff_ms(&self) -> u64 {
        match self {
            ScanOutcome::Completed { backoff_ms, .. } | ScanOutcome::Failed { backoff_ms, .. } => {
                *backoff_ms
            }
        }
    }

    /// Whether the scan ultimately failed.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, ScanOutcome::Failed { .. })
    }

    /// The scored run, when the scan completed.
    #[must_use]
    pub fn as_completed(&self) -> Option<&DetectionOutcome> {
        match self {
            ScanOutcome::Completed { outcome, .. } => Some(outcome),
            ScanOutcome::Failed { .. } => None,
        }
    }
}

/// The `scan.*` counters on the process-wide telemetry registry.
struct ScanCounters {
    attempts: Arc<Counter>,
    retries: Arc<Counter>,
    failed: Arc<Counter>,
}

fn counters() -> &'static ScanCounters {
    static COUNTERS: OnceLock<ScanCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        ScanCounters {
            attempts: reg.counter("scan.attempts"),
            retries: reg.counter("scan.retries"),
            failed: reg.counter("scan.failed"),
        }
    })
}

/// Runs a detector over a corpus with retries and budgets, scoring the
/// first successful attempt against ground truth.
///
/// The infallible [`crate::score_detector`] is exactly this function
/// under a policy that cannot fail (infallible tools, any attempt
/// count); callers with plain detectors keep using it unchanged.
pub fn score_detector_resilient(
    tool: &dyn Detector,
    corpus: &Corpus,
    policy: &ScanPolicy,
) -> ScanOutcome {
    let c = counters();
    let max_attempts = policy.max_attempts.max(1);
    let budget = policy.step_budget(corpus.units().len());
    let mut backoff_ms = 0u64;
    let mut last_error = None;
    for attempt in 1..=max_attempts {
        backoff_ms += policy.backoff_before(attempt);
        c.attempts.inc();
        if attempt > 1 {
            c.retries.inc();
        }
        let cx = ScanContext {
            attempt,
            step_budget: budget,
        };
        match tool.try_analyze_corpus(corpus, &cx) {
            Ok(findings) => {
                return ScanOutcome::Completed {
                    outcome: score_findings(&tool.name(), corpus, &findings),
                    attempts: attempt,
                    backoff_ms,
                };
            }
            Err(e) => last_error = Some(e),
        }
    }
    c.failed.inc();
    ScanOutcome::Failed {
        tool: tool.name(),
        attempts: max_attempts,
        backoff_ms,
        error: last_error.expect("max_attempts >= 1 ran at least one attempt"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRates, FaultyDetector};
    use crate::{score_detector, PatternScanner};
    use vdbench_corpus::CorpusBuilder;

    #[test]
    fn infallible_tool_completes_first_try_and_matches_plain_scoring() {
        let corpus = CorpusBuilder::new().units(50).seed(2).build();
        let tool = PatternScanner::aggressive();
        let outcome = score_detector_resilient(&tool, &corpus, &ScanPolicy::default());
        match &outcome {
            ScanOutcome::Completed {
                outcome,
                attempts,
                backoff_ms,
            } => {
                assert_eq!(*attempts, 1);
                assert_eq!(*backoff_ms, 0);
                assert_eq!(outcome, &score_detector(&tool, &corpus));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(!outcome.is_failed());
        assert_eq!(outcome.retries(), 0);
        assert_eq!(outcome.tool(), "pattern-aggr");
        assert!(outcome.as_completed().is_some());
    }

    #[test]
    fn always_crashing_tool_exhausts_retries_with_backoff() {
        let corpus = CorpusBuilder::new().units(10).seed(4).build();
        let tool = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(1, FaultRates::always_crash()),
        );
        let policy = ScanPolicy {
            max_attempts: 4,
            ..ScanPolicy::default()
        };
        let outcome = score_detector_resilient(&tool, &corpus, &policy);
        match &outcome {
            ScanOutcome::Failed {
                tool,
                attempts,
                backoff_ms,
                error,
            } => {
                assert_eq!(tool, "pattern-aggr");
                assert_eq!(*attempts, 4);
                // 0 + 50 + 100 + 200.
                assert_eq!(*backoff_ms, 350);
                assert!(matches!(error, ScanError::Crash { unit: 0, .. }));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(outcome.is_failed());
        assert_eq!(outcome.retries(), 3);
        assert!(outcome.as_completed().is_none());
    }

    #[test]
    fn counters_track_attempts_retries_and_failures() {
        let reg = vdbench_telemetry::registry::global();
        let attempts = reg.counter("scan.attempts");
        let retries = reg.counter("scan.retries");
        let failed = reg.counter("scan.failed");
        let (a0, r0, f0) = (attempts.get(), retries.get(), failed.get());
        let corpus = CorpusBuilder::new().units(8).seed(6).build();
        let tool = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(2, FaultRates::always_crash()),
        );
        let policy = ScanPolicy {
            max_attempts: 3,
            ..ScanPolicy::default()
        };
        let _ = score_detector_resilient(&tool, &corpus, &policy);
        assert_eq!(attempts.get() - a0, 3);
        assert_eq!(retries.get() - r0, 2);
        assert_eq!(failed.get() - f0, 1);
    }

    #[test]
    fn backoff_schedule_is_exponential_and_saturating() {
        let p = ScanPolicy::default();
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(p.backoff_before(2), 50);
        assert_eq!(p.backoff_before(3), 100);
        assert_eq!(p.backoff_before(4), 200);
        // The shift is clamped; huge attempt numbers do not overflow.
        let _ = p.backoff_before(200);
        assert_eq!(p.step_budget(600), 2400);
    }

    #[test]
    fn scan_error_display() {
        let t = ScanError::Timeout {
            budget: 80,
            spent: 99,
        };
        assert!(t.to_string().contains("99 steps spent of 80"));
        let c = ScanError::Crash {
            unit: 7,
            message: "boom".into(),
        };
        assert!(c.to_string().contains("unit 7"));
        assert!(c.to_string().contains("boom"));
    }
}
