//! The static taint analyzer: a real forward dataflow analysis.
//!
//! The analysis abstractly interprets MiniWeb's structured control flow:
//!
//! * **path-insensitive** — both branches of every `if` are analyzed and
//!   joined, so flows guarded by constant-false conditions are still
//!   reported (the classic static-analysis false positive);
//! * **loop fixpoints** — `while` bodies are re-analyzed until the
//!   abstract environment stabilizes;
//! * **bounded call-depth inlining** — helper calls are inlined up to
//!   `max_call_depth`; beyond that the return value is assumed clean,
//!   which is exactly how depth-limited commercial analyzers miss deep
//!   interprocedural flows;
//! * **configurable sanitizer model** — the *precise* model tracks which
//!   sink each sanitizer protects (catching mismatched sanitizers); the
//!   *naive* model treats any sanitizer as cleansing (missing them).

use crate::detector::Detector;
use crate::finding::Finding;
use std::collections::{BTreeMap, BTreeSet};
use vdbench_corpus::{
    Corpus, Expr, Function, SanitizerKind, SinkKind, SiteId, SourceKind, Stmt, Unit, VulnClass,
};

/// An abstract taint label: origin plus the sinks it is sanitized for.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct AbstractTaint {
    kind: SourceKind,
    name: String,
    sanitized_for: BTreeSet<SinkKind>,
}

/// Abstract value: the set of taint labels possibly carried.
type AbstractValue = BTreeSet<AbstractTaint>;

/// Abstract environment: variable → abstract value.
type AbsEnv = BTreeMap<String, AbstractValue>;

/// Maximum fixpoint iterations for loops (the lattice is finite, so this
/// is a safety valve, not a soundness requirement).
const MAX_FIXPOINT_ITERS: usize = 8;

/// Configurable forward taint analysis.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{Detector, TaintAnalyzer};
///
/// let corpus = CorpusBuilder::new().units(20).seed(3).build();
/// let findings = TaintAnalyzer::precise().analyze_corpus(&corpus);
/// // Findings point at sink sites with taint rationale attached.
/// assert!(findings.iter().all(|f| !f.rationale.is_empty()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintAnalyzer {
    max_call_depth: usize,
    precise_sanitizers: bool,
    check_patterns: bool,
    track_store: bool,
}

impl TaintAnalyzer {
    /// Full-strength configuration: call depth 3, sink-aware sanitizer
    /// model, pattern rules enabled.
    pub fn precise() -> Self {
        TaintAnalyzer {
            max_call_depth: 3,
            precise_sanitizers: true,
            check_patterns: true,
            track_store: true,
        }
    }

    /// A weaker profile: intra-procedural only (depth 0) and a naive
    /// sanitizer model — the error profile of a fast first-generation
    /// analyzer.
    pub fn shallow() -> Self {
        TaintAnalyzer {
            max_call_depth: 0,
            precise_sanitizers: false,
            check_patterns: false,
            track_store: false,
        }
    }

    /// Custom configuration.
    pub fn with_config(
        max_call_depth: usize,
        precise_sanitizers: bool,
        check_patterns: bool,
    ) -> Self {
        TaintAnalyzer {
            max_call_depth,
            precise_sanitizers,
            check_patterns,
            track_store: precise_sanitizers,
        }
    }

    /// Enables or disables the flow-insensitive store (heap) abstraction;
    /// without it, second-order flows through `store_write`/`store_read`
    /// are invisible (builder style).
    pub fn track_store(mut self, enabled: bool) -> Self {
        self.track_store = enabled;
        self
    }

    /// The configured inlining depth.
    pub fn max_call_depth(&self) -> usize {
        self.max_call_depth
    }
}

impl Default for TaintAnalyzer {
    /// The precise profile.
    fn default() -> Self {
        TaintAnalyzer::precise()
    }
}

impl Detector for TaintAnalyzer {
    fn name(&self) -> String {
        format!(
            "taint-d{}{}{}",
            self.max_call_depth,
            if self.precise_sanitizers {
                "-precise"
            } else {
                "-naive"
            },
            if self.precise_sanitizers && !self.track_store {
                "-nostore"
            } else {
                ""
            }
        )
    }

    fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let mut ctx = AnalysisCtx {
            analyzer: self,
            unit,
            findings: BTreeMap::new(),
            store: BTreeMap::new(),
        };
        // Two passes realize a flow-insensitive heap abstraction: pass 1
        // accumulates every possible store write; pass 2 lets reads (even
        // ones that lexically precede the write, or sit on the opposite
        // branch — i.e. a different request) observe them. One pass
        // suffices when the store is not modelled.
        let passes = if self.track_store { 2 } else { 1 };
        for _ in 0..passes {
            let mut env = AbsEnv::new();
            ctx.analyze_block(&unit.handler.body, &mut env, 0);
        }
        ctx.findings
            .into_iter()
            .map(|(site, (class, reason))| Finding::new(site, class, 0.8, reason))
            .collect()
    }
}

struct AnalysisCtx<'a> {
    analyzer: &'a TaintAnalyzer,
    unit: &'a Unit,
    findings: BTreeMap<SiteId, (Option<VulnClass>, String)>,
    /// Flow-insensitive abstraction of the persistent store: weak updates
    /// only, accumulated across both analysis passes.
    store: BTreeMap<String, AbstractValue>,
}

impl<'a> AnalysisCtx<'a> {
    /// Analyzes a block, mutating the environment; returns the join of all
    /// returned abstract values.
    fn analyze_block(&mut self, body: &[Stmt], env: &mut AbsEnv, depth: usize) -> AbstractValue {
        let mut returned = AbstractValue::new();
        for stmt in body {
            match stmt {
                Stmt::Let { var, expr } | Stmt::Assign { var, expr } => {
                    let v = self.eval(expr, env);
                    env.insert(var.clone(), v);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    // Path-insensitive join: analyze both branches from the
                    // same entry state, then merge.
                    let mut then_env = env.clone();
                    let mut else_env = env.clone();
                    let r1 = self.analyze_block(then_branch, &mut then_env, depth);
                    let r2 = self.analyze_block(else_branch, &mut else_env, depth);
                    returned.extend(r1);
                    returned.extend(r2);
                    *env = join_envs(&then_env, &else_env);
                }
                Stmt::While { body, .. } => {
                    for _ in 0..MAX_FIXPOINT_ITERS {
                        let mut iter_env = env.clone();
                        let r = self.analyze_block(body, &mut iter_env, depth);
                        returned.extend(r);
                        let joined = join_envs(env, &iter_env);
                        if joined == *env {
                            break;
                        }
                        *env = joined;
                    }
                }
                Stmt::Sink { kind, arg, site } => {
                    let v = self.eval(arg, env);
                    self.check_sink(*kind, arg, &v, *site);
                }
                Stmt::Call { var, func, args } => {
                    let result = self.analyze_call(func, args, env, depth);
                    if let Some(var) = var {
                        env.insert(var.clone(), result);
                    }
                }
                Stmt::Return(expr) => {
                    let v = self.eval(expr, env);
                    returned.extend(v);
                    // Statements after an unconditional return are dead,
                    // but the analysis keeps going: path-insensitivity
                    // again, and it only ever over-approximates.
                }
                Stmt::StoreWrite { key, expr } => {
                    let v = self.eval(expr, env);
                    if self.analyzer.track_store {
                        self.store.entry(key.clone()).or_default().extend(v);
                    }
                }
            }
        }
        returned
    }

    fn analyze_call(
        &mut self,
        func: &str,
        args: &[Expr],
        env: &mut AbsEnv,
        depth: usize,
    ) -> AbstractValue {
        // Evaluate arguments in the caller regardless, so their taint is
        // computed consistently.
        let arg_vals: Vec<AbstractValue> = args.iter().map(|a| self.eval(a, env)).collect();
        if depth >= self.analyzer.max_call_depth {
            // Depth budget exhausted: assume the callee returns clean data.
            // This is the deliberate unsoundness that loses deep flows.
            return AbstractValue::new();
        }
        let Some(callee): Option<&Function> = self.unit.function(func) else {
            return AbstractValue::new();
        };
        if callee.params.len() != arg_vals.len() {
            return AbstractValue::new();
        }
        let mut callee_env = AbsEnv::new();
        for (p, v) in callee.params.iter().zip(arg_vals) {
            callee_env.insert(p.clone(), v);
        }
        let body = callee.body.clone();
        self.analyze_block(&body, &mut callee_env, depth + 1)
    }

    fn eval(&self, expr: &Expr, env: &AbsEnv) -> AbstractValue {
        match expr {
            Expr::Int(_) | Expr::Str(_) | Expr::Bool(_) => AbstractValue::new(),
            Expr::Var(v) => env.get(v).cloned().unwrap_or_default(),
            Expr::Source { kind, name } => {
                let mut s = AbstractValue::new();
                s.insert(AbstractTaint {
                    kind: *kind,
                    name: name.clone(),
                    sanitized_for: BTreeSet::new(),
                });
                s
            }
            Expr::Concat(a, b) => {
                let mut v = self.eval(a, env);
                v.extend(self.eval(b, env));
                v
            }
            Expr::BinOp { lhs, rhs, .. } => {
                let mut v = self.eval(lhs, env);
                v.extend(self.eval(rhs, env));
                v
            }
            Expr::Sanitize { kind, arg } => {
                let v = self.eval(arg, env);
                self.apply_sanitizer(*kind, v)
            }
            Expr::StoreRead { key } => {
                if self.analyzer.track_store {
                    self.store.get(key).cloned().unwrap_or_default()
                } else {
                    AbstractValue::new()
                }
            }
        }
    }

    fn apply_sanitizer(&self, kind: SanitizerKind, v: AbstractValue) -> AbstractValue {
        if !self.analyzer.precise_sanitizers {
            // Naive model: a sanitizer means the developer handled it.
            return AbstractValue::new();
        }
        v.into_iter()
            .filter_map(|mut tag| {
                let mut fully_clean = true;
                for sink in [
                    SinkKind::SqlQuery,
                    SinkKind::HtmlOutput,
                    SinkKind::ShellExec,
                    SinkKind::FileOpen,
                ] {
                    if kind.protects(sink) {
                        tag.sanitized_for.insert(sink);
                    } else {
                        fully_clean = false;
                    }
                }
                if fully_clean {
                    // Validators (int/whitelist) remove taint entirely.
                    None
                } else {
                    Some(tag)
                }
            })
            .collect()
    }

    fn check_sink(&mut self, kind: SinkKind, arg: &Expr, v: &AbstractValue, site: SiteId) {
        if kind.is_taint_sink() {
            let offending: Vec<&AbstractTaint> = v
                .iter()
                .filter(|t| !t.sanitized_for.contains(&kind))
                .collect();
            if let Some(first) = offending.first() {
                let class = match kind {
                    SinkKind::SqlQuery => Some(VulnClass::SqlInjection),
                    SinkKind::HtmlOutput => Some(VulnClass::Xss),
                    SinkKind::ShellExec => Some(VulnClass::CommandInjection),
                    SinkKind::FileOpen => Some(VulnClass::PathTraversal),
                    _ => None,
                };
                self.findings.entry(site).or_insert_with(|| {
                    (
                        class,
                        format!(
                            "tainted data from {}({:?}) reaches {}",
                            first.kind.keyword(),
                            first.name,
                            kind.keyword()
                        ),
                    )
                });
            }
        } else if self.analyzer.check_patterns {
            match kind {
                SinkKind::CryptoHash => {
                    const WEAK: [&str; 4] = ["md5", "sha1", "crc32", "des"];
                    if let Expr::Str(algo) = arg {
                        if WEAK.contains(&algo.to_ascii_lowercase().as_str()) {
                            self.findings.entry(site).or_insert_with(|| {
                                (
                                    Some(VulnClass::WeakHash),
                                    format!("weak hash algorithm {algo:?}"),
                                )
                            });
                        }
                    }
                }
                SinkKind::Authenticate
                    // Credential with no source taint = hardcoded.
                    if v.is_empty() && !arg.contains_source() => {
                        self.findings.entry(site).or_insert_with(|| {
                            (
                                Some(VulnClass::HardcodedCredentials),
                                "credential value is compile-time constant".to_string(),
                            )
                        });
                    }
                _ => {}
            }
        }
    }
}

fn join_envs(a: &AbsEnv, b: &AbsEnv) -> AbsEnv {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone()).or_default().extend(v.iter().cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::score_detector;
    use vdbench_corpus::{CorpusBuilder, FlowShape};
    use vdbench_metrics::metric::Metric;

    fn corpus(seed: u64) -> Corpus {
        CorpusBuilder::new()
            .units(400)
            .vulnerability_density(0.35)
            .seed(seed)
            .build()
    }

    #[test]
    fn precise_taint_has_high_recall() {
        let corpus = corpus(31);
        let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
        let cm = outcome.confusion();
        let recall = vdbench_metrics::basic::Recall.compute(&cm).unwrap();
        assert!(recall > 0.9, "precise taint recall {recall} ({cm})");
    }

    #[test]
    fn dead_guards_are_reported_by_design() {
        let corpus = CorpusBuilder::new()
            .units(80)
            .vulnerability_density(0.0)
            .decoy_rate(1.0)
            .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
            .seed(32)
            .build();
        let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
        let cm = outcome.confusion();
        assert_eq!(cm.tp, 0);
        assert_eq!(
            cm.fp as usize,
            corpus.site_count(),
            "path-insensitive analysis must flag every dead guard"
        );
    }

    #[test]
    fn precise_sanitizer_model_catches_mismatches() {
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .classes(vec![VulnClass::SqlInjection, VulnClass::CommandInjection])
            .seed(33)
            .build();
        let precise = score_detector(&TaintAnalyzer::precise(), &corpus);
        assert_eq!(
            precise.confusion().fn_,
            0,
            "precise model must catch every disguised flow"
        );
        let naive = score_detector(&TaintAnalyzer::shallow(), &corpus);
        // The naive model treats any sanitizer as cleansing: it misses all
        // mismatched flows (partial flows still join an unsanitized path).
        let mismatch_cm = naive.confusion_for_shape(FlowShape::SanitizedMismatch);
        assert_eq!(
            mismatch_cm.tp, 0,
            "naive model must be fooled: {mismatch_cm}"
        );
        assert!(mismatch_cm.fn_ > 0);
    }

    #[test]
    fn partial_sanitization_caught_via_join() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .classes(vec![VulnClass::Xss])
            .seed(34)
            .build();
        let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
        let partial = outcome.confusion_for_shape(FlowShape::SanitizedPartial);
        if partial.total() > 0 {
            assert_eq!(
                partial.fn_, 0,
                "branch join must preserve the unsanitized path: {partial}"
            );
        }
    }

    #[test]
    fn call_depth_limits_interprocedural_recall() {
        let corpus = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(0.0)
            .interproc_rate(1.0)
            .classes(vec![VulnClass::CommandInjection])
            .seed(35)
            .build();
        let deep = score_detector(&TaintAnalyzer::precise(), &corpus);
        let shallow = score_detector(&TaintAnalyzer::shallow(), &corpus);
        let inter_deep = deep.confusion_for_shape(FlowShape::Interprocedural);
        let inter_shallow = shallow.confusion_for_shape(FlowShape::Interprocedural);
        assert_eq!(inter_deep.fn_, 0, "depth-3 inlining covers helpers");
        assert_eq!(
            inter_shallow.tp, 0,
            "depth-0 analysis must miss every interprocedural flow"
        );
    }

    #[test]
    fn correctly_sanitized_flows_are_not_flagged() {
        let corpus = CorpusBuilder::new()
            .units(150)
            .vulnerability_density(0.0)
            .decoy_rate(0.0)
            .classes(vec![
                VulnClass::SqlInjection,
                VulnClass::Xss,
                VulnClass::PathTraversal,
            ])
            .seed(36)
            .build();
        let outcome = score_detector(&TaintAnalyzer::precise(), &corpus);
        let cm = outcome.confusion();
        assert_eq!(cm.fp, 0, "no FPs on clean code: {cm}");
    }

    #[test]
    fn pattern_rules_toggle() {
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(0.6)
            .classes(vec![VulnClass::WeakHash, VulnClass::HardcodedCredentials])
            .seed(37)
            .build();
        let with = score_detector(&TaintAnalyzer::precise(), &corpus);
        let without = score_detector(&TaintAnalyzer::shallow(), &corpus);
        assert!(with.confusion().tp > 0);
        assert_eq!(
            without.confusion().tp,
            0,
            "pattern checks disabled ⇒ no configuration findings"
        );
    }

    #[test]
    fn names_encode_configuration() {
        assert_eq!(TaintAnalyzer::precise().name(), "taint-d3-precise");
        assert_eq!(TaintAnalyzer::shallow().name(), "taint-d0-naive");
        assert_eq!(
            TaintAnalyzer::with_config(1, true, false).name(),
            "taint-d1-precise"
        );
        assert_eq!(TaintAnalyzer::default().max_call_depth(), 3);
    }
}
