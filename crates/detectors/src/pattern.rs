//! The lexical/AST signature scanner.
//!
//! Models the grep-with-extra-steps family of tools: it looks at each sink
//! statement in isolation and applies syntactic rules. No dataflow, no
//! reachability, no sanitizer-sink matching — which produces exactly the
//! error profile such tools have in practice:
//!
//! * flags sinks in dead code (**false positives** on dead guards);
//! * in aggressive mode flags any sink consuming a variable, including
//!   variables holding literals (**false positives** on literal flows);
//! * treats *any* sanitizer as protection, so a mismatched sanitizer
//!   silences it (**false negatives** on disguised vulnerabilities);
//! * in conservative mode only flags sources appearing lexically in the
//!   sink argument (**false negatives** on chained/interprocedural flows).
//!
//! It is, however, genuinely good at the pattern classes (hardcoded
//! credentials, weak hashes) — string matching is the right tool there.

use crate::detector::Detector;
use crate::finding::Finding;
use vdbench_corpus::{Corpus, Expr, SinkKind, Unit, VulnClass};

/// Configuration-driven signature scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternScanner {
    /// Flag sinks whose argument references any variable (cannot resolve
    /// what it holds, so assume the worst).
    flag_variables: bool,
}

impl PatternScanner {
    /// The aggressive profile: variables are assumed dangerous. Highest
    /// recall, lowest precision.
    pub fn aggressive() -> Self {
        PatternScanner {
            flag_variables: true,
        }
    }

    /// The conservative profile: only lexically visible sources are
    /// flagged. Fewer false positives, misses all indirect flows.
    pub fn conservative() -> Self {
        PatternScanner {
            flag_variables: false,
        }
    }

    fn class_for_sink(kind: SinkKind) -> Option<VulnClass> {
        match kind {
            SinkKind::SqlQuery => Some(VulnClass::SqlInjection),
            SinkKind::HtmlOutput => Some(VulnClass::Xss),
            SinkKind::ShellExec => Some(VulnClass::CommandInjection),
            SinkKind::FileOpen => Some(VulnClass::PathTraversal),
            SinkKind::Authenticate => Some(VulnClass::HardcodedCredentials),
            SinkKind::CryptoHash => Some(VulnClass::WeakHash),
        }
    }

    /// Checks one taint sink given the function's one-hop definition map.
    ///
    /// The scanner resolves each variable in the sink argument through at
    /// most **one** lexical assignment — the "grep with extra steps" level
    /// of effort. Any sanitizer within that horizon counts as protection
    /// regardless of whether it matches the sink.
    fn check_taint_sink(
        &self,
        arg: &Expr,
        defs: &std::collections::BTreeMap<String, Expr>,
    ) -> Option<&'static str> {
        let one_hop: Vec<&Expr> = arg
            .referenced_vars()
            .iter()
            .filter_map(|v| defs.get(*v))
            .collect();
        // Rule 1: a sanitizer anywhere within the one-hop horizon counts
        // as "handled" — the tool cannot tell whether it is the *right*
        // sanitizer.
        if arg.contains_sanitizer() || one_hop.iter().any(|e| e.contains_sanitizer()) {
            return None;
        }
        // Rule 2: a source lexically visible within the horizon.
        if arg.contains_source() {
            return Some("request input flows directly into sink expression");
        }
        if one_hop.iter().any(|e| e.contains_source()) {
            return Some("request input assigned to a variable used by the sink");
        }
        // Rule 3 (aggressive): database reads are data of unknown
        // provenance — flag them (catches stored injection at the price of
        // false alarms on stored literals).
        if self.flag_variables
            && (expr_has_store_read(arg) || one_hop.iter().any(|e| expr_has_store_read(e)))
        {
            return Some("sink consumes data read back from the store");
        }
        // Rule 4 (aggressive): unresolved variables could hold anything.
        let unresolved = !arg.referenced_vars().is_empty()
            && (one_hop.is_empty() || one_hop.iter().any(|e| !e.referenced_vars().is_empty()));
        if self.flag_variables && unresolved {
            return Some("sink consumes a variable of unknown provenance");
        }
        None
    }

    fn check_pattern_sink(kind: SinkKind, arg: &Expr) -> Option<&'static str> {
        match kind {
            SinkKind::CryptoHash => {
                const WEAK_ALGOS: [&str; 4] = ["md5", "sha1", "crc32", "des"];
                if let Expr::Str(algo) = arg {
                    if WEAK_ALGOS.contains(&algo.to_ascii_lowercase().as_str()) {
                        return Some("weak hash algorithm literal");
                    }
                }
                None
            }
            SinkKind::Authenticate => {
                // A credential that does not come from a request or
                // configuration source is hardcoded.
                if !arg.contains_source() {
                    Some("credential does not originate from an external source")
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl Default for PatternScanner {
    /// The aggressive profile (the common default of signature tools).
    fn default() -> Self {
        PatternScanner::aggressive()
    }
}

impl Detector for PatternScanner {
    fn name(&self) -> String {
        if self.flag_variables {
            "pattern-aggr".into()
        } else {
            "pattern-cons".into()
        }
    }

    fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let mut findings = Vec::new();
        let functions = std::iter::once(&unit.handler).chain(unit.helpers.iter());
        for function in functions {
            let defs = lexical_defs(&function.body);
            let mut sinks = Vec::new();
            collect_sinks(&function.body, &mut sinks);
            for (kind, arg, site) in sinks {
                let rationale = if kind.is_taint_sink() {
                    self.check_taint_sink(arg, &defs)
                } else {
                    Self::check_pattern_sink(kind, arg)
                };
                if let Some(reason) = rationale {
                    findings.push(Finding::new(
                        site,
                        Self::class_for_sink(kind),
                        if kind.is_taint_sink() { 0.6 } else { 0.9 },
                        reason,
                    ));
                }
            }
        }
        findings
    }
}

/// Whether the expression lexically contains a store read.
fn expr_has_store_read(e: &Expr) -> bool {
    match e {
        Expr::StoreRead { .. } => true,
        Expr::Concat(a, b) => expr_has_store_read(a) || expr_has_store_read(b),
        Expr::Sanitize { arg, .. } => expr_has_store_read(arg),
        Expr::BinOp { lhs, rhs, .. } => expr_has_store_read(lhs) || expr_has_store_read(rhs),
        _ => false,
    }
}

/// All `var = expr` bindings in lexical order (later assignments override),
/// flattening through branches and loops — the one-hop resolution horizon.
fn lexical_defs(body: &[vdbench_corpus::Stmt]) -> std::collections::BTreeMap<String, Expr> {
    use vdbench_corpus::Stmt;
    let mut defs = std::collections::BTreeMap::new();
    fn walk(body: &[Stmt], defs: &mut std::collections::BTreeMap<String, Expr>) {
        for stmt in body {
            match stmt {
                Stmt::Let { var, expr } | Stmt::Assign { var, expr } => {
                    defs.insert(var.clone(), expr.clone());
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, defs);
                    walk(else_branch, defs);
                }
                Stmt::While { body, .. } => walk(body, defs),
                // A call result is opaque to the lexical scanner: drop any
                // previous binding so the variable stays unresolved.
                Stmt::Call { var: Some(v), .. } => {
                    defs.remove(v);
                }
                _ => {}
            }
        }
    }
    walk(body, &mut defs);
    defs
}

/// Sinks within one function body, in lexical order.
fn collect_sinks<'a>(
    body: &'a [vdbench_corpus::Stmt],
    out: &mut Vec<(SinkKind, &'a Expr, vdbench_corpus::SiteId)>,
) {
    use vdbench_corpus::Stmt;
    for stmt in body {
        match stmt {
            Stmt::Sink { kind, arg, site } => out.push((*kind, arg, *site)),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sinks(then_branch, out);
                collect_sinks(else_branch, out);
            }
            Stmt::While { body, .. } => collect_sinks(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::score_detector;
    use vdbench_corpus::{CorpusBuilder, FlowShape};

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .units(400)
            .vulnerability_density(0.35)
            .seed(17)
            .build()
    }

    #[test]
    fn aggressive_has_higher_recall_and_more_fps_than_conservative() {
        let corpus = corpus();
        let aggr = score_detector(&PatternScanner::aggressive(), &corpus);
        let cons = score_detector(&PatternScanner::conservative(), &corpus);
        assert!(aggr.confusion().tp >= cons.confusion().tp);
        assert!(aggr.confusion().fp >= cons.confusion().fp);
        assert!(aggr.confusion().tp > 0);
    }

    #[test]
    fn mismatched_sanitizers_fool_the_scanner() {
        let corpus = CorpusBuilder::new()
            .units(100)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .stored_rate(0.0)
            .classes(vec![VulnClass::SqlInjection])
            .seed(5)
            .build();
        let outcome = score_detector(&PatternScanner::aggressive(), &corpus);
        // Every disguised site must be missed: the scanner sees "a
        // sanitizer" within its one-hop horizon and stands down, unable to
        // tell that it is the wrong one (mismatch) or only on one path
        // (partial).
        for rec in outcome.records() {
            assert!(matches!(
                rec.shape,
                FlowShape::SanitizedMismatch | FlowShape::SanitizedPartial
            ));
            assert!(!rec.reported, "scanner must be fooled at {}", rec.site);
        }
        assert_eq!(outcome.confusion().tp, 0);
    }

    #[test]
    fn dead_guards_are_false_positives() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.0)
            .decoy_rate(1.0)
            .classes(vec![VulnClass::Xss])
            .seed(6)
            .build();
        let outcome = score_detector(&PatternScanner::aggressive(), &corpus);
        let cm = outcome.confusion();
        assert_eq!(cm.tp, 0);
        assert!(cm.fp as usize > 30, "dead guards should draw FPs: {cm}");
    }

    #[test]
    fn pattern_classes_detected_well() {
        let corpus = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(0.5)
            .classes(vec![VulnClass::WeakHash, VulnClass::HardcodedCredentials])
            .seed(7)
            .build();
        let outcome = score_detector(&PatternScanner::aggressive(), &corpus);
        let cm = outcome.confusion();
        // Signature matching is the right tool for configuration bugs.
        assert_eq!(cm.fn_, 0, "all pattern-class bugs found: {cm}");
        assert_eq!(cm.fp, 0, "no false alarms on good configurations: {cm}");
    }

    #[test]
    fn names_differ_by_profile() {
        assert_eq!(PatternScanner::aggressive().name(), "pattern-aggr");
        assert_eq!(PatternScanner::conservative().name(), "pattern-cons");
        assert_eq!(PatternScanner::default(), PatternScanner::aggressive());
    }
}
