//! The sharded scan driver.
//!
//! [`try_analyze_sharded`] runs one scan attempt over a corpus presented
//! as a sequence of shards (contiguous [`Corpus::unit_base`] windows of
//! one streamed corpus), producing the **exact** `Result` the monolithic
//! [`Detector::try_analyze_corpus`] path produces — same findings, same
//! error values, same fault counters — at any shard size. The equivalence
//! is structural, not coincidental: the monolithic fault path is itself
//! implemented as this driver over a single shard.
//!
//! The same schedule-independence discipline carries over to the
//! *pipelined* streamed scanner (`vdbench_core::streamed_scan`), which
//! scans whole shards on concurrent worker threads: every per-unit fault
//! decision ([`fault`]) is keyed on the **global** unit id, never on
//! visit order or thread identity, so a shard's findings are identical
//! whether it is scanned serially, in this driver's attempt loop, or on
//! an arbitrary worker of the parallel pipeline.
//!
//! Invariants the driver maintains:
//!
//! * **Scan-level faults roll once.** [`Detector::begin_scan`] is keyed
//!   on the workload seed (identical for every shard), so outright
//!   timeouts and truncation decisions are independent of sharding.
//! * **Every shard is visited, even doomed ones.** Fault *counters* must
//!   not depend on where a crash happened relative to shard boundaries,
//!   so the driver keeps scanning after observing a crash, exactly as the
//!   monolithic path evaluates every unit of a doomed attempt.
//! * **The lowest crashed unit wins**, mirroring "the tool died at the
//!   first crashing unit" whatever order shards were scanned in.
//! * **Budget and truncation apply to the whole attempt**: steps sum
//!   across shards before the timeout check, and the truncation prefix is
//!   cut from the concatenated findings after the last shard.

use crate::detector::{Detector, ScanContext};
use crate::fault;
use crate::finding::Finding;
use crate::resilient::ScanError;
use std::borrow::Borrow;
use vdbench_corpus::Corpus;

/// Runs one fallible scan attempt over `shards`, bit-identical to the
/// monolithic path on the equivalent whole corpus.
///
/// `corpus_seed` is the workload seed shared by every shard
/// ([`Corpus::seed`] — shards of one streamed corpus all carry the
/// original builder seed). Shards may be owned or borrowed; they are
/// dropped as soon as they are scanned, so memory stays bounded by the
/// largest single shard plus the accumulated findings.
///
/// # Errors
///
/// Returns [`ScanError`] exactly when the monolithic path would: a
/// fault-injected outright timeout before any shard, the lowest-unit
/// crash, or a step budget exhausted across the whole attempt.
pub fn try_analyze_sharded<I, C>(
    tool: &dyn Detector,
    corpus_seed: u64,
    shards: I,
    cx: &ScanContext,
) -> Result<Vec<Finding>, ScanError>
where
    I: IntoIterator<Item = C>,
    C: Borrow<Corpus>,
{
    let prelude = tool.begin_scan(corpus_seed, cx)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut steps: u64 = 0;
    let mut crash: Option<(usize, ScanError)> = None;
    for shard in shards {
        let scan = tool.analyze_shard(shard.borrow(), cx);
        steps = steps.saturating_add(scan.steps);
        findings.extend(scan.findings);
        if let Some(err) = scan.crash {
            let unit = match &err {
                ScanError::Crash { unit, .. } => *unit,
                // Non-crash errors from a shard are treated as position 0
                // (defensive; the fault proxy only emits crashes here).
                ScanError::Timeout { .. } => 0,
            };
            if crash.as_ref().is_none_or(|(lowest, _)| unit < *lowest) {
                crash = Some((unit, err));
            }
        }
    }
    if let Some((_, err)) = crash {
        return Err(err);
    }
    if steps > cx.step_budget {
        return Err(ScanError::Timeout {
            budget: cx.step_budget,
            spent: steps,
        });
    }
    if let Some(keep) = prelude.keep_fraction {
        let kept = ((findings.len() as f64) * keep).floor() as usize;
        fault::record_truncation(&tool.name(), (findings.len() - kept) as u64);
        findings.truncate(kept);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan, FaultProfile, FaultRates, FaultyDetector};
    use crate::{DynamicScanner, PatternScanner, TaintAnalyzer};
    use vdbench_corpus::CorpusBuilder;

    /// Splits a whole corpus into owned shards of `size` units with the
    /// original seed and global unit ids, as the streaming generator
    /// would produce them.
    fn shards_of(corpus: &Corpus, size: usize) -> Vec<Corpus> {
        let builder_seed = corpus.seed();
        let mut out = Vec::new();
        let mut base = 0usize;
        while base < corpus.units().len() {
            let end = (base + size).min(corpus.units().len());
            let units = corpus.units()[base..end].to_vec();
            let sites = corpus
                .sites()
                .filter(|s| (base..end).contains(&(s.site.unit as usize)))
                .cloned()
                .collect();
            out.push(Corpus::from_shard(units, sites, builder_seed, base as u32));
            base = end;
        }
        out
    }

    #[test]
    fn honest_tools_shard_bit_identically() {
        let corpus = CorpusBuilder::new()
            .units(90)
            .vulnerability_density(0.4)
            .seed(31)
            .build();
        let cx = ScanContext {
            attempt: 1,
            step_budget: 4 * 90,
        };
        let tools: Vec<Box<dyn Detector>> = vec![
            Box::new(PatternScanner::aggressive()),
            Box::new(TaintAnalyzer::precise()),
            Box::new(DynamicScanner::thorough()),
        ];
        for tool in &tools {
            let whole = tool.try_analyze_corpus(&corpus, &cx).unwrap();
            for size in [1usize, 7, 32, 90, 128] {
                let sharded = try_analyze_sharded(
                    tool.as_ref(),
                    corpus.seed(),
                    shards_of(&corpus, size),
                    &cx,
                )
                .unwrap();
                assert_eq!(sharded, whole, "{} at shard size {size}", tool.name());
            }
        }
    }

    #[test]
    fn flaky_fault_scans_shard_bit_identically() {
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(0.4)
            .seed(21)
            .build();
        let plan = FaultPlan::new(FaultConfig::new(FaultProfile::Flaky, 0xABCD));
        let wrapped = FaultyDetector::new(Box::new(PatternScanner::aggressive()), plan);
        // Sweep attempts so the comparison covers surviving scans,
        // truncated scans and outright timeouts alike.
        for attempt in 1..=6 {
            let cx = ScanContext {
                attempt,
                step_budget: 4 * 120,
            };
            let whole = wrapped.try_analyze_corpus(&corpus, &cx);
            for size in [1usize, 13, 40, 120] {
                let sharded =
                    try_analyze_sharded(&wrapped, corpus.seed(), shards_of(&corpus, size), &cx);
                assert_eq!(sharded, whole, "attempt {attempt} shard size {size}");
            }
        }
    }

    #[test]
    fn crashes_report_the_lowest_global_unit_across_shards() {
        let corpus = CorpusBuilder::new().units(30).seed(3).build();
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(9, FaultRates::always_crash()),
        );
        let cx = ScanContext {
            attempt: 1,
            step_budget: 120,
        };
        // Scan shards in reverse order: the lowest unit must still win.
        let mut reversed = shards_of(&corpus, 7);
        reversed.reverse();
        match try_analyze_sharded(&wrapped, corpus.seed(), reversed, &cx) {
            Err(ScanError::Crash { unit, message }) => {
                assert_eq!(unit, 0, "lowest global unit wins");
                assert_eq!(message, "injected crash while scanning unit 0");
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn hostile_profile_matches_too() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.5)
            .seed(8)
            .build();
        let plan = FaultPlan::new(FaultConfig::new(FaultProfile::Hostile, 0xFEED));
        let wrapped = FaultyDetector::new(Box::new(PatternScanner::aggressive()), plan);
        for attempt in 1..=4 {
            let cx = ScanContext {
                attempt,
                step_budget: 4 * 60,
            };
            let whole = wrapped.try_analyze_corpus(&corpus, &cx);
            let sharded = try_analyze_sharded(&wrapped, corpus.seed(), shards_of(&corpus, 11), &cx);
            assert_eq!(sharded, whole, "attempt {attempt}");
        }
    }
}
