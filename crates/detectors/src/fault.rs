//! Deterministic fault injection for detector scans.
//!
//! Real vulnerability detection tools time out, crash, slow down and
//! return flaky results; evaluations that assume every scan succeeds
//! (the original campaign engine did) let one misbehaving tool poison a
//! whole campaign. This module provides the adversarial half of the
//! resilience story: a [`FaultPlan`] that injects faults into any
//! [`Detector`] through the [`FaultyDetector`] proxy, at configurable
//! per-site probabilities.
//!
//! # Determinism contract
//!
//! Every fault decision is a **pure function** of
//! `(fault seed, tool name, workload seed, attempt, unit index)` via the
//! workspace's [`derive_seed`] discipline — never of wall-clock time,
//! thread identity or execution order. Consequences:
//!
//! * two campaigns with the same `--fault-seed` inject bit-identical
//!   faults, at any worker-thread count;
//! * a retry (higher `attempt`) re-rolls every decision, so transient
//!   faults clear on retry exactly as a flaky real tool's would;
//! * the same tool draws independent decisions on different workloads
//!   (the corpus seed salts the stream), so a campaign's scenarios never
//!   fail in lockstep;
//! * adding a fault kind or tool never perturbs the decisions of the
//!   others (each draws from its own derived stream).
//!
//! Fault *counters* (`fault.injected.*` on the telemetry registry) are
//! equally schedule-independent because the proxy evaluates the decision
//! for every unit of an attempt even when an earlier unit already doomed
//! the scan — mirroring how a crashing tool still burned the full scan
//! before dying, and keeping the observability layer deterministic.

use crate::detector::{Detector, ScanContext, ScanPrelude, ShardScan};
use crate::finding::Finding;
use crate::resilient::ScanError;
use rayon::prelude::*;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};
use vdbench_corpus::{Corpus, Unit};
use vdbench_stats::{derive_seed, SeededRng};
use vdbench_telemetry::registry::Counter;

/// Virtual step cost of a unit scan hit by a [`FaultKind::Slowdown`]
/// fault, relative to the nominal cost of 1 step per unit. With the
/// default [`crate::resilient::ScanPolicy`] budget of 4 steps/unit, a
/// scan times out once slightly more than ~4.8% of its units are slowed
/// (`1 + 63·s > 4` at `s ≈ 0.048`).
pub const SLOWDOWN_COST: u64 = 64;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The whole scan attempt hangs past its budget and is killed.
    Timeout,
    /// The tool process dies mid-scan (panic/segfault equivalent).
    Crash,
    /// One unit scan costs [`SLOWDOWN_COST`] virtual steps instead of 1;
    /// enough of them exhaust the attempt's step budget (emergent
    /// timeout).
    Slowdown,
    /// The finding list is truncated (tool dies while flushing output).
    Truncate,
    /// A unit's findings are flipped: reported findings dropped, or a
    /// spurious finding injected where the tool stayed silent.
    Flip,
}

impl FaultKind {
    /// Stable lowercase label (telemetry counter suffix, trace arg).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::Crash => "crash",
            FaultKind::Slowdown => "slowdown",
            FaultKind::Truncate => "truncate",
            FaultKind::Flip => "flip",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-site fault probabilities. Scan-level faults (timeout, truncate)
/// are rolled once per attempt; unit-level faults (crash, slowdown,
/// flip) once per `(attempt, unit)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Per-attempt probability that the whole scan times out outright.
    pub timeout: f64,
    /// Per-unit probability that the tool crashes on that unit.
    pub crash: f64,
    /// Per-unit probability that the unit costs [`SLOWDOWN_COST`] steps.
    pub slowdown: f64,
    /// Per-attempt probability that the finding list is truncated.
    pub truncate: f64,
    /// Per-unit probability that the unit's findings are flipped.
    pub flip: f64,
}

impl FaultRates {
    /// All-zero rates: the proxy becomes a transparent pass-through.
    #[must_use]
    pub fn none() -> Self {
        FaultRates {
            timeout: 0.0,
            crash: 0.0,
            slowdown: 0.0,
            truncate: 0.0,
            flip: 0.0,
        }
    }

    /// A tool that crashes on every attempt — the harshest availability
    /// test (used by the degraded-campaign regression tests).
    #[must_use]
    pub fn always_crash() -> Self {
        FaultRates {
            crash: 1.0,
            ..FaultRates::none()
        }
    }
}

/// Named fault profiles exposed on the `run_all` command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultProfile {
    /// No faults: the proxy is a transparent pass-through and the
    /// campaign transcript is byte-identical to an unwrapped run.
    #[default]
    None,
    /// Mild real-world flakiness: occasional timeouts and crashes that
    /// usually clear on retry, rare result corruption. Calibrated so a
    /// standard 32-scan campaign sees a handful of retries and at least
    /// one exhausted-retry failure.
    Flaky,
    /// An adversarial environment: most scans fail even after retries,
    /// surviving results are heavily corrupted. The campaign must still
    /// complete and render every artifact.
    Hostile,
}

impl FaultProfile {
    /// Stable lowercase label (CLI value, cache-key component).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Flaky => "flaky",
            FaultProfile::Hostile => "hostile",
        }
    }

    /// The profile's fault rates.
    #[must_use]
    pub fn rates(self) -> FaultRates {
        match self {
            FaultProfile::None => FaultRates::none(),
            // Per-attempt failure odds on a 600-unit workload:
            // timeout 0.15 ∪ crash 1−(1−0.0008)^600 ≈ 0.38 → ≈ 0.47;
            // all three attempts fail with p ≈ 0.11, so a 32-scan
            // campaign expects ~3–4 hard failures and plenty of retries.
            FaultProfile::Flaky => FaultRates {
                timeout: 0.15,
                crash: 0.0008,
                slowdown: 0.01,
                truncate: 0.10,
                flip: 0.01,
            },
            // Slowdown 0.08 > the ~0.048 emergent-timeout threshold, so
            // even attempts that dodge the direct faults usually blow the
            // step budget: availability collapses by design.
            FaultProfile::Hostile => FaultRates {
                timeout: 0.30,
                crash: 0.004,
                slowdown: 0.08,
                truncate: 0.30,
                flip: 0.05,
            },
        }
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(FaultProfile::None),
            "flaky" => Ok(FaultProfile::Flaky),
            "hostile" => Ok(FaultProfile::Hostile),
            other => Err(format!(
                "unknown fault profile '{other}' (expected none|flaky|hostile)"
            )),
        }
    }
}

/// A fault-injection configuration: a profile plus the seed its plan
/// derives every decision from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Which named profile's rates to inject.
    pub profile: FaultProfile,
    /// The base seed of the fault decision streams (independent of the
    /// experiment seed so workload and faults can be varied separately).
    pub seed: u64,
}

impl FaultConfig {
    /// Creates a configuration.
    #[must_use]
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultConfig { profile, seed }
    }

    /// Content fingerprint for cache keys: 0 is reserved for "no fault
    /// injection", every active configuration hashes profile and seed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        if self.profile == FaultProfile::None {
            return 0;
        }
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self
            .profile
            .label()
            .as_bytes()
            .iter()
            .chain(self.seed.to_le_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Never collide with the reserved value.
        h.max(1)
    }
}

/// The `fault.injected.*` counters on the process-wide telemetry
/// registry — always live, like every registry counter, so the
/// `BENCH_campaign.json` resilience section sees them even when span
/// recording is off.
struct FaultCounters {
    timeout: Arc<Counter>,
    crash: Arc<Counter>,
    slowdown: Arc<Counter>,
    truncate: Arc<Counter>,
    flip: Arc<Counter>,
}

fn counters() -> &'static FaultCounters {
    static COUNTERS: OnceLock<FaultCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = vdbench_telemetry::registry::global();
        FaultCounters {
            timeout: reg.counter("fault.injected.timeout"),
            crash: reg.counter("fault.injected.crash"),
            slowdown: reg.counter("fault.injected.slowdown"),
            truncate: reg.counter("fault.injected.truncate"),
            flip: reg.counter("fault.injected.flip"),
        }
    })
}

/// Counts one injected fault and drops a zero-length `faults/inject`
/// span into the trace (visible in the Chrome export when recording is
/// on; one relaxed atomic add when it is not).
fn record_injection(kind: FaultKind, tool: &str, detail: u64) {
    let c = counters();
    match kind {
        FaultKind::Timeout => c.timeout.inc(),
        FaultKind::Crash => c.crash.inc(),
        FaultKind::Slowdown => c.slowdown.inc(),
        FaultKind::Truncate => c.truncate.inc(),
        FaultKind::Flip => c.flip.inc(),
    }
    let _span = vdbench_telemetry::span!(
        "faults",
        "inject",
        kind = kind.label(),
        tool = tool,
        detail = detail
    );
}

/// Records a result-truncation injection (`dropped` findings lost). The
/// sharded scan driver applies truncation after the last shard, so the
/// bookkeeping lives here next to its siblings.
pub(crate) fn record_truncation(tool: &str, dropped: u64) {
    record_injection(FaultKind::Truncate, tool, dropped);
}

/// Scan-level fault decisions for one `(tool, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScanFaults {
    /// The whole attempt times out outright.
    timeout: bool,
    /// Fraction of the finding list kept, `None` when not truncated.
    keep_fraction: Option<f64>,
}

/// Unit-level fault decisions for one `(tool, attempt, unit)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UnitFaults {
    crash: bool,
    slowdown: bool,
    flip: bool,
}

/// A deterministic fault plan: rates plus the seed all decisions derive
/// from. Cheap to clone; decisions are computed on demand, never stored.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

/// Stream-label constants keeping the scan- and unit-level decision
/// streams disjoint (`derive_seed` index space).
const SCAN_STREAM: u64 = 0xFA01;
const UNIT_STREAM: u64 = 0xFA02;

impl FaultPlan {
    /// Builds the plan for a configuration.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            seed: config.seed,
            rates: config.profile.rates(),
        }
    }

    /// Builds a plan from explicit rates (tests, custom studies).
    #[must_use]
    pub fn with_rates(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { seed, rates }
    }

    /// The plan's rates.
    #[must_use]
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// FNV-1a hash of a tool name — the per-tool stream selector.
    fn tool_hash(tool: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in tool.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Per-`(tool, workload)` stream selector: the tool hash mixed with
    /// the workload's corpus seed, so the same tool draws *independent*
    /// fault decisions on different workloads (a campaign's four
    /// scenarios must not fail in lockstep) while staying a pure
    /// function of its inputs.
    fn stream_key(tool: &str, workload_seed: u64) -> u64 {
        Self::tool_hash(tool) ^ derive_seed(workload_seed, 0x5EED)
    }

    /// RNG for one decision site. Pure in `(seed, tool, stream, attempt,
    /// index)`.
    fn site_rng(&self, tool_h: u64, stream: u64, attempt: u32, index: u64) -> SeededRng {
        let base = derive_seed(self.seed ^ tool_h, stream ^ u64::from(attempt));
        SeededRng::new(derive_seed(base, index))
    }

    /// Scan-level decisions for one attempt.
    fn scan_faults(&self, tool_h: u64, attempt: u32) -> ScanFaults {
        let mut rng = self.site_rng(tool_h, SCAN_STREAM, attempt, 0);
        let timeout = rng.bernoulli(self.rates.timeout);
        let truncated = rng.bernoulli(self.rates.truncate);
        ScanFaults {
            timeout,
            keep_fraction: truncated.then(|| rng.uniform_in(0.25, 0.9)),
        }
    }

    /// Unit-level decisions for one `(attempt, unit)` site.
    fn unit_faults(&self, tool_h: u64, attempt: u32, unit: u64) -> UnitFaults {
        let mut rng = self.site_rng(tool_h, UNIT_STREAM, attempt, unit);
        UnitFaults {
            crash: rng.bernoulli(self.rates.crash),
            slowdown: rng.bernoulli(self.rates.slowdown),
            flip: rng.bernoulli(self.rates.flip),
        }
    }
}

/// Wraps a [`Detector`] and injects the plan's faults into its scans.
///
/// The proxy keeps the inner tool's name, so benchmark tables and
/// availability reports line up with the unwrapped roster. Fallible
/// faults (timeout, crash, emergent slowdown-timeout) surface only
/// through [`Detector::try_analyze_corpus`] — the resilient engine's
/// entry point; the infallible [`Detector::analyze`] path applies the
/// result-corruption faults (flip) but cannot fail, mirroring a harness
/// that only notices a dead tool at the scan boundary.
#[derive(Debug)]
pub struct FaultyDetector {
    inner: Box<dyn Detector>,
    plan: FaultPlan,
}

impl FaultyDetector {
    /// Wraps a tool with a fault plan.
    #[must_use]
    pub fn new(inner: Box<dyn Detector>, plan: FaultPlan) -> Self {
        FaultyDetector { inner, plan }
    }

    /// The wrapped tool.
    #[must_use]
    pub fn inner(&self) -> &dyn Detector {
        self.inner.as_ref()
    }

    /// Applies the flip fault to one unit's findings: reported findings
    /// are dropped; a silent unit gains one spurious finding at its
    /// first sink (if it has one).
    fn apply_flip(&self, unit: &Unit, unit_index: u64, findings: &mut Vec<Finding>) {
        if findings.is_empty() {
            if let Some((_, _, site)) = unit.sinks().into_iter().next() {
                findings.push(Finding::new(
                    site,
                    None,
                    0.5,
                    "fault-injected spurious finding",
                ));
            }
        } else {
            findings.clear();
        }
        record_injection(FaultKind::Flip, &self.inner.name(), unit_index);
    }
}

impl Detector for FaultyDetector {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn analyze(&self, corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let mut findings = self.inner.analyze(corpus, unit);
        // The decision stream is keyed on the unit's *global* id, which
        // equals its corpus position for whole corpora and stays correct
        // inside shards ([`Corpus::unit_base`] windows).
        let unit_index = u64::from(unit.id);
        if self
            .plan
            .unit_faults(
                FaultPlan::stream_key(&self.inner.name(), corpus.seed()),
                1,
                unit_index,
            )
            .flip
        {
            self.apply_flip(unit, unit_index, &mut findings);
        }
        findings
    }

    /// Scan-level fault rolls. An outright timeout still "ran" nothing,
    /// exactly like a tool killed before producing output; a truncate
    /// roll survives the whole scan in the prelude and is applied to the
    /// concatenated findings at the end — *after* the last shard — so
    /// shard boundaries cannot move the cut.
    fn begin_scan(&self, corpus_seed: u64, cx: &ScanContext) -> Result<ScanPrelude, ScanError> {
        let tool = self.inner.name();
        let tool_h = FaultPlan::stream_key(&tool, corpus_seed);
        let scan = self.plan.scan_faults(tool_h, cx.attempt);
        if scan.timeout {
            record_injection(FaultKind::Timeout, &tool, u64::from(cx.attempt));
            return Err(ScanError::Timeout {
                budget: cx.step_budget,
                spent: cx.step_budget.saturating_add(1),
            });
        }
        Ok(ScanPrelude {
            keep_fraction: scan.keep_fraction,
        })
    }

    /// Per-unit pass over one shard. Every decision is keyed on the
    /// unit's *global* id and evaluated (and counted) even when an
    /// earlier unit already doomed the attempt, so counters and
    /// downstream state are identical at any thread count and any shard
    /// size.
    fn analyze_shard(&self, shard: &Corpus, cx: &ScanContext) -> ShardScan {
        let tool = self.inner.name();
        let tool_h = FaultPlan::stream_key(&tool, shard.seed());
        let units = shard.units();
        let _span = vdbench_telemetry::span!(
            "detectors",
            "scan_corpus",
            tool = tool,
            units = units.len(),
            attempt = cx.attempt
        );

        struct UnitScan {
            steps: u64,
            crashed: Option<u64>,
            findings: Vec<Finding>,
        }
        let scans: Vec<UnitScan> = (0..units.len())
            .into_par_iter()
            .map(|i| {
                let _span = vdbench_telemetry::span!("detectors", "scan_unit");
                let global = u64::from(units[i].id);
                let faults = self.plan.unit_faults(tool_h, cx.attempt, global);
                let mut findings = self.inner.analyze(shard, &units[i]);
                if faults.flip {
                    self.apply_flip(&units[i], global, &mut findings);
                }
                let steps = if faults.slowdown {
                    record_injection(FaultKind::Slowdown, &tool, global);
                    SLOWDOWN_COST
                } else {
                    1
                };
                if faults.crash {
                    record_injection(FaultKind::Crash, &tool, global);
                }
                UnitScan {
                    steps,
                    crashed: faults.crash.then_some(global),
                    findings,
                }
            })
            .collect();

        let crash = scans
            .iter()
            .filter_map(|s| s.crashed)
            .min()
            .map(|unit| ScanError::Crash {
                unit: unit as usize,
                message: format!("injected crash while scanning unit {unit}"),
            });
        let steps: u64 = scans.iter().map(|s| s.steps).sum();
        let mut findings: Vec<Finding> = Vec::new();
        for s in scans {
            findings.extend(s.findings);
        }
        ShardScan {
            findings,
            steps,
            crash,
        }
    }

    fn try_analyze_corpus(
        &self,
        corpus: &Corpus,
        cx: &ScanContext,
    ) -> Result<Vec<Finding>, ScanError> {
        // The monolithic path is the sharded path with one shard — the
        // same two hooks, so the two can never drift apart.
        crate::shard::try_analyze_sharded(self, corpus.seed(), std::iter::once(corpus), cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternScanner;
    use vdbench_corpus::CorpusBuilder;

    #[test]
    fn profiles_parse_and_roundtrip() {
        for p in [
            FaultProfile::None,
            FaultProfile::Flaky,
            FaultProfile::Hostile,
        ] {
            assert_eq!(p.label().parse::<FaultProfile>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert!("weird".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn fingerprints_distinguish_configs_and_reserve_zero() {
        let none = FaultConfig::new(FaultProfile::None, 7);
        assert_eq!(none.fingerprint(), 0);
        let a = FaultConfig::new(FaultProfile::Flaky, 7);
        let b = FaultConfig::new(FaultProfile::Flaky, 8);
        let c = FaultConfig::new(FaultProfile::Hostile, 7);
        assert_ne!(a.fingerprint(), 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn decisions_are_pure_functions_of_their_site() {
        let plan = FaultPlan::new(FaultConfig::new(FaultProfile::Hostile, 0xF00D));
        let h = FaultPlan::tool_hash("some-tool");
        for attempt in 1..=3 {
            for unit in [0u64, 1, 17, 599] {
                let first = plan.unit_faults(h, attempt, unit);
                let again = plan.unit_faults(h, attempt, unit);
                assert_eq!(first, again, "attempt {attempt} unit {unit}");
            }
            assert_eq!(
                plan.scan_faults(h, attempt),
                plan.scan_faults(h, attempt),
                "attempt {attempt}"
            );
        }
        // Different attempts re-roll (at hostile rates, 64 sites differ
        // somewhere with near certainty).
        let differs = (0..64).any(|u| plan.unit_faults(h, 1, u) != plan.unit_faults(h, 2, u));
        assert!(differs, "attempts must draw independent streams");
        // Different tools draw independent streams.
        let other = FaultPlan::tool_hash("other-tool");
        let differs = (0..64).any(|u| plan.unit_faults(h, 1, u) != plan.unit_faults(other, 1, u));
        assert!(differs, "tools must draw independent streams");
    }

    #[test]
    fn none_profile_is_a_transparent_proxy() {
        let corpus = CorpusBuilder::new().units(40).seed(11).build();
        let bare = PatternScanner::aggressive();
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::new(FaultConfig::new(FaultProfile::None, 1)),
        );
        assert_eq!(wrapped.name(), bare.name());
        let cx = ScanContext {
            attempt: 1,
            step_budget: 4 * 40,
        };
        let faulty = wrapped.try_analyze_corpus(&corpus, &cx).unwrap();
        assert_eq!(faulty, bare.analyze_corpus(&corpus));
    }

    #[test]
    fn always_crash_fails_every_attempt() {
        let corpus = CorpusBuilder::new().units(10).seed(3).build();
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(9, FaultRates::always_crash()),
        );
        for attempt in 1..=5 {
            let cx = ScanContext {
                attempt,
                step_budget: 40,
            };
            match wrapped.try_analyze_corpus(&corpus, &cx) {
                Err(ScanError::Crash { unit, .. }) => assert_eq!(unit, 0, "lowest unit wins"),
                other => panic!("expected crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn slowdowns_exhaust_the_step_budget() {
        let corpus = CorpusBuilder::new().units(20).seed(5).build();
        let rates = FaultRates {
            slowdown: 1.0,
            ..FaultRates::none()
        };
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(2, rates),
        );
        let cx = ScanContext {
            attempt: 1,
            step_budget: 4 * 20,
        };
        match wrapped.try_analyze_corpus(&corpus, &cx) {
            Err(ScanError::Timeout { budget, spent }) => {
                assert_eq!(budget, 80);
                assert_eq!(spent, 20 * SLOWDOWN_COST);
            }
            other => panic!("expected emergent timeout, got {other:?}"),
        }
    }

    #[test]
    fn flip_corrupts_results_without_failing_the_scan() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.5)
            .seed(8)
            .build();
        let rates = FaultRates {
            flip: 1.0,
            ..FaultRates::none()
        };
        let bare = PatternScanner::aggressive();
        let clean = bare.analyze_corpus(&corpus);
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(4, rates),
        );
        let cx = ScanContext {
            attempt: 1,
            step_budget: 4 * 60,
        };
        let flipped = wrapped.try_analyze_corpus(&corpus, &cx).unwrap();
        assert_ne!(clean, flipped, "every unit flipped must change results");
        // Flipping is an involution on the reported-unit set: units the
        // clean tool reported are now silent and vice versa (where a
        // sink exists to plant the spurious finding on).
        let clean_units: std::collections::BTreeSet<u32> =
            clean.iter().map(|f| f.site.unit).collect();
        for f in &flipped {
            assert!(
                !clean_units.contains(&f.site.unit),
                "unit {} reported both clean and flipped",
                f.site.unit
            );
        }
    }

    #[test]
    fn truncate_keeps_a_prefix() {
        let corpus = CorpusBuilder::new()
            .units(80)
            .vulnerability_density(0.6)
            .seed(13)
            .build();
        let rates = FaultRates {
            truncate: 1.0,
            ..FaultRates::none()
        };
        let bare = PatternScanner::aggressive();
        let clean = bare.analyze_corpus(&corpus);
        let wrapped = FaultyDetector::new(
            Box::new(PatternScanner::aggressive()),
            FaultPlan::with_rates(6, rates),
        );
        let cx = ScanContext {
            attempt: 1,
            step_budget: 4 * 80,
        };
        let truncated = wrapped.try_analyze_corpus(&corpus, &cx).unwrap();
        assert!(truncated.len() < clean.len(), "must drop findings");
        assert_eq!(
            truncated.as_slice(),
            &clean[..truncated.len()],
            "truncation keeps a prefix in unit order"
        );
    }

    #[test]
    fn corpus_scan_is_thread_schedule_independent() {
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(0.4)
            .seed(21)
            .build();
        let plan = FaultPlan::new(FaultConfig::new(FaultProfile::Flaky, 0xABCD));
        let wrapped = FaultyDetector::new(Box::new(PatternScanner::aggressive()), plan.clone());
        let cx = ScanContext {
            attempt: 2,
            step_budget: 4 * 120,
        };
        let parallel = wrapped
            .try_analyze_corpus(&corpus, &cx)
            .expect("flaky seed 0xABCD attempt 2 survives on this workload");
        // Serial oracle: the documented per-unit semantics replayed one
        // unit at a time with the same pure decision streams.
        let inner = PatternScanner::aggressive();
        let tool_h = FaultPlan::stream_key(&inner.name(), corpus.seed());
        let scan = plan.scan_faults(tool_h, cx.attempt);
        assert!(!scan.timeout, "oracle assumes the scan-level roll passed");
        let mut serial: Vec<Finding> = Vec::new();
        for (i, unit) in corpus.units().iter().enumerate() {
            let faults = plan.unit_faults(tool_h, cx.attempt, i as u64);
            assert!(!faults.crash, "oracle assumes no crash on this seed");
            let mut findings = inner.analyze(&corpus, unit);
            if faults.flip {
                if findings.is_empty() {
                    if let Some((_, _, site)) = unit.sinks().into_iter().next() {
                        findings.push(Finding::new(
                            site,
                            None,
                            0.5,
                            "fault-injected spurious finding",
                        ));
                    }
                } else {
                    findings.clear();
                }
            }
            serial.extend(findings);
        }
        if let Some(keep) = scan.keep_fraction {
            serial.truncate(((serial.len() as f64) * keep).floor() as usize);
        }
        assert_eq!(
            parallel, serial,
            "parallel scan must match the serial oracle"
        );
    }
}
