//! The [`Detector`] trait.

use crate::finding::Finding;
use crate::resilient::ScanError;
use rayon::prelude::*;
use vdbench_corpus::{Corpus, Unit};

/// Context of one fallible scan attempt (see
/// [`Detector::try_analyze_corpus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanContext {
    /// 1-based attempt number; retries re-roll deterministic fault
    /// decisions through it.
    pub attempt: u32,
    /// Virtual step budget for this attempt (a nominal unit scan costs
    /// one step).
    pub step_budget: u64,
}

/// Scan-wide decisions made once per attempt, before any shard is
/// visited (see [`Detector::begin_scan`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScanPrelude {
    /// When set, only this prefix fraction of the concatenated findings
    /// survives the scan (fault-injected result truncation). `None` for
    /// honest tools.
    pub keep_fraction: Option<f64>,
}

/// Result of scanning one shard (see [`Detector::analyze_shard`]).
#[derive(Debug, Clone)]
pub struct ShardScan {
    /// Findings for the shard's units, in unit order.
    pub findings: Vec<Finding>,
    /// Virtual steps the shard cost (a nominal unit scan costs one).
    pub steps: u64,
    /// A crash observed inside the shard, if any. The driver keeps
    /// scanning remaining shards (fault bookkeeping must not depend on
    /// shard boundaries) and reports the crash with the lowest unit index.
    pub crash: Option<ScanError>,
}

/// A vulnerability detection tool.
///
/// Tools receive one [`Unit`] at a time plus the owning [`Corpus`] for
/// context. Honest analyzers look only at the unit's code; the
/// [`crate::ProfileTool`] emulation harness additionally reads ground truth
/// to realize a prescribed operating point (documented there).
pub trait Detector: std::fmt::Debug + Send + Sync {
    /// Short stable tool name used in benchmark tables ("taint-d2",
    /// "pentest-64", …).
    fn name(&self) -> String;

    /// Analyzes one unit and returns the findings.
    fn analyze(&self, corpus: &Corpus, unit: &Unit) -> Vec<Finding>;

    /// Analyzes a whole corpus: units are scanned on the rayon pool and
    /// the findings concatenated in unit order.
    ///
    /// Every [`Detector`] in this workspace is a pure function of
    /// `(corpus, unit, configuration)`, so the parallel scan returns
    /// exactly the serial result; `RAYON_NUM_THREADS=1` forces the serial
    /// path (used by the determinism regression tests).
    ///
    /// Findings are folded into **one accumulator per worker** and the
    /// per-worker vectors concatenated in chunk order — the old
    /// `Vec<Vec<Finding>>` intermediate (one allocation per unit, most of
    /// them empty) is gone, and because workers own contiguous unit
    /// ranges the concatenation preserves unit order exactly.
    ///
    /// When telemetry recording is on, the whole scan is wrapped in a
    /// `detectors/scan_corpus` span and each unit in a
    /// `detectors/scan_unit` span on the worker's own track, so the trace
    /// shows the per-tool schedule exactly as the pool ran it.
    fn analyze_corpus(&self, corpus: &Corpus) -> Vec<Finding> {
        let _span = vdbench_telemetry::span!(
            "detectors",
            "scan_corpus",
            tool = self.name(),
            units = corpus.units().len()
        );
        corpus
            .units()
            .par_iter()
            .fold(Vec::new, |mut acc: Vec<Finding>, u| {
                let _span = vdbench_telemetry::span!("detectors", "scan_unit");
                acc.extend(self.analyze(corpus, u));
                acc
            })
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            })
    }

    /// Fallible whole-corpus scan — the resilient engine's entry point.
    ///
    /// The default implementation charges one virtual step per unit
    /// against the context's budget and otherwise delegates to
    /// [`Detector::analyze_corpus`]: an honest in-process tool cannot
    /// crash, and only times out when the budget is set below one step
    /// per unit. [`crate::FaultyDetector`] overrides this to inject
    /// timeouts, crashes, slowdowns and result corruption
    /// deterministically (see [`crate::fault`]).
    ///
    /// # Errors
    ///
    /// Returns [`ScanError`] when the attempt times out or the tool
    /// crashes.
    fn try_analyze_corpus(
        &self,
        corpus: &Corpus,
        cx: &ScanContext,
    ) -> Result<Vec<Finding>, ScanError> {
        let spent = corpus.units().len() as u64;
        if spent > cx.step_budget {
            return Err(ScanError::Timeout {
                budget: cx.step_budget,
                spent,
            });
        }
        Ok(self.analyze_corpus(corpus))
    }

    /// Scan-wide decisions made once per attempt, before any shard.
    ///
    /// `corpus_seed` identifies the workload ([`Corpus::seed`] — identical
    /// for every shard of one streamed corpus), so fault decisions keyed
    /// on it are independent of shard boundaries. Honest tools have no
    /// scan-wide state; [`crate::FaultyDetector`] overrides this to roll
    /// its outright-timeout and result-truncation faults exactly as the
    /// monolithic path does.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError`] when the attempt fails before scanning
    /// (fault-injected outright timeout).
    fn begin_scan(&self, corpus_seed: u64, cx: &ScanContext) -> Result<ScanPrelude, ScanError> {
        let _ = (corpus_seed, cx);
        Ok(ScanPrelude::default())
    }

    /// Scans one shard of a streamed corpus.
    ///
    /// The shard's site ids are global ([`Corpus::unit_base`]), so
    /// per-unit decisions keyed on `Unit::id` are identical however the
    /// corpus is sharded. The default implementation is the honest path:
    /// one step per unit, no crash, findings from
    /// [`Detector::analyze_corpus`].
    fn analyze_shard(&self, shard: &Corpus, cx: &ScanContext) -> ShardScan {
        let _ = cx;
        ShardScan {
            findings: self.analyze_corpus(shard),
            steps: shard.units().len() as u64,
            crash: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_corpus::CorpusBuilder;

    /// A detector that reports nothing — the "silent" baseline.
    #[derive(Debug)]
    struct Silent;

    impl Detector for Silent {
        fn name(&self) -> String {
            "silent".into()
        }
        fn analyze(&self, _corpus: &Corpus, _unit: &Unit) -> Vec<Finding> {
            Vec::new()
        }
    }

    #[test]
    fn default_corpus_analysis_covers_all_units() {
        let corpus = CorpusBuilder::new().units(10).seed(1).build();
        let findings = Silent.analyze_corpus(&corpus);
        assert!(findings.is_empty());
        assert_eq!(Silent.name(), "silent");
    }

    #[test]
    fn detector_is_object_safe() {
        let tools: Vec<Box<dyn Detector>> = vec![Box::new(Silent)];
        assert_eq!(tools[0].name(), "silent");
    }

    #[test]
    fn default_fallible_scan_charges_one_step_per_unit() {
        let corpus = CorpusBuilder::new().units(10).seed(2).build();
        let ok = Silent.try_analyze_corpus(
            &corpus,
            &ScanContext {
                attempt: 1,
                step_budget: 10,
            },
        );
        assert_eq!(ok.unwrap(), Vec::new());
        let starved = Silent.try_analyze_corpus(
            &corpus,
            &ScanContext {
                attempt: 1,
                step_budget: 9,
            },
        );
        assert!(matches!(
            starved,
            Err(ScanError::Timeout {
                budget: 9,
                spent: 10
            })
        ));
    }
}
