//! The [`Detector`] trait.

use crate::finding::Finding;
use crate::resilient::ScanError;
use rayon::prelude::*;
use vdbench_corpus::{Corpus, Unit};

/// Context of one fallible scan attempt (see
/// [`Detector::try_analyze_corpus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanContext {
    /// 1-based attempt number; retries re-roll deterministic fault
    /// decisions through it.
    pub attempt: u32,
    /// Virtual step budget for this attempt (a nominal unit scan costs
    /// one step).
    pub step_budget: u64,
}

/// A vulnerability detection tool.
///
/// Tools receive one [`Unit`] at a time plus the owning [`Corpus`] for
/// context. Honest analyzers look only at the unit's code; the
/// [`crate::ProfileTool`] emulation harness additionally reads ground truth
/// to realize a prescribed operating point (documented there).
pub trait Detector: std::fmt::Debug + Send + Sync {
    /// Short stable tool name used in benchmark tables ("taint-d2",
    /// "pentest-64", …).
    fn name(&self) -> String;

    /// Analyzes one unit and returns the findings.
    fn analyze(&self, corpus: &Corpus, unit: &Unit) -> Vec<Finding>;

    /// Analyzes a whole corpus: units are scanned on the rayon pool and
    /// the findings concatenated in unit order.
    ///
    /// Every [`Detector`] in this workspace is a pure function of
    /// `(corpus, unit, configuration)`, so the parallel scan returns
    /// exactly the serial result; `RAYON_NUM_THREADS=1` forces the serial
    /// path (used by the determinism regression tests).
    ///
    /// Findings are folded into **one accumulator per worker** and the
    /// per-worker vectors concatenated in chunk order — the old
    /// `Vec<Vec<Finding>>` intermediate (one allocation per unit, most of
    /// them empty) is gone, and because workers own contiguous unit
    /// ranges the concatenation preserves unit order exactly.
    ///
    /// When telemetry recording is on, the whole scan is wrapped in a
    /// `detectors/scan_corpus` span and each unit in a
    /// `detectors/scan_unit` span on the worker's own track, so the trace
    /// shows the per-tool schedule exactly as the pool ran it.
    fn analyze_corpus(&self, corpus: &Corpus) -> Vec<Finding> {
        let _span = vdbench_telemetry::span!(
            "detectors",
            "scan_corpus",
            tool = self.name(),
            units = corpus.units().len()
        );
        corpus
            .units()
            .par_iter()
            .fold(Vec::new, |mut acc: Vec<Finding>, u| {
                let _span = vdbench_telemetry::span!("detectors", "scan_unit");
                acc.extend(self.analyze(corpus, u));
                acc
            })
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            })
    }

    /// Fallible whole-corpus scan — the resilient engine's entry point.
    ///
    /// The default implementation charges one virtual step per unit
    /// against the context's budget and otherwise delegates to
    /// [`Detector::analyze_corpus`]: an honest in-process tool cannot
    /// crash, and only times out when the budget is set below one step
    /// per unit. [`crate::FaultyDetector`] overrides this to inject
    /// timeouts, crashes, slowdowns and result corruption
    /// deterministically (see [`crate::fault`]).
    ///
    /// # Errors
    ///
    /// Returns [`ScanError`] when the attempt times out or the tool
    /// crashes.
    fn try_analyze_corpus(
        &self,
        corpus: &Corpus,
        cx: &ScanContext,
    ) -> Result<Vec<Finding>, ScanError> {
        let spent = corpus.units().len() as u64;
        if spent > cx.step_budget {
            return Err(ScanError::Timeout {
                budget: cx.step_budget,
                spent,
            });
        }
        Ok(self.analyze_corpus(corpus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdbench_corpus::CorpusBuilder;

    /// A detector that reports nothing — the "silent" baseline.
    #[derive(Debug)]
    struct Silent;

    impl Detector for Silent {
        fn name(&self) -> String {
            "silent".into()
        }
        fn analyze(&self, _corpus: &Corpus, _unit: &Unit) -> Vec<Finding> {
            Vec::new()
        }
    }

    #[test]
    fn default_corpus_analysis_covers_all_units() {
        let corpus = CorpusBuilder::new().units(10).seed(1).build();
        let findings = Silent.analyze_corpus(&corpus);
        assert!(findings.is_empty());
        assert_eq!(Silent.name(), "silent");
    }

    #[test]
    fn detector_is_object_safe() {
        let tools: Vec<Box<dyn Detector>> = vec![Box::new(Silent)];
        assert_eq!(tools[0].name(), "silent");
    }

    #[test]
    fn default_fallible_scan_charges_one_step_per_unit() {
        let corpus = CorpusBuilder::new().units(10).seed(2).build();
        let ok = Silent.try_analyze_corpus(
            &corpus,
            &ScanContext {
                attempt: 1,
                step_budget: 10,
            },
        );
        assert_eq!(ok.unwrap(), Vec::new());
        let starved = Silent.try_analyze_corpus(
            &corpus,
            &ScanContext {
                attempt: 1,
                step_budget: 9,
            },
        );
        assert!(matches!(
            starved,
            Err(ScanError::Timeout {
                budget: 9,
                spent: 10
            })
        ));
    }
}
