//! Vulnerability detection tools over the MiniWeb corpus.
//!
//! The paper benchmarks several families of real tools (static analyzers
//! and penetration testers). This crate implements the equivalent families
//! as actual analyzers whose false positives and false negatives arise from
//! *mechanistic* causes, not coin flips:
//!
//! * [`PatternScanner`] — a lexical/AST signature tool: high recall, low
//!   precision, fooled by mismatched sanitizers, flags dead code;
//! * [`TaintAnalyzer`] — a real forward dataflow taint analysis with
//!   branch joins, loop fixpoints and bounded call-depth inlining;
//!   path-insensitive (false positives on dead guards), configurable
//!   sanitizer precision and call depth;
//! * [`DynamicScanner`] — a pentest-style tool driving the MiniWeb
//!   interpreter with payload-spraying requests and a gate dictionary:
//!   high precision, recall limited by coverage budget;
//! * [`ProfileTool`] — a parameterized emulation of an arbitrary tool
//!   operating point, used by experiments that need exact control.
//!
//! Tools implement [`Detector`]; [`score::score_detector`] runs one over a
//! corpus and scores it against ground truth into confusion matrices.
//!
//! Real tools also time out, crash and return flaky results. [`fault`]
//! injects those behaviours deterministically into any tool through the
//! [`FaultyDetector`] proxy, and [`resilient`] runs scans with retries,
//! step budgets and explicit [`ScanOutcome`] failure records — the
//! building blocks of the campaign engine's graceful degradation (see
//! DESIGN.md §12).
//!
//! ```
//! use vdbench_corpus::CorpusBuilder;
//! use vdbench_detectors::{score_detector, TaintAnalyzer, PatternScanner, Detector};
//!
//! let corpus = CorpusBuilder::new().units(60).seed(3).build();
//! let taint = score_detector(&TaintAnalyzer::default(), &corpus);
//! let pattern = score_detector(&PatternScanner::aggressive(), &corpus);
//! // The pattern tool reports more (higher recall, more false positives).
//! assert!(pattern.confusion().fp >= taint.confusion().fp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod dynamic;
pub mod fault;
pub mod finding;
pub mod pattern;
pub mod profile;
pub mod resilient;
pub mod score;
pub mod shard;
pub mod taint;

pub use detector::{Detector, ScanContext, ScanPrelude, ShardScan};
pub use dynamic::DynamicScanner;
pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultProfile, FaultRates, FaultyDetector};
pub use finding::Finding;
pub use pattern::PatternScanner;
pub use profile::ProfileTool;
pub use resilient::{score_detector_resilient, ScanError, ScanOutcome, ScanPolicy};
pub use score::{score_detector, score_findings, DetectionOutcome, SiteOutcome};
pub use shard::try_analyze_sharded;
pub use taint::TaintAnalyzer;
