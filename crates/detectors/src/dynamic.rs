//! The dynamic (penetration-testing) scanner.
//!
//! Models black-box web scanners: crawl the input surface, spray attack
//! payloads, and report a vulnerability only when an attack demonstrably
//! reaches a sink un-neutralized: taint confirmed, the payload observed
//! verbatim at the sink, **and** the response signature matching the
//! payload's class (an SQL payload reflected into HTML is not proof of SQL
//! injection). This gives the
//! pentesting profile the paper describes: near-perfect precision, recall
//! limited by coverage:
//!
//! * input-gated sinks are found only if the gate dictionary guesses the
//!   gate value;
//! * pattern-class defects (hardcoded credentials, weak hashes) are
//!   invisible at runtime;
//! * the request budget bounds how much of the input space is explored.

use crate::detector::Detector;
use crate::finding::Finding;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use vdbench_corpus::{
    CompiledUnit, Corpus, InterpScratch, Interpreter, Request, SinkKind, SinkObservation, Unit,
    VulnClass,
};
use vdbench_telemetry::registry::Counter;

/// Always-live counter of attack sessions that collapsed onto an earlier
/// identical session and were therefore never re-executed
/// (`scan.sessions.deduped` in the telemetry registry — surfaces in
/// `run_all --timings` and `BENCH_campaign.json` for free).
fn deduped_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| vdbench_telemetry::registry::global().counter("scan.sessions.deduped"))
}

/// The vulnerability class a sink's response signature indicates.
fn class_for_sink(kind: SinkKind) -> Option<VulnClass> {
    match kind {
        SinkKind::SqlQuery => Some(VulnClass::SqlInjection),
        SinkKind::HtmlOutput => Some(VulnClass::Xss),
        SinkKind::ShellExec => Some(VulnClass::CommandInjection),
        SinkKind::FileOpen => Some(VulnClass::PathTraversal),
        SinkKind::Authenticate | SinkKind::CryptoHash => None,
    }
}

/// Attack payloads sprayed by the scanner, with the class each one probes.
const PAYLOADS: [(&str, VulnClass); 4] = [
    ("x' OR '1'='1", VulnClass::SqlInjection),
    ("<script>alert(1)</script>", VulnClass::Xss),
    ("; cat /etc/passwd", VulnClass::CommandInjection),
    ("../../etc/passwd", VulnClass::PathTraversal),
];

/// The scanner's dictionary of common gate values (what a wordlist would
/// try for mode/debug/action parameters).
const GATE_DICTIONARY: [&str; 9] = [
    "1", "true", "debug", "admin", "yes", "full", "0", "test", "save",
];

/// Budgeted black-box scanner.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{score_detector, DynamicScanner};
///
/// let corpus = CorpusBuilder::new().units(40).seed(9).build();
/// let outcome = score_detector(&DynamicScanner::quick(), &corpus);
/// // The proof-of-exploit oracle never raises a false alarm.
/// assert_eq!(outcome.confusion().fp, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicScanner {
    request_budget: usize,
    use_gate_dictionary: bool,
    two_phase: bool,
}

impl DynamicScanner {
    /// A quick scan: payload sprays only, no gate dictionary.
    pub fn quick() -> Self {
        DynamicScanner {
            request_budget: 6,
            use_gate_dictionary: false,
            two_phase: false,
        }
    }

    /// A thorough scan: payload sprays plus the gate dictionary, 96
    /// requests per unit.
    pub fn thorough() -> Self {
        DynamicScanner {
            request_budget: 96,
            use_gate_dictionary: true,
            two_phase: false,
        }
    }

    /// A stateful scan: like [`DynamicScanner::thorough`] but each attack
    /// request is followed by a plain *trigger* request in the same
    /// session, exposing second-order flows through the store. Twice the
    /// request budget pays for the replay.
    pub fn stateful() -> Self {
        DynamicScanner {
            request_budget: 192,
            use_gate_dictionary: true,
            two_phase: true,
        }
    }

    /// Custom budget.
    ///
    /// # Panics
    ///
    /// Panics if `request_budget == 0`.
    pub fn with_budget(request_budget: usize, use_gate_dictionary: bool) -> Self {
        assert!(request_budget > 0, "scanner needs at least one request");
        DynamicScanner {
            request_budget,
            use_gate_dictionary,
            two_phase: false,
        }
    }

    /// The per-unit request budget.
    pub fn request_budget(&self) -> usize {
        self.request_budget
    }

    /// Builds the deduplicated attack plan for one unit, in priority
    /// order. Sprayed attacks that collapse to identical sessions (the
    /// gate-dictionary phase re-derives the payload sprays whenever a
    /// unit's surface is small) are planned **once**: they execute one
    /// interpreter trace, carry every payload probe that mapped onto
    /// them, and are charged against the request budget exactly once —
    /// `request_budget` bounds requests actually *sent*, not probes
    /// sprayed.
    fn plan(&self, unit: &Unit) -> AttackPlan {
        let surface = unit.referenced_sources();
        let mut attacks: Vec<(Request, &'static str)> = Vec::new();
        // Phase 1: spray each payload across the whole surface.
        for (payload, _) in PAYLOADS {
            let mut req = Request::new();
            for (kind, name) in &surface {
                req.set(*kind, name.clone(), payload);
            }
            attacks.push((req, payload));
        }
        // Phase 2: for each candidate gate input, fix it to a dictionary
        // value and spray payloads on everything else.
        if self.use_gate_dictionary {
            for (gate_kind, gate_name) in &surface {
                for dict_val in GATE_DICTIONARY {
                    for (payload, _) in PAYLOADS {
                        let mut req = Request::new();
                        for (kind, name) in &surface {
                            req.set(*kind, name.clone(), payload);
                        }
                        req.set(*gate_kind, gate_name.clone(), dict_val);
                        attacks.push((req, payload));
                    }
                }
            }
        }
        // Realize the budget in *unique* sessions, expanding to
        // two-request sessions (attack, then plain trigger) in stateful
        // mode. A session whose fingerprint matches an already-planned
        // one merges its probe for free; a novel session is admitted only
        // while the budget holds (later duplicates of admitted sessions
        // still merge — they cost nothing to observe).
        let per_session = if self.two_phase { 2 } else { 1 };
        let mut plan = AttackPlan::default();
        let mut index_by_fingerprint: BTreeMap<u64, usize> = BTreeMap::new();
        for (req, payload) in attacks {
            let session = if self.two_phase {
                vec![req, Request::new()]
            } else {
                vec![req]
            };
            let fingerprint = session_fingerprint(&session);
            if let Some(&index) = index_by_fingerprint.get(&fingerprint) {
                plan.deduped += 1;
                plan.probes.push((index, payload));
            } else if plan.charged_requests + per_session <= self.request_budget {
                let index = plan.sessions.len();
                index_by_fingerprint.insert(fingerprint, index);
                plan.sessions.push(session);
                plan.charged_requests += per_session;
                plan.probes.push((index, payload));
            }
        }
        plan
    }
}

/// Stable fingerprint of a whole attack session: the per-request content
/// fingerprints ([`Request::fingerprint`]) folded in order.
fn session_fingerprint(session: &[Request]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for req in session {
        h ^= req.fingerprint();
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The deduplicated attack plan for one unit.
#[derive(Debug, Default)]
struct AttackPlan {
    /// Unique attack sessions in first-appearance (priority) order; each
    /// executes exactly one interpreter trace.
    sessions: Vec<Vec<Request>>,
    /// Payload probes in original spray order: `(session index, payload)`.
    /// Several probes may share one session — they all read the same
    /// memoized trace.
    probes: Vec<(usize, &'static str)>,
    /// Requests charged against the budget (unique sessions × requests
    /// per session) — what the scanner would actually send on the wire.
    charged_requests: usize,
    /// Sprayed sessions that collapsed onto an earlier identical session.
    deduped: usize,
}

impl Default for DynamicScanner {
    /// The thorough profile.
    fn default() -> Self {
        DynamicScanner::thorough()
    }
}

impl Detector for DynamicScanner {
    fn name(&self) -> String {
        format!(
            "pentest-{}{}{}",
            self.request_budget,
            if self.use_gate_dictionary {
                "-dict"
            } else {
                ""
            },
            if self.two_phase { "-2ph" } else { "" }
        )
    }

    fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let interp = Interpreter::default();
        let mut scratch = InterpScratch::new();
        self.analyze_with(&interp, unit, &mut scratch)
    }

    /// Scans the whole corpus on the rayon pool, sharing one
    /// [`Interpreter`] across all units and one [`InterpScratch`] per
    /// worker. The interpreter is a stateless bundle of execution limits,
    /// so sharing it is free and thread-safe; the scratch (pooled
    /// environment frames plus the session store) is carried across the
    /// worker's whole contiguous run of units, so steady-state scanning
    /// performs no environment allocation at all. Findings are folded
    /// per worker and concatenated in unit order, identical to the serial
    /// scan.
    fn analyze_corpus(&self, corpus: &Corpus) -> Vec<Finding> {
        let _span = vdbench_telemetry::span!(
            "detectors",
            "scan_corpus",
            tool = self.name(),
            units = corpus.units().len()
        );
        let interp = Interpreter::default();
        corpus
            .units()
            .par_iter()
            .fold(
                || (Vec::new(), InterpScratch::new()),
                |(mut acc, mut scratch): (Vec<Finding>, InterpScratch), u| {
                    let _span = vdbench_telemetry::span!("detectors", "scan_unit");
                    acc.extend(self.analyze_with(&interp, u, &mut scratch));
                    (acc, scratch)
                },
            )
            .reduce(
                || (Vec::new(), InterpScratch::new()),
                |(mut a, scratch), (b, _)| {
                    a.extend(b);
                    (a, scratch)
                },
            )
            .0
    }
}

impl DynamicScanner {
    /// Scans one unit with a caller-provided interpreter and execution
    /// scratch (both hoisted out of the per-unit loop by
    /// [`Detector::analyze_corpus`]). The unit is compiled **once**, the
    /// attack plan is deduplicated ([`DynamicScanner::plan`]), and each
    /// *unique* session executes exactly one interpreter trace; every
    /// payload probe — including the sprays that collapsed onto a shared
    /// session — then reads its memoized trace. Per-session cost is pure
    /// execution: no name lookups, no body clones, no environment
    /// allocation (frames recycle through `scratch`), and never the same
    /// session twice.
    fn analyze_with(
        &self,
        interp: &Interpreter,
        unit: &Unit,
        scratch: &mut InterpScratch,
    ) -> Vec<Finding> {
        let compiled = CompiledUnit::compile(unit);
        let plan = self.plan(unit);
        if plan.deduped > 0 {
            deduped_counter().add(plan.deduped as u64);
        }
        // Memoized traces, one per unique session (plan order). Execution
        // failures (runaway loops, malformed units) are a scanner
        // non-result, not a crash: their probes simply observe nothing.
        let traces: Vec<Option<Vec<SinkObservation>>> = plan
            .sessions
            .iter()
            .map(|session| interp.run_compiled(&compiled, session, scratch).ok())
            .collect();
        let mut confirmed: BTreeMap<_, (&'static str, SinkKind)> = BTreeMap::new();
        for (index, payload) in plan.probes {
            let Some(observations) = &traces[index] else {
                continue;
            };
            for obs in observations {
                // Proof of exploit: the sink received data still tainted
                // for it, our payload survived verbatim, and the response
                // signature matches the payload's class.
                let payload_class = PAYLOADS
                    .iter()
                    .find(|(p, _)| *p == payload)
                    .map(|(_, c)| *c);
                let sink_class = class_for_sink(obs.kind);
                if obs.tainted && obs.rendered.contains(payload) && payload_class == sink_class {
                    confirmed.entry(obs.site).or_insert((payload, obs.kind));
                }
            }
        }
        confirmed
            .into_iter()
            .map(|(site, (payload, kind))| {
                let class = PAYLOADS
                    .iter()
                    .find(|(p, _)| *p == payload)
                    .map(|(_, c)| *c);
                Finding::new(
                    site,
                    class,
                    0.95,
                    format!(
                        "payload {payload:?} reached {} un-neutralized",
                        kind.keyword()
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::score_detector;
    use vdbench_corpus::{CorpusBuilder, FlowShape};
    use vdbench_metrics::basic::{Precision, Recall};
    use vdbench_metrics::metric::Metric;

    #[test]
    fn near_perfect_precision() {
        let corpus = CorpusBuilder::new()
            .units(300)
            .vulnerability_density(0.35)
            .seed(41)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let cm = outcome.confusion();
        assert!(cm.tp > 0);
        let precision = Precision.compute(&cm).unwrap();
        assert!(
            precision > 0.99,
            "pentesting must not produce false alarms: {cm}"
        );
    }

    #[test]
    fn dead_guards_are_true_negatives() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.0)
            .decoy_rate(1.0)
            .classes(vec![VulnClass::SqlInjection])
            .seed(42)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        assert_eq!(outcome.confusion().fp, 0);
    }

    #[test]
    fn gate_dictionary_raises_recall_on_gated_flows() {
        let corpus = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(1.0)
            .gate_obscurity(0.0) // every gate guessable
            .classes(vec![VulnClass::Xss])
            .seed(43)
            .build();
        let quick = score_detector(&DynamicScanner::quick(), &corpus);
        let thorough = score_detector(&DynamicScanner::thorough(), &corpus);
        let gated_quick = quick.confusion_for_shape(FlowShape::InputGated);
        let gated_thorough = thorough.confusion_for_shape(FlowShape::InputGated);
        assert_eq!(
            gated_quick.tp, 0,
            "without the dictionary, gates stay closed: {gated_quick}"
        );
        assert!(
            gated_thorough.tpr() > 0.8,
            "dictionary opens guessable gates: {gated_thorough}"
        );
    }

    #[test]
    fn obscure_gates_stay_hidden() {
        let corpus = CorpusBuilder::new()
            .units(150)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(1.0)
            .gate_obscurity(1.0) // every gate unguessable
            .classes(vec![VulnClass::SqlInjection])
            .seed(44)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let gated = outcome.confusion_for_shape(FlowShape::InputGated);
        assert_eq!(
            gated.tp, 0,
            "obscure gates must defeat the scanner: {gated}"
        );
    }

    #[test]
    fn pattern_classes_invisible_at_runtime() {
        let corpus = CorpusBuilder::new()
            .units(100)
            .vulnerability_density(0.8)
            .classes(vec![VulnClass::WeakHash, VulnClass::HardcodedCredentials])
            .seed(45)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        assert_eq!(outcome.confusion().tp, 0);
    }

    #[test]
    fn mismatched_sanitizers_exposed_dynamically() {
        // The dynamic scanner is the tool that *does* catch disguised
        // vulnerabilities: the payload demonstrably survives the wrong
        // sanitizer.
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .stored_rate(0.0)
            .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
            .seed(46)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let recall = Recall.compute(&outcome.confusion()).unwrap();
        assert!(
            recall > 0.9,
            "disguises don't fool execution: recall {recall}"
        );
    }

    #[test]
    fn duplicate_sessions_plan_once_and_ride_free() {
        let corpus = CorpusBuilder::new().units(80).seed(47).build();
        let scanner = DynamicScanner::thorough();
        let unit = corpus
            .units()
            .iter()
            .find(|u| u.referenced_sources().len() == 1)
            .expect("the generator produces single-input units");
        let plan = scanner.plan(unit);
        // A single-input surface makes the gate-dictionary phase re-derive
        // the same request for every payload: duplicates must merge.
        assert!(plan.deduped > 0, "single-input units collapse sprays");
        // Unique sessions are pairwise distinct by fingerprint.
        let fingerprints: std::collections::BTreeSet<u64> = plan
            .sessions
            .iter()
            .map(|s| session_fingerprint(s))
            .collect();
        assert_eq!(fingerprints.len(), plan.sessions.len());
        // Every probe points at a planned session; merged probes keep
        // their payload oracles without re-executing anything.
        assert!(plan.probes.iter().all(|(i, _)| *i < plan.sessions.len()));
        assert_eq!(plan.probes.len(), plan.sessions.len() + plan.deduped);
    }

    #[test]
    fn budget_charges_deduplicated_sessions_once() {
        let corpus = CorpusBuilder::new().units(40).seed(48).build();
        for unit in corpus.units() {
            // Single-request modes: the charge is exactly the number of
            // unique sessions, and it never exceeds the budget.
            for scanner in [
                DynamicScanner::quick(),
                DynamicScanner::thorough(),
                DynamicScanner::with_budget(2, true),
            ] {
                let plan = scanner.plan(unit);
                assert_eq!(plan.charged_requests, plan.sessions.len());
                assert!(plan.charged_requests <= scanner.request_budget());
            }
            // Stateful mode charges two requests (attack + trigger) per
            // unique session.
            let plan = DynamicScanner::stateful().plan(unit);
            assert_eq!(plan.charged_requests, 2 * plan.sessions.len());
            assert!(plan.charged_requests <= DynamicScanner::stateful().request_budget());
        }
    }

    #[test]
    fn dedup_counter_increments_on_scan() {
        let before = deduped_counter().get();
        let corpus = CorpusBuilder::new().units(50).seed(49).build();
        let _ = score_detector(&DynamicScanner::thorough(), &corpus);
        assert!(
            deduped_counter().get() > before,
            "a 50-unit corpus must contain at least one collapsible spray"
        );
    }

    #[test]
    fn budget_ordering_and_names() {
        assert_eq!(DynamicScanner::quick().name(), "pentest-6");
        assert_eq!(DynamicScanner::thorough().name(), "pentest-96-dict");
        assert_eq!(DynamicScanner::default(), DynamicScanner::thorough());
        assert_eq!(DynamicScanner::quick().request_budget(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_budget_panics() {
        let _ = DynamicScanner::with_budget(0, false);
    }
}
