//! The dynamic (penetration-testing) scanner.
//!
//! Models black-box web scanners: crawl the input surface, spray attack
//! payloads, and report a vulnerability only when an attack demonstrably
//! reaches a sink un-neutralized: taint confirmed, the payload observed
//! verbatim at the sink, **and** the response signature matching the
//! payload's class (an SQL payload reflected into HTML is not proof of SQL
//! injection). This gives the
//! pentesting profile the paper describes: near-perfect precision, recall
//! limited by coverage:
//!
//! * input-gated sinks are found only if the gate dictionary guesses the
//!   gate value;
//! * pattern-class defects (hardcoded credentials, weak hashes) are
//!   invisible at runtime;
//! * the request budget bounds how much of the input space is explored.

use crate::detector::Detector;
use crate::finding::Finding;
use rayon::prelude::*;
use std::collections::BTreeMap;
use vdbench_corpus::{
    CompiledUnit, Corpus, InterpScratch, Interpreter, Request, SinkKind, Unit, VulnClass,
};

/// The vulnerability class a sink's response signature indicates.
fn class_for_sink(kind: SinkKind) -> Option<VulnClass> {
    match kind {
        SinkKind::SqlQuery => Some(VulnClass::SqlInjection),
        SinkKind::HtmlOutput => Some(VulnClass::Xss),
        SinkKind::ShellExec => Some(VulnClass::CommandInjection),
        SinkKind::FileOpen => Some(VulnClass::PathTraversal),
        SinkKind::Authenticate | SinkKind::CryptoHash => None,
    }
}

/// Attack payloads sprayed by the scanner, with the class each one probes.
const PAYLOADS: [(&str, VulnClass); 4] = [
    ("x' OR '1'='1", VulnClass::SqlInjection),
    ("<script>alert(1)</script>", VulnClass::Xss),
    ("; cat /etc/passwd", VulnClass::CommandInjection),
    ("../../etc/passwd", VulnClass::PathTraversal),
];

/// The scanner's dictionary of common gate values (what a wordlist would
/// try for mode/debug/action parameters).
const GATE_DICTIONARY: [&str; 9] = [
    "1", "true", "debug", "admin", "yes", "full", "0", "test", "save",
];

/// Budgeted black-box scanner.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{score_detector, DynamicScanner};
///
/// let corpus = CorpusBuilder::new().units(40).seed(9).build();
/// let outcome = score_detector(&DynamicScanner::quick(), &corpus);
/// // The proof-of-exploit oracle never raises a false alarm.
/// assert_eq!(outcome.confusion().fp, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicScanner {
    request_budget: usize,
    use_gate_dictionary: bool,
    two_phase: bool,
}

impl DynamicScanner {
    /// A quick scan: payload sprays only, no gate dictionary.
    pub fn quick() -> Self {
        DynamicScanner {
            request_budget: 6,
            use_gate_dictionary: false,
            two_phase: false,
        }
    }

    /// A thorough scan: payload sprays plus the gate dictionary, 96
    /// requests per unit.
    pub fn thorough() -> Self {
        DynamicScanner {
            request_budget: 96,
            use_gate_dictionary: true,
            two_phase: false,
        }
    }

    /// A stateful scan: like [`DynamicScanner::thorough`] but each attack
    /// request is followed by a plain *trigger* request in the same
    /// session, exposing second-order flows through the store. Twice the
    /// request budget pays for the replay.
    pub fn stateful() -> Self {
        DynamicScanner {
            request_budget: 192,
            use_gate_dictionary: true,
            two_phase: true,
        }
    }

    /// Custom budget.
    ///
    /// # Panics
    ///
    /// Panics if `request_budget == 0`.
    pub fn with_budget(request_budget: usize, use_gate_dictionary: bool) -> Self {
        assert!(request_budget > 0, "scanner needs at least one request");
        DynamicScanner {
            request_budget,
            use_gate_dictionary,
            two_phase: false,
        }
    }

    /// The per-unit request budget.
    pub fn request_budget(&self) -> usize {
        self.request_budget
    }

    /// Builds the attack plan for one unit, in priority order. Each entry
    /// is a session (one request, or attack + plain trigger in stateful
    /// mode); the budget counts individual requests.
    fn plan(&self, unit: &Unit) -> Vec<(Vec<Request>, &'static str)> {
        let surface = unit.referenced_sources();
        let mut attacks: Vec<(Request, &'static str)> = Vec::new();
        // Phase 1: spray each payload across the whole surface.
        for (payload, _) in PAYLOADS {
            let mut req = Request::new();
            for (kind, name) in &surface {
                req.set(*kind, name.clone(), payload);
            }
            attacks.push((req, payload));
        }
        // Phase 2: for each candidate gate input, fix it to a dictionary
        // value and spray payloads on everything else.
        if self.use_gate_dictionary {
            for (gate_kind, gate_name) in &surface {
                for dict_val in GATE_DICTIONARY {
                    for (payload, _) in PAYLOADS {
                        let mut req = Request::new();
                        for (kind, name) in &surface {
                            req.set(*kind, name.clone(), payload);
                        }
                        req.set(*gate_kind, gate_name.clone(), dict_val);
                        attacks.push((req, payload));
                    }
                }
            }
        }
        // Realize the budget in requests, expanding to two-request
        // sessions (attack, then plain trigger) in stateful mode.
        let per_session = if self.two_phase { 2 } else { 1 };
        let mut plan = Vec::new();
        let mut spent = 0usize;
        for (req, payload) in attacks {
            if spent + per_session > self.request_budget {
                break;
            }
            spent += per_session;
            let session = if self.two_phase {
                vec![req, Request::new()]
            } else {
                vec![req]
            };
            plan.push((session, payload));
        }
        plan
    }
}

impl Default for DynamicScanner {
    /// The thorough profile.
    fn default() -> Self {
        DynamicScanner::thorough()
    }
}

impl Detector for DynamicScanner {
    fn name(&self) -> String {
        format!(
            "pentest-{}{}{}",
            self.request_budget,
            if self.use_gate_dictionary {
                "-dict"
            } else {
                ""
            },
            if self.two_phase { "-2ph" } else { "" }
        )
    }

    fn analyze(&self, _corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let interp = Interpreter::default();
        let mut scratch = InterpScratch::new();
        self.analyze_with(&interp, unit, &mut scratch)
    }

    /// Scans the whole corpus on the rayon pool, sharing one
    /// [`Interpreter`] across all units and one [`InterpScratch`] per
    /// worker. The interpreter is a stateless bundle of execution limits,
    /// so sharing it is free and thread-safe; the scratch (pooled
    /// environment frames plus the session store) is carried across the
    /// worker's whole contiguous run of units, so steady-state scanning
    /// performs no environment allocation at all. Findings are folded
    /// per worker and concatenated in unit order, identical to the serial
    /// scan.
    fn analyze_corpus(&self, corpus: &Corpus) -> Vec<Finding> {
        let _span = vdbench_telemetry::span!(
            "detectors",
            "scan_corpus",
            tool = self.name(),
            units = corpus.units().len()
        );
        let interp = Interpreter::default();
        corpus
            .units()
            .par_iter()
            .fold(
                || (Vec::new(), InterpScratch::new()),
                |(mut acc, mut scratch): (Vec<Finding>, InterpScratch), u| {
                    let _span = vdbench_telemetry::span!("detectors", "scan_unit");
                    acc.extend(self.analyze_with(&interp, u, &mut scratch));
                    (acc, scratch)
                },
            )
            .reduce(
                || (Vec::new(), InterpScratch::new()),
                |(mut a, scratch), (b, _)| {
                    a.extend(b);
                    (a, scratch)
                },
            )
            .0
    }
}

impl DynamicScanner {
    /// Scans one unit with a caller-provided interpreter and execution
    /// scratch (both hoisted out of the per-unit loop by
    /// [`Detector::analyze_corpus`]). The unit is compiled **once** and
    /// the whole attack batch runs against the compiled form, so per-
    /// session cost is pure execution: no name lookups, no body clones,
    /// no environment allocation (frames recycle through `scratch`).
    fn analyze_with(
        &self,
        interp: &Interpreter,
        unit: &Unit,
        scratch: &mut InterpScratch,
    ) -> Vec<Finding> {
        let compiled = CompiledUnit::compile(unit);
        let mut confirmed: BTreeMap<_, (&'static str, SinkKind)> = BTreeMap::new();
        for (session, payload) in self.plan(unit) {
            // Execution failures (runaway loops, malformed units) are a
            // scanner non-result, not a crash.
            let Ok(observations) = interp.run_compiled(&compiled, &session, scratch) else {
                continue;
            };
            for obs in observations {
                // Proof of exploit: the sink received data still tainted
                // for it, our payload survived verbatim, and the response
                // signature matches the payload's class.
                let payload_class = PAYLOADS
                    .iter()
                    .find(|(p, _)| *p == payload)
                    .map(|(_, c)| *c);
                let sink_class = class_for_sink(obs.kind);
                if obs.tainted && obs.rendered.contains(payload) && payload_class == sink_class {
                    confirmed.entry(obs.site).or_insert((payload, obs.kind));
                }
            }
        }
        confirmed
            .into_iter()
            .map(|(site, (payload, kind))| {
                let class = PAYLOADS
                    .iter()
                    .find(|(p, _)| *p == payload)
                    .map(|(_, c)| *c);
                Finding::new(
                    site,
                    class,
                    0.95,
                    format!(
                        "payload {payload:?} reached {} un-neutralized",
                        kind.keyword()
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::score_detector;
    use vdbench_corpus::{CorpusBuilder, FlowShape};
    use vdbench_metrics::basic::{Precision, Recall};
    use vdbench_metrics::metric::Metric;

    #[test]
    fn near_perfect_precision() {
        let corpus = CorpusBuilder::new()
            .units(300)
            .vulnerability_density(0.35)
            .seed(41)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let cm = outcome.confusion();
        assert!(cm.tp > 0);
        let precision = Precision.compute(&cm).unwrap();
        assert!(
            precision > 0.99,
            "pentesting must not produce false alarms: {cm}"
        );
    }

    #[test]
    fn dead_guards_are_true_negatives() {
        let corpus = CorpusBuilder::new()
            .units(60)
            .vulnerability_density(0.0)
            .decoy_rate(1.0)
            .classes(vec![VulnClass::SqlInjection])
            .seed(42)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        assert_eq!(outcome.confusion().fp, 0);
    }

    #[test]
    fn gate_dictionary_raises_recall_on_gated_flows() {
        let corpus = CorpusBuilder::new()
            .units(200)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(1.0)
            .gate_obscurity(0.0) // every gate guessable
            .classes(vec![VulnClass::Xss])
            .seed(43)
            .build();
        let quick = score_detector(&DynamicScanner::quick(), &corpus);
        let thorough = score_detector(&DynamicScanner::thorough(), &corpus);
        let gated_quick = quick.confusion_for_shape(FlowShape::InputGated);
        let gated_thorough = thorough.confusion_for_shape(FlowShape::InputGated);
        assert_eq!(
            gated_quick.tp, 0,
            "without the dictionary, gates stay closed: {gated_quick}"
        );
        assert!(
            gated_thorough.tpr() > 0.8,
            "dictionary opens guessable gates: {gated_thorough}"
        );
    }

    #[test]
    fn obscure_gates_stay_hidden() {
        let corpus = CorpusBuilder::new()
            .units(150)
            .vulnerability_density(1.0)
            .disguise_rate(0.0)
            .gate_rate(1.0)
            .gate_obscurity(1.0) // every gate unguessable
            .classes(vec![VulnClass::SqlInjection])
            .seed(44)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let gated = outcome.confusion_for_shape(FlowShape::InputGated);
        assert_eq!(
            gated.tp, 0,
            "obscure gates must defeat the scanner: {gated}"
        );
    }

    #[test]
    fn pattern_classes_invisible_at_runtime() {
        let corpus = CorpusBuilder::new()
            .units(100)
            .vulnerability_density(0.8)
            .classes(vec![VulnClass::WeakHash, VulnClass::HardcodedCredentials])
            .seed(45)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        assert_eq!(outcome.confusion().tp, 0);
    }

    #[test]
    fn mismatched_sanitizers_exposed_dynamically() {
        // The dynamic scanner is the tool that *does* catch disguised
        // vulnerabilities: the payload demonstrably survives the wrong
        // sanitizer.
        let corpus = CorpusBuilder::new()
            .units(120)
            .vulnerability_density(1.0)
            .disguise_rate(1.0)
            .stored_rate(0.0)
            .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
            .seed(46)
            .build();
        let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
        let recall = Recall.compute(&outcome.confusion()).unwrap();
        assert!(
            recall > 0.9,
            "disguises don't fool execution: recall {recall}"
        );
    }

    #[test]
    fn budget_ordering_and_names() {
        assert_eq!(DynamicScanner::quick().name(), "pentest-6");
        assert_eq!(DynamicScanner::thorough().name(), "pentest-96-dict");
        assert_eq!(DynamicScanner::default(), DynamicScanner::thorough());
        assert_eq!(DynamicScanner::quick().request_budget(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_budget_panics() {
        let _ = DynamicScanner::with_budget(0, false);
    }
}
