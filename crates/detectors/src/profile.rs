//! Parameterized tool-profile emulation.
//!
//! Experiments that study *metrics* (rather than tools) need exact control
//! over operating points: "a tool with 80% recall and 5% false-positive
//! rate", or "two tools 5 points of recall apart". [`ProfileTool`] realizes
//! such specifications over a real corpus, deterministically per
//! `(seed, site)`, optionally with per-class sensitivity — emulating the
//! anonymized commercial tools of the paper's case studies.
//!
//! Unlike the honest analyzers, this tool **reads ground truth** to decide
//! its behaviour; that is its documented purpose as an emulation harness,
//! not a detection technique.

use crate::detector::Detector;
use crate::finding::Finding;
use std::collections::BTreeMap;
use vdbench_corpus::{Corpus, SiteId, Unit, VulnClass};
use vdbench_stats::SeededRng;

/// A tool emulated from an operating-point specification.
///
/// ```
/// use vdbench_corpus::CorpusBuilder;
/// use vdbench_detectors::{score_detector, ProfileTool};
///
/// let corpus = CorpusBuilder::new()
///     .units(2000)
///     .vulnerability_density(0.5)
///     .seed(1)
///     .build();
/// let tool = ProfileTool::new("spec", 0.8, 0.05, 7);
/// let cm = score_detector(&tool, &corpus).confusion();
/// assert!((cm.tpr() - 0.8).abs() < 0.05);
/// assert!((cm.fpr() - 0.05).abs() < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTool {
    name: String,
    default_tpr: f64,
    fpr: f64,
    class_tpr: BTreeMap<VulnClass, f64>,
    diagnosis_accuracy: f64,
    seed: u64,
}

impl ProfileTool {
    /// Creates a profile with uniform sensitivity `tpr` and false-positive
    /// rate `fpr`.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1]`.
    pub fn new(name: impl Into<String>, tpr: f64, fpr: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&tpr), "tpr must be in [0,1]");
        assert!((0.0..=1.0).contains(&fpr), "fpr must be in [0,1]");
        ProfileTool {
            name: name.into(),
            default_tpr: tpr,
            fpr,
            class_tpr: BTreeMap::new(),
            diagnosis_accuracy: 1.0,
            seed,
        }
    }

    /// Sets the probability that a (true-positive) finding carries the
    /// correct class label; misdiagnosed findings claim a uniformly random
    /// *other* class (builder style). Default 1.0.
    ///
    /// # Panics
    ///
    /// Panics unless the rate lies in `[0, 1]`.
    pub fn with_diagnosis_accuracy(mut self, accuracy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "diagnosis accuracy must be in [0,1]"
        );
        self.diagnosis_accuracy = accuracy;
        self
    }

    /// Overrides sensitivity for one vulnerability class (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the rate lies in `[0, 1]`.
    pub fn with_class_tpr(mut self, class: VulnClass, tpr: f64) -> Self {
        assert!((0.0..=1.0).contains(&tpr), "tpr must be in [0,1]");
        self.class_tpr.insert(class, tpr);
        self
    }

    /// The configured sensitivity for a class.
    pub fn tpr_for(&self, class: VulnClass) -> f64 {
        self.class_tpr
            .get(&class)
            .copied()
            .unwrap_or(self.default_tpr)
    }

    /// The configured false-positive rate.
    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// Deterministic per-site uniform draw: the same tool on the same site
    /// always behaves identically (tools are deterministic; it is the
    /// *population of sites* that is random).
    fn site_draw(&self, site: SiteId) -> f64 {
        let mut h: u64 = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for byte in self.name.bytes() {
            h = h
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(byte));
        }
        h ^= (u64::from(site.unit) << 32) | u64::from(site.sink);
        SeededRng::new(h).uniform()
    }
}

impl Detector for ProfileTool {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn analyze(&self, corpus: &Corpus, unit: &Unit) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (_, _, site) in unit.sinks() {
            let Some(info) = corpus.site_info(site) else {
                continue;
            };
            let threshold = if info.vulnerable {
                self.tpr_for(info.class)
            } else {
                self.fpr
            };
            if self.site_draw(site) < threshold {
                // A second independent draw decides the class claim.
                let mut rng = SeededRng::new((self.site_draw(site).to_bits()) ^ self.seed ^ 0xD1A6);
                let claimed = if rng.uniform() < self.diagnosis_accuracy {
                    info.class
                } else {
                    let others: Vec<VulnClass> = VulnClass::all()
                        .iter()
                        .copied()
                        .filter(|c| *c != info.class)
                        .collect();
                    *rng.choose(&others)
                };
                findings.push(Finding::new(
                    site,
                    Some(claimed),
                    0.5,
                    "emulated operating point",
                ));
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::score_detector;
    use vdbench_corpus::CorpusBuilder;

    #[test]
    fn realized_rates_match_specification() {
        let corpus = CorpusBuilder::new()
            .units(3000)
            .vulnerability_density(0.4)
            .seed(51)
            .build();
        let tool = ProfileTool::new("spec", 0.8, 0.1, 99);
        let cm = score_detector(&tool, &corpus).confusion();
        assert!((cm.tpr() - 0.8).abs() < 0.03, "tpr {}", cm.tpr());
        assert!((cm.fpr() - 0.1).abs() < 0.03, "fpr {}", cm.fpr());
    }

    #[test]
    fn deterministic_per_seed() {
        let corpus = CorpusBuilder::new().units(100).seed(52).build();
        let a = score_detector(&ProfileTool::new("t", 0.7, 0.05, 7), &corpus);
        let b = score_detector(&ProfileTool::new("t", 0.7, 0.05, 7), &corpus);
        assert_eq!(a.records(), b.records());
        let c = score_detector(&ProfileTool::new("t", 0.7, 0.05, 8), &corpus);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn name_is_part_of_identity() {
        let corpus = CorpusBuilder::new().units(200).seed(53).build();
        let a = score_detector(&ProfileTool::new("alpha", 0.5, 0.5, 1), &corpus);
        let b = score_detector(&ProfileTool::new("beta", 0.5, 0.5, 1), &corpus);
        assert_ne!(
            a.records(),
            b.records(),
            "different tools draw independently"
        );
    }

    #[test]
    fn class_sensitivity_overrides() {
        let corpus = CorpusBuilder::new()
            .units(2500)
            .vulnerability_density(0.5)
            .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
            .seed(54)
            .build();
        let tool = ProfileTool::new("classy", 0.9, 0.0, 3).with_class_tpr(VulnClass::Xss, 0.2);
        assert_eq!(tool.tpr_for(VulnClass::Xss), 0.2);
        assert_eq!(tool.tpr_for(VulnClass::SqlInjection), 0.9);
        assert_eq!(tool.fpr(), 0.0);
        let outcome = score_detector(&tool, &corpus);
        let sql = outcome.confusion_for_class(VulnClass::SqlInjection);
        let xss = outcome.confusion_for_class(VulnClass::Xss);
        assert!((sql.tpr() - 0.9).abs() < 0.05, "sql tpr {}", sql.tpr());
        assert!((xss.tpr() - 0.2).abs() < 0.05, "xss tpr {}", xss.tpr());
    }

    #[test]
    #[should_panic(expected = "tpr must be in")]
    fn rejects_bad_rates() {
        let _ = ProfileTool::new("bad", 1.1, 0.0, 0);
    }
}
