//! Tool findings.

use serde::{Deserialize, Serialize};
use vdbench_corpus::{SiteId, VulnClass};

/// One vulnerability report emitted by a detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The sink site the tool points at.
    pub site: SiteId,
    /// The class the tool believes the issue belongs to, when it claims
    /// one.
    pub class: Option<VulnClass>,
    /// Tool-reported confidence in `[0, 1]`.
    pub confidence: f64,
    /// Human-readable evidence string (useful for debugging tool
    /// behaviour in examples).
    pub rationale: String,
}

impl Finding {
    /// Creates a finding with clamped confidence.
    pub fn new(
        site: SiteId,
        class: Option<VulnClass>,
        confidence: f64,
        rationale: impl Into<String>,
    ) -> Self {
        Finding {
            site,
            class,
            confidence: confidence.clamp(0.0, 1.0),
            rationale: rationale.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_clamped() {
        let site = SiteId { unit: 0, sink: 0 };
        assert_eq!(Finding::new(site, None, 2.0, "x").confidence, 1.0);
        assert_eq!(Finding::new(site, None, -1.0, "x").confidence, 0.0);
        let f = Finding::new(site, Some(VulnClass::Xss), 0.5, "evidence");
        assert_eq!(f.class, Some(VulnClass::Xss));
        assert_eq!(f.rationale, "evidence");
    }
}
