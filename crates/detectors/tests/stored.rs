//! Cross-tool behaviour on second-order (stored) injection flows.
//!
//! The extension study: a vulnerability whose payload is persisted by one
//! request and triggered by another defeats single-request dynamic
//! scanning, requires a heap abstraction from static analysis, and baits
//! pattern tools into false alarms on stored literals.

use vdbench_corpus::{CorpusBuilder, FlowShape, VulnClass};
use vdbench_detectors::{score_detector, DynamicScanner, PatternScanner, TaintAnalyzer};

fn stored_corpus(density: f64, seed: u64) -> vdbench_corpus::Corpus {
    CorpusBuilder::new()
        .units(150)
        .vulnerability_density(density)
        .stored_rate(1.0)
        .decoy_rate(0.0)
        .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
        .seed(seed)
        .build()
}

#[test]
fn stored_corpus_has_stored_shapes() {
    let corpus = stored_corpus(0.5, 1);
    let stats = corpus.stats();
    assert!(stats.by_shape.contains_key(&FlowShape::Stored));
    assert!(stats.by_shape.contains_key(&FlowShape::StoredLiteral));
    // Witness sessions for stored flows have two requests.
    for info in corpus.sites() {
        if info.shape == FlowShape::Stored {
            assert_eq!(info.witness.as_ref().map(Vec::len), Some(2));
        }
    }
}

#[test]
fn single_request_scanner_is_blind_to_stored_flows() {
    let corpus = stored_corpus(1.0, 2);
    let outcome = score_detector(&DynamicScanner::thorough(), &corpus);
    let stored = outcome.confusion_for_shape(FlowShape::Stored);
    assert_eq!(
        stored.tp, 0,
        "no single request can both write and trigger: {stored}"
    );
}

#[test]
fn stateful_scanner_exposes_stored_flows() {
    let corpus = stored_corpus(1.0, 3);
    let outcome = score_detector(&DynamicScanner::stateful(), &corpus);
    let stored = outcome.confusion_for_shape(FlowShape::Stored);
    assert!(
        stored.tpr() > 0.9,
        "write-then-trigger sessions expose second-order flows: {stored}"
    );
    // And the oracle stays sound: stored literals are not flagged.
    let safe = score_detector(&DynamicScanner::stateful(), &stored_corpus(0.0, 4));
    assert_eq!(safe.confusion().fp, 0);
}

#[test]
fn taint_heap_abstraction_is_required() {
    let corpus = stored_corpus(1.0, 5);
    let with_store = score_detector(&TaintAnalyzer::precise(), &corpus);
    let without_store = score_detector(&TaintAnalyzer::precise().track_store(false), &corpus);
    let a = with_store.confusion_for_shape(FlowShape::Stored);
    let b = without_store.confusion_for_shape(FlowShape::Stored);
    assert_eq!(
        a.fn_, 0,
        "heap-tracking taint analysis finds stored flows: {a}"
    );
    assert_eq!(
        b.tp, 0,
        "without the heap abstraction every stored flow is missed: {b}"
    );
}

#[test]
fn pattern_scanner_distrusts_the_store_both_ways() {
    // Aggressive profile: flags stored reads → catches the vulnerable
    // flows AND false-alarms on stored literals.
    let vulnerable = stored_corpus(1.0, 6);
    let aggr = score_detector(&PatternScanner::aggressive(), &vulnerable);
    let stored = aggr.confusion_for_shape(FlowShape::Stored);
    assert_eq!(
        stored.fn_, 0,
        "aggressive pattern catches stored flows: {stored}"
    );

    let safe = stored_corpus(0.0, 7);
    let aggr_safe = score_detector(&PatternScanner::aggressive(), &safe);
    let literal = aggr_safe.confusion_for_shape(FlowShape::StoredLiteral);
    assert!(
        literal.fp > 0,
        "distrusting every store read costs false alarms: {literal}"
    );

    // Conservative profile: silent on the store entirely.
    let cons = score_detector(&PatternScanner::conservative(), &vulnerable);
    assert_eq!(cons.confusion_for_shape(FlowShape::Stored).tp, 0);
}

#[test]
fn store_taint_survives_only_within_a_session() {
    use vdbench_corpus::{Interpreter, Request};
    let corpus = stored_corpus(1.0, 8);
    let info = corpus
        .sites()
        .find(|s| s.shape == FlowShape::Stored)
        .expect("stored site exists");
    let unit = corpus.unit_of(info.site).unwrap();
    let witness = info.witness.as_ref().unwrap();
    let interp = Interpreter::default();

    // Full session: write then trigger — tainted observation at the sink.
    let obs = interp.run_session(unit, witness).unwrap();
    assert!(obs.iter().any(|o| o.site == info.site && o.tainted));

    // Trigger alone (fresh store): the sink reads an empty store slot.
    let obs = interp.run(unit, &witness[1]).unwrap();
    let at_site: Vec<_> = obs.iter().filter(|o| o.site == info.site).collect();
    assert!(!at_site.is_empty(), "trigger request reaches the sink");
    assert!(at_site.iter().all(|o| !o.tainted));

    // Write alone: the sink never executes.
    let obs = interp.run(unit, &witness[0]).unwrap();
    assert!(obs.iter().all(|o| o.site != info.site));

    // Order matters: trigger before write stays clean.
    let reversed: Vec<Request> = vec![witness[1].clone(), witness[0].clone()];
    let obs = interp.run_session(unit, &reversed).unwrap();
    assert!(obs
        .iter()
        .filter(|o| o.site == info.site)
        .all(|o| !o.tainted));
}
