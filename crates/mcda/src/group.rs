//! Group aggregation of expert judgments.
//!
//! Two standard strategies: **AIJ** (aggregation of individual judgments)
//! takes the element-wise geometric mean of the comparison matrices — the
//! only aggregator that preserves reciprocity — and **AIP** (aggregation of
//! individual priorities) averages the solved priority vectors.

use crate::pairwise::PairwiseMatrix;
use crate::priority::{eigenvector_priorities, PriorityVector};
use crate::{McdaError, Result};

/// Element-wise weighted geometric mean of several judgment matrices (AIJ).
///
/// `weights` are per-expert influence weights; pass `None` for an equal
/// panel.
///
/// # Errors
///
/// Returns [`McdaError::Degenerate`] for an empty panel,
/// [`McdaError::DimensionMismatch`] for size disagreements, and
/// [`McdaError::InvalidValue`] for bad weights.
pub fn aggregate_judgments(
    matrices: &[PairwiseMatrix],
    weights: Option<&[f64]>,
) -> Result<PairwiseMatrix> {
    if matrices.is_empty() {
        return Err(McdaError::Degenerate {
            reason: "empty expert panel",
        });
    }
    let n = matrices[0].size();
    for m in matrices {
        if m.size() != n {
            return Err(McdaError::DimensionMismatch {
                expected: n,
                actual: m.size(),
            });
        }
    }
    let w = normalized_panel_weights(matrices.len(), weights)?;
    let mut out = PairwiseMatrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let log_mean: f64 = matrices
                .iter()
                .zip(&w)
                .map(|(m, wk)| wk * m.get(i, j).ln())
                .sum();
            out.set(i, j, log_mean.exp())?;
        }
    }
    Ok(out)
}

/// Weighted arithmetic mean of solved priority vectors (AIP), renormalized.
///
/// # Errors
///
/// Same validation as [`aggregate_judgments`]; additionally propagates
/// solver errors.
pub fn aggregate_priorities(
    matrices: &[PairwiseMatrix],
    weights: Option<&[f64]>,
) -> Result<PriorityVector> {
    if matrices.is_empty() {
        return Err(McdaError::Degenerate {
            reason: "empty expert panel",
        });
    }
    let n = matrices[0].size();
    for m in matrices {
        if m.size() != n {
            return Err(McdaError::DimensionMismatch {
                expected: n,
                actual: m.size(),
            });
        }
    }
    let w = normalized_panel_weights(matrices.len(), weights)?;
    let mut acc = vec![0.0; n];
    let mut lambda = 0.0;
    for (m, wk) in matrices.iter().zip(&w) {
        let pv = eigenvector_priorities(m)?;
        for (a, v) in acc.iter_mut().zip(&pv.weights) {
            *a += wk * v;
        }
        lambda += wk * pv.lambda_max;
    }
    let sum: f64 = acc.iter().sum();
    for a in acc.iter_mut() {
        *a /= sum;
    }
    Ok(PriorityVector {
        weights: acc,
        lambda_max: lambda,
    })
}

fn normalized_panel_weights(count: usize, weights: Option<&[f64]>) -> Result<Vec<f64>> {
    match weights {
        None => Ok(vec![1.0 / count as f64; count]),
        Some(w) => {
            if w.len() != count {
                return Err(McdaError::DimensionMismatch {
                    expected: count,
                    actual: w.len(),
                });
            }
            let mut sum = 0.0;
            for &x in w {
                if !x.is_finite() || x < 0.0 {
                    return Err(McdaError::InvalidValue {
                        name: "panel_weight",
                        value: x,
                    });
                }
                sum += x;
            }
            if sum <= 0.0 {
                return Err(McdaError::InvalidValue {
                    name: "panel_weight_sum",
                    value: sum,
                });
            }
            Ok(w.iter().map(|x| x / sum).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aij_preserves_reciprocity() {
        let mut a = PairwiseMatrix::identity(3);
        a.set(0, 1, 3.0).unwrap();
        a.set(0, 2, 5.0).unwrap();
        a.set(1, 2, 2.0).unwrap();
        let mut b = PairwiseMatrix::identity(3);
        b.set(0, 1, 5.0).unwrap();
        b.set(0, 2, 7.0).unwrap();
        b.set(1, 2, 1.0).unwrap();
        let g = aggregate_judgments(&[a, b], None).unwrap();
        assert!(g.is_reciprocal());
        assert!((g.get(0, 1) - 15.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aij_of_identical_matrices_is_identity_op() {
        let m = PairwiseMatrix::from_weights(&[0.5, 0.3, 0.2]).unwrap();
        let g = aggregate_judgments(&[m.clone(), m.clone(), m.clone()], None).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - m.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn weighted_aij_tilts_toward_heavy_expert() {
        let mut a = PairwiseMatrix::identity(2);
        a.set(0, 1, 9.0).unwrap();
        let mut b = PairwiseMatrix::identity(2);
        b.set(0, 1, 1.0).unwrap();
        let skewed = aggregate_judgments(&[a.clone(), b.clone()], Some(&[0.9, 0.1])).unwrap();
        let even = aggregate_judgments(&[a, b], None).unwrap();
        assert!(skewed.get(0, 1) > even.get(0, 1));
    }

    #[test]
    fn aip_of_opposed_experts_is_balanced() {
        let a = PairwiseMatrix::from_weights(&[0.75, 0.25]).unwrap();
        let b = PairwiseMatrix::from_weights(&[0.25, 0.75]).unwrap();
        let pv = aggregate_priorities(&[a, b], None).unwrap();
        assert!((pv.weights[0] - 0.5).abs() < 1e-9);
        assert!((pv.weights[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aip_weights_sum_to_one() {
        let a = PairwiseMatrix::from_weights(&[0.6, 0.3, 0.1]).unwrap();
        let b = PairwiseMatrix::from_weights(&[0.2, 0.5, 0.3]).unwrap();
        let pv = aggregate_priorities(&[a, b], Some(&[2.0, 1.0])).unwrap();
        assert!((pv.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Heavier weight on expert a keeps element 0 in front.
        assert_eq!(pv.best(), 0);
    }

    #[test]
    fn validation() {
        assert!(aggregate_judgments(&[], None).is_err());
        let a = PairwiseMatrix::identity(2);
        let b = PairwiseMatrix::identity(3);
        assert!(aggregate_judgments(&[a.clone(), b.clone()], None).is_err());
        assert!(aggregate_priorities(&[a.clone(), b], None).is_err());
        assert!(aggregate_judgments(std::slice::from_ref(&a), Some(&[1.0, 2.0])).is_err());
        assert!(aggregate_judgments(std::slice::from_ref(&a), Some(&[-1.0])).is_err());
        assert!(aggregate_judgments(&[a], Some(&[0.0])).is_err());
    }
}
