//! Simple additive weighting (SAW / weighted-sum model).

use crate::decision::DecisionMatrix;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Result of a SAW evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SawResult {
    /// Aggregate score per alternative, in input order; higher is better.
    pub scores: Vec<f64>,
    /// Alternative indices ordered best → worst.
    pub ranking: Vec<usize>,
}

/// Evaluates a decision matrix by min–max normalization followed by a
/// weighted sum.
///
/// # Errors
///
/// Never fails for a valid [`DecisionMatrix`]; the `Result` mirrors the
/// other MCDA entry points.
///
/// ```
/// use vdbench_mcda::{Criterion, DecisionMatrix};
/// use vdbench_mcda::saw::evaluate;
///
/// let dm = DecisionMatrix::new(
///     vec!["good".into(), "bad".into()],
///     vec![Criterion::benefit("quality", 1.0)],
///     vec![vec![0.9], vec![0.2]],
/// )?;
/// let r = evaluate(&dm)?;
/// assert_eq!(r.ranking[0], 0);
/// # Ok::<(), vdbench_mcda::McdaError>(())
/// ```
pub fn evaluate(dm: &DecisionMatrix) -> Result<SawResult> {
    let norm = dm.normalize_minmax();
    let weights = dm.normalized_weights();
    let scores: Vec<f64> = norm
        .iter()
        .map(|row| row.iter().zip(&weights).map(|(v, w)| v * w).sum())
        .collect();
    let mut ranking: Vec<usize> = (0..scores.len()).collect();
    ranking.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    Ok(SawResult { scores, ranking })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Criterion;

    #[test]
    fn dominant_alternative_wins() {
        let dm = DecisionMatrix::new(
            vec!["dominated".into(), "dominant".into(), "middle".into()],
            vec![
                Criterion::benefit("recall", 1.0),
                Criterion::cost("alarms", 1.0),
            ],
            vec![vec![0.2, 50.0], vec![0.9, 1.0], vec![0.5, 20.0]],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        assert_eq!(r.ranking, vec![1, 2, 0]);
        assert!(r.scores[1] > r.scores[2]);
    }

    #[test]
    fn weights_shift_the_winner() {
        // Alternative 0: high recall, many alarms. Alternative 1: the
        // opposite. Recall-weighted SAW picks 0; alarm-weighted picks 1.
        let values = vec![vec![0.95, 100.0], vec![0.55, 2.0]];
        let recall_heavy = DecisionMatrix::new(
            vec!["chatty".into(), "quiet".into()],
            vec![
                Criterion::benefit("recall", 10.0),
                Criterion::cost("alarms", 1.0),
            ],
            values.clone(),
        )
        .unwrap();
        let alarm_heavy = DecisionMatrix::new(
            vec!["chatty".into(), "quiet".into()],
            vec![
                Criterion::benefit("recall", 1.0),
                Criterion::cost("alarms", 10.0),
            ],
            values,
        )
        .unwrap();
        assert_eq!(evaluate(&recall_heavy).unwrap().ranking[0], 0);
        assert_eq!(evaluate(&alarm_heavy).unwrap().ranking[0], 1);
    }

    #[test]
    fn scores_bounded_by_unit_interval() {
        let dm = DecisionMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                Criterion::benefit("x", 3.0),
                Criterion::benefit("y", 1.0),
                Criterion::cost("z", 2.0),
            ],
            vec![
                vec![1.0, 10.0, 3.0],
                vec![2.0, 20.0, 2.0],
                vec![3.0, 5.0, 1.0],
            ],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        for s in &r.scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn single_alternative() {
        let dm = DecisionMatrix::new(
            vec!["only".into()],
            vec![Criterion::benefit("x", 1.0)],
            vec![vec![42.0]],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        assert_eq!(r.ranking, vec![0]);
    }
}
