//! Consistency checking for pairwise judgments.
//!
//! Saaty's consistency machinery: `CI = (λ_max − n) / (n − 1)`, compared
//! against the random index `RI(n)` of same-size random reciprocal
//! matrices; judgments with `CR = CI / RI > 0.1` are conventionally sent
//! back to the expert for revision.

use crate::pairwise::PairwiseMatrix;
use crate::priority::{eigenvector_priorities, PriorityVector};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Saaty's random-index table for n = 1..=15 (0-indexed by `n - 1`).
///
/// Values for n ≤ 10 are Saaty's classic table; 11–15 follow the commonly
/// cited extension.
const RANDOM_INDEX: [f64; 15] = [
    0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49, 1.51, 1.48, 1.56, 1.57, 1.59,
];

/// The conventional acceptability threshold for the consistency ratio.
pub const CR_THRESHOLD: f64 = 0.1;

/// Random index `RI(n)`: the mean consistency index of random reciprocal
/// matrices of size `n`. Sizes beyond the table saturate at the last entry.
pub fn random_index(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    RANDOM_INDEX[(n - 1).min(RANDOM_INDEX.len() - 1)]
}

/// Consistency index `CI = (λ_max − n) / (n − 1)`; zero for `n ≤ 2`
/// (2×2 reciprocal matrices are always consistent).
pub fn consistency_index(lambda_max: f64, n: usize) -> f64 {
    if n <= 2 {
        return 0.0;
    }
    ((lambda_max - n as f64) / (n as f64 - 1.0)).max(0.0)
}

/// A full consistency report for one judgment matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Matrix size.
    pub n: usize,
    /// Principal eigenvalue estimate.
    pub lambda_max: f64,
    /// Consistency index.
    pub ci: f64,
    /// Consistency ratio (`None` when `RI(n) = 0`, i.e. `n ≤ 2`, where the
    /// matrix is consistent by construction).
    pub cr: Option<f64>,
}

impl ConsistencyReport {
    /// Whether the judgments meet Saaty's 10% rule.
    pub fn is_acceptable(&self) -> bool {
        match self.cr {
            Some(cr) => cr <= CR_THRESHOLD,
            None => true,
        }
    }
}

/// Solves the matrix and evaluates its consistency in one step.
///
/// # Errors
///
/// Propagates solver errors from [`eigenvector_priorities`].
pub fn check(m: &PairwiseMatrix) -> Result<(PriorityVector, ConsistencyReport)> {
    let pv = eigenvector_priorities(m)?;
    let n = m.size();
    let ci = consistency_index(pv.lambda_max, n);
    let ri = random_index(n);
    let cr = if ri > 0.0 { Some(ci / ri) } else { None };
    let report = ConsistencyReport {
        n,
        lambda_max: pv.lambda_max,
        ci,
        cr,
    };
    Ok((pv, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_index_table() {
        assert_eq!(random_index(1), 0.0);
        assert_eq!(random_index(2), 0.0);
        assert_eq!(random_index(3), 0.58);
        assert_eq!(random_index(10), 1.49);
        assert_eq!(random_index(99), 1.59); // saturates
        assert_eq!(random_index(0), 0.0);
    }

    #[test]
    fn consistent_matrix_passes() {
        let m = PairwiseMatrix::from_weights(&[0.5, 0.3, 0.2]).unwrap();
        let (_, report) = check(&m).unwrap();
        assert!(report.ci.abs() < 1e-9);
        assert!(report.cr.unwrap() < 1e-9);
        assert!(report.is_acceptable());
    }

    #[test]
    fn two_by_two_always_acceptable() {
        let mut m = PairwiseMatrix::identity(2);
        m.set(0, 1, 9.0).unwrap();
        let (_, report) = check(&m).unwrap();
        assert_eq!(report.cr, None);
        assert!(report.is_acceptable());
        assert_eq!(consistency_index(2.0, 2), 0.0);
    }

    #[test]
    fn wildly_inconsistent_matrix_fails() {
        // 0 ≫ 1, 1 ≫ 2, but 2 ≫ 0 — a preference cycle.
        let mut m = PairwiseMatrix::identity(3);
        m.set(0, 1, 9.0).unwrap();
        m.set(1, 2, 9.0).unwrap();
        m.set(2, 0, 9.0).unwrap();
        let (_, report) = check(&m).unwrap();
        assert!(!report.is_acceptable(), "CR={:?}", report.cr);
        assert!(report.cr.unwrap() > 1.0);
    }

    #[test]
    fn mildly_inconsistent_matrix_passes() {
        // Transitive but not perfectly cardinal: 0>1 (2x), 1>2 (2x),
        // 0>2 (3x instead of the consistent 4x).
        let m = PairwiseMatrix::from_upper_triangle(3, &[2.0, 3.0, 2.0]).unwrap();
        let (_, report) = check(&m).unwrap();
        assert!(report.is_acceptable(), "CR={:?}", report.cr);
        assert!(report.cr.unwrap() > 0.0);
    }

    #[test]
    fn ci_is_clamped_non_negative() {
        // Numerical λ estimates can dip a hair below n.
        assert_eq!(consistency_index(2.999_999_999, 3), 0.0);
    }
}
