//! Priority-vector extraction from pairwise matrices.
//!
//! Two standard methods are provided: the **principal eigenvector** (Saaty's
//! original AHP prescription, computed by power iteration) and the
//! **row geometric mean** (the logarithmic least-squares solution, exact for
//! consistent matrices and cheaper to compute). For consistent matrices the
//! two agree; experiments use the eigenvector method and tests cross-check
//! with the geometric mean.

use crate::pairwise::PairwiseMatrix;
use crate::{McdaError, Result};
use serde::{Deserialize, Serialize};

/// A solved priority vector together with the principal eigenvalue needed
/// for consistency checking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityVector {
    /// Normalized weights (sum to 1), one per compared element.
    pub weights: Vec<f64>,
    /// Estimate of the principal eigenvalue `λ_max` (`= n` iff perfectly
    /// consistent).
    pub lambda_max: f64,
}

impl PriorityVector {
    /// Index of the highest-weight element.
    pub fn best(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("priority vector is never empty")
    }

    /// Element indices ordered best → worst.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| self.weights[b].total_cmp(&self.weights[a]));
        idx
    }
}

/// Row geometric-mean priorities (logarithmic least squares).
///
/// # Errors
///
/// Never fails for a valid [`PairwiseMatrix`] (entries are positive by
/// construction); returns the same `Result` type as the eigenvector method
/// for interface symmetry.
pub fn geometric_mean_priorities(m: &PairwiseMatrix) -> Result<PriorityVector> {
    let n = m.size();
    let mut weights: Vec<f64> = (0..n)
        .map(|i| {
            let log_sum: f64 = m.row(i).iter().map(|v| v.ln()).sum();
            (log_sum / n as f64).exp()
        })
        .collect();
    normalize(&mut weights);
    let lambda_max = estimate_lambda(m, &weights)?;
    Ok(PriorityVector {
        weights,
        lambda_max,
    })
}

/// Principal-eigenvector priorities via power iteration.
///
/// The loop is allocation-free after setup: the matrix-vector product goes
/// through [`PairwiseMatrix::mul_vec_into`] into a reused buffer that is
/// ping-ponged with the iterate via `mem::swap` (the old loop allocated two
/// fresh `Vec`s per round). Convergence is detected by **either** of two
/// checks evaluated each round:
///
/// * the successive-iterate delta `Σ|v' − v| < 1e-13` (the historical
///   criterion, unchanged), or
/// * the eigen-residual `‖A·v − λv‖∞ < 1e-13·λ` with `λ` the Rayleigh
///   estimate — this fires as soon as `(λ, v)` is already an eigenpair to
///   working precision, typically one round before the delta settles, so
///   near-consistent matrices (the common case after expert aggregation)
///   exit early.
///
/// The arithmetic producing `v` and `λ` is operation-for-operation the same
/// as before, so when the two exit criteria fire on the same round the
/// result is bit-identical to the historical implementation.
///
/// # Errors
///
/// Returns [`McdaError::NoConvergence`] if the iteration fails to settle
/// within 10 000 rounds (does not happen for positive reciprocal matrices,
/// whose principal eigenvalue is simple by Perron–Frobenius).
pub fn eigenvector_priorities(m: &PairwiseMatrix) -> Result<PriorityVector> {
    let n = m.size();
    if n == 1 {
        return Ok(PriorityVector {
            weights: vec![1.0],
            lambda_max: 1.0,
        });
    }
    let mut v = vec![1.0 / n as f64; n];
    let mut next = Vec::with_capacity(n);
    for _ in 0..10_000 {
        m.mul_vec_into(&v, &mut next)?;
        let sum: f64 = next.iter().sum();
        // Residual before normalization: `v` is normalized, so `next` is
        // A·v and `sum` is the Rayleigh estimate of λ_max.
        let residual = next
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - sum * b).abs())
            .fold(0.0f64, f64::max);
        for x in next.iter_mut() {
            *x /= sum;
        }
        normalize(&mut next);
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut v, &mut next);
        if delta < 1e-13 || residual < 1e-13 * sum {
            return Ok(PriorityVector {
                weights: v,
                lambda_max: sum,
            });
        }
    }
    // Power iteration on a positive matrix converges; reaching here means
    // pathological floating-point behaviour.
    Err(McdaError::NoConvergence {
        routine: "eigenvector_priorities",
    })
}

/// Estimates `λ_max` for a given weight vector: the mean of
/// `(A·w)_i / w_i`.
fn estimate_lambda(m: &PairwiseMatrix, weights: &[f64]) -> Result<f64> {
    let aw = m.mul_vec(weights)?;
    let n = weights.len() as f64;
    Ok(aw
        .iter()
        .zip(weights)
        .map(|(num, den)| num / den)
        .sum::<f64>()
        / n)
}

fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_matrix_recovers_weights() {
        let truth = [0.6, 0.3, 0.1];
        let m = PairwiseMatrix::from_weights(&truth).unwrap();
        for solver in [geometric_mean_priorities, eigenvector_priorities] {
            let pv = solver(&m).unwrap();
            for (w, t) in pv.weights.iter().zip(&truth) {
                assert!((w - t).abs() < 1e-9, "{:?}", pv.weights);
            }
            assert!((pv.lambda_max - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn methods_agree_on_consistent_matrices() {
        let m = PairwiseMatrix::from_weights(&[5.0, 3.0, 1.0, 0.5]).unwrap();
        let g = geometric_mean_priorities(&m).unwrap();
        let e = eigenvector_priorities(&m).unwrap();
        for (a, b) in g.weights.iter().zip(&e.weights) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn single_element() {
        let m = PairwiseMatrix::identity(1);
        let pv = eigenvector_priorities(&m).unwrap();
        assert_eq!(pv.weights, vec![1.0]);
        assert_eq!(pv.best(), 0);
    }

    #[test]
    fn inconsistent_matrix_lambda_exceeds_n() {
        // The classic slightly-inconsistent example.
        let m = PairwiseMatrix::from_upper_triangle(3, &[2.0, 8.0, 3.0]).unwrap();
        let pv = eigenvector_priorities(&m).unwrap();
        assert!(pv.lambda_max >= 3.0, "λ={}", pv.lambda_max);
        // Ordering is still 0 > 1 > 2.
        assert_eq!(pv.ranking(), vec![0, 1, 2]);
        let sum: f64 = pv.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saaty_reference_example() {
        // Saaty's wealth-of-nations style 3x3: a(0,1)=3, a(0,2)=7, a(1,2)=3.
        let m = PairwiseMatrix::from_upper_triangle(3, &[3.0, 7.0, 3.0]).unwrap();
        let pv = eigenvector_priorities(&m).unwrap();
        // Known approximate priorities: ~0.64 / 0.28 / 0.07 (slightly
        // method-dependent); check coarse agreement and ordering.
        assert!(
            pv.weights[0] > 0.6 && pv.weights[0] < 0.7,
            "{:?}",
            pv.weights
        );
        assert!(pv.weights[1] > 0.2 && pv.weights[1] < 0.32);
        assert!(pv.weights[2] < 0.11);
        assert!(pv.lambda_max >= 3.0 && pv.lambda_max < 3.2);
    }

    #[test]
    fn ranking_and_best() {
        let m = PairwiseMatrix::from_weights(&[0.2, 0.5, 0.3]).unwrap();
        let pv = geometric_mean_priorities(&m).unwrap();
        assert_eq!(pv.best(), 1);
        assert_eq!(pv.ranking(), vec![1, 2, 0]);
    }

    #[test]
    fn weights_always_normalized() {
        let m = PairwiseMatrix::from_upper_triangle(4, &[2.0, 4.0, 8.0, 2.0, 4.0, 2.0]).unwrap();
        for solver in [geometric_mean_priorities, eigenvector_priorities] {
            let pv = solver(&m).unwrap();
            assert!((pv.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(pv.weights.iter().all(|&w| w > 0.0));
        }
    }
}
