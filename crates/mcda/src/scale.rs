//! Saaty's fundamental 1–9 comparison scale.

use serde::{Deserialize, Serialize};

/// The verbal anchors of Saaty's fundamental scale for pairwise judgments.
///
/// Intermediate even values (2, 4, 6, 8) express compromises between
/// adjacent anchors; [`SaatyScale::snap`] maps an arbitrary intensity ratio
/// onto the nearest admissible scale value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SaatyScale {
    /// Both elements contribute equally (1).
    Equal,
    /// Weak preference for the first element (3).
    Moderate,
    /// Strong preference (5).
    Strong,
    /// Very strong, demonstrated preference (7).
    VeryStrong,
    /// The strongest affirmable preference (9).
    Extreme,
}

impl SaatyScale {
    /// The numeric judgment value.
    pub fn value(self) -> f64 {
        match self {
            SaatyScale::Equal => 1.0,
            SaatyScale::Moderate => 3.0,
            SaatyScale::Strong => 5.0,
            SaatyScale::VeryStrong => 7.0,
            SaatyScale::Extreme => 9.0,
        }
    }

    /// All anchors in increasing order.
    pub fn all() -> [SaatyScale; 5] {
        [
            SaatyScale::Equal,
            SaatyScale::Moderate,
            SaatyScale::Strong,
            SaatyScale::VeryStrong,
            SaatyScale::Extreme,
        ]
    }

    /// Snaps an arbitrary positive intensity ratio to the nearest value on
    /// the full 1–9 scale (including intermediate integers), returning the
    /// reciprocal form for ratios below one.
    ///
    /// Used by the expert-simulation layer: a latent preference ratio is
    /// what the expert *feels*; the snapped value is what they can *say*
    /// on the questionnaire.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive and finite.
    pub fn snap(ratio: f64) -> f64 {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "intensity ratio must be positive and finite"
        );
        let (inverted, r) = if ratio < 1.0 {
            (true, 1.0 / ratio)
        } else {
            (false, ratio)
        };
        // Choose the admissible integer 1..=9 minimizing log-distance, which
        // is the right geometry for ratio judgments.
        let mut best = 1.0f64;
        let mut best_d = f64::INFINITY;
        for k in 1..=9 {
            let d = (r.ln() - (k as f64).ln()).abs();
            if d < best_d {
                best_d = d;
                best = k as f64;
            }
        }
        if inverted {
            1.0 / best
        } else {
            best
        }
    }
}

impl From<SaatyScale> for f64 {
    fn from(s: SaatyScale) -> f64 {
        s.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        assert_eq!(SaatyScale::Equal.value(), 1.0);
        assert_eq!(SaatyScale::Extreme.value(), 9.0);
        let vals: Vec<f64> = SaatyScale::all().iter().map(|s| s.value()).collect();
        assert_eq!(vals, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        assert_eq!(f64::from(SaatyScale::Strong), 5.0);
    }

    #[test]
    fn snap_exact_integers() {
        for k in 1..=9 {
            assert_eq!(SaatyScale::snap(k as f64), k as f64);
            assert_eq!(SaatyScale::snap(1.0 / k as f64), 1.0 / k as f64);
        }
    }

    #[test]
    fn snap_rounds_in_log_space() {
        assert_eq!(SaatyScale::snap(1.38), 1.0);
        assert_eq!(SaatyScale::snap(2.9), 3.0);
        assert_eq!(SaatyScale::snap(20.0), 9.0); // saturates
        assert_eq!(SaatyScale::snap(0.05), 1.0 / 9.0);
    }

    #[test]
    fn snap_reciprocal_symmetry() {
        for &r in &[0.13, 0.4, 1.0, 2.3, 6.7] {
            let a = SaatyScale::snap(r);
            let b = SaatyScale::snap(1.0 / r);
            assert!(
                (a * b - 1.0).abs() < 1e-12,
                "snap({r})={a}, snap(1/{r})={b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn snap_rejects_nonpositive() {
        let _ = SaatyScale::snap(0.0);
    }
}
