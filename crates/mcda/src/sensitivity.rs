//! Weight-sensitivity analysis for weighted-sum rankings.
//!
//! After an MCDA run, the natural follow-up question is *how robust is the
//! winner?* — by how much would one criterion's weight have to change to
//! flip the top two alternatives? (Triantaphyllou-style absolute-change
//! analysis for additive models.) Small thresholds flag photo-finish
//! decisions that deserve a second look; this is exactly the situation the
//! audit scenario's precision-vs-accuracy race produces.

use crate::ranking::ranking_from_scores;
use crate::{McdaError, Result};
use serde::{Deserialize, Serialize};

/// Sensitivity of the top-two ordering to one criterion's weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightSensitivity {
    /// Criterion index.
    pub criterion: usize,
    /// Current weight of the criterion.
    pub weight: f64,
    /// The absolute weight change that would tie the top two alternatives
    /// (`None` when no finite change can flip them along this criterion,
    /// i.e. they perform identically on it).
    pub flip_delta: Option<f64>,
}

impl WeightSensitivity {
    /// Relative change (`|Δ| / weight`) needed to flip; `None` when a flip
    /// is impossible or the weight is zero.
    pub fn relative_flip(&self) -> Option<f64> {
        match self.flip_delta {
            Some(d) if self.weight > 0.0 => Some(d.abs() / self.weight),
            _ => None,
        }
    }
}

/// Computes, for every criterion, the absolute weight change that would
/// tie the winner with the runner-up in an additive (weighted-sum /
/// ratings-mode AHP) model.
///
/// `weights[c]` are the criteria weights and `ratings[alt][c]` the
/// alternatives' scores. The model's ranking is scale-invariant in the
/// weight vector, so the deltas are reported against the given
/// (conventionally normalized) weights.
///
/// # Errors
///
/// Returns [`McdaError::Degenerate`] with fewer than two alternatives and
/// [`McdaError::DimensionMismatch`] for ragged input.
pub fn top_pair_sensitivity(
    weights: &[f64],
    ratings: &[Vec<f64>],
) -> Result<Vec<WeightSensitivity>> {
    if ratings.len() < 2 {
        return Err(McdaError::Degenerate {
            reason: "sensitivity needs at least two alternatives",
        });
    }
    for row in ratings {
        if row.len() != weights.len() {
            return Err(McdaError::DimensionMismatch {
                expected: weights.len(),
                actual: row.len(),
            });
        }
    }
    let scores: Vec<f64> = ratings
        .iter()
        .map(|row| row.iter().zip(weights).map(|(r, w)| r * w).sum())
        .collect();
    let order = ranking_from_scores(&scores, true);
    let (winner, runner_up) = (order[0], order[1]);
    let lead = scores[winner] - scores[runner_up];

    Ok(weights
        .iter()
        .enumerate()
        .map(|(c, &w)| {
            let d = ratings[winner][c] - ratings[runner_up][c];
            // Adding Δ to w_c changes the lead by Δ·d; the tie is at
            // Δ = −lead / d. Only report physically meaningful flips
            // (resulting weight must stay non-negative).
            let flip = if d.abs() < 1e-15 {
                None
            } else {
                let delta = -lead / d;
                (w + delta >= 0.0).then_some(delta)
            };
            WeightSensitivity {
                criterion: c,
                weight: w,
                flip_delta: flip,
            }
        })
        .collect())
}

/// The smallest relative weight change (over all criteria) that flips the
/// winner — a single-number robustness summary. `None` when no criterion
/// can flip the decision.
pub fn min_relative_flip(sensitivities: &[WeightSensitivity]) -> Option<f64> {
    sensitivities
        .iter()
        .filter_map(WeightSensitivity::relative_flip)
        .min_by(f64::total_cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_winner_needs_large_changes() {
        // Alternative 0 dominates on both criteria: no non-negative weight
        // change can flip it.
        let weights = [0.6, 0.4];
        let ratings = vec![vec![0.9, 0.9], vec![0.2, 0.2]];
        let s = top_pair_sensitivity(&weights, &ratings).unwrap();
        assert_eq!(s.len(), 2);
        for ws in &s {
            // Flipping would need a negative criterion weight.
            assert_eq!(ws.flip_delta, None, "{ws:?}");
        }
        assert_eq!(min_relative_flip(&s), None);
    }

    #[test]
    fn photo_finish_flips_easily() {
        // Winner leads by a hair and loses on criterion 1: a small weight
        // shift flips the decision.
        let weights = [0.5, 0.5];
        let ratings = vec![vec![0.80, 0.50], vec![0.70, 0.58]];
        let scores0 = 0.5 * 0.80 + 0.5 * 0.50;
        let scores1 = 0.5 * 0.70 + 0.5 * 0.58;
        assert!(scores0 > scores1);
        let s = top_pair_sensitivity(&weights, &ratings).unwrap();
        // Criterion 1 favours the runner-up (d = -0.08): increasing its
        // weight by lead/0.08 = 0.01/0.08 = 0.125 ties them.
        let c1 = s[1];
        let delta = c1.flip_delta.unwrap();
        assert!((delta - 0.125).abs() < 1e-9, "delta {delta}");
        assert!((c1.relative_flip().unwrap() - 0.25).abs() < 1e-9);
        // Criterion 0 favours the winner: flipping along it means taking
        // weight away (negative delta), still feasible while ≥ 0.
        let c0 = s[0];
        assert!(c0.flip_delta.unwrap() < 0.0);
        let min = min_relative_flip(&s).unwrap();
        assert!((min - 0.2).abs() < 1e-9, "min {min}"); // 0.1/0.5 along c0
    }

    #[test]
    fn tie_on_a_criterion_cannot_flip_along_it() {
        let weights = [0.5, 0.5];
        let ratings = vec![vec![0.8, 0.6], vec![0.5, 0.6]];
        let s = top_pair_sensitivity(&weights, &ratings).unwrap();
        assert_eq!(s[1].flip_delta, None);
        assert!(s[0].flip_delta.is_some());
    }

    #[test]
    fn validation() {
        assert!(top_pair_sensitivity(&[0.5], &[vec![1.0]]).is_err());
        assert!(top_pair_sensitivity(&[0.5, 0.5], &[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn flip_actually_flips() {
        // Apply the reported delta and verify the ranking reverses (or
        // ties) in the additive model.
        let weights = [0.4, 0.6];
        let ratings = vec![vec![0.9, 0.40], vec![0.3, 0.75]];
        let s = top_pair_sensitivity(&weights, &ratings).unwrap();
        for ws in &s {
            let Some(delta) = ws.flip_delta else { continue };
            let mut w2 = weights.to_vec();
            w2[ws.criterion] += delta;
            let score = |row: &Vec<f64>| -> f64 { row.iter().zip(&w2).map(|(r, w)| r * w).sum() };
            let diff: f64 = score(&ratings[0]) - score(&ratings[1]);
            assert!(diff.abs() < 1e-9, "criterion {}: diff {diff}", ws.criterion);
        }
    }
}
