//! Rank construction and aggregation.
//!
//! Helpers for turning score vectors into rankings and for aggregating
//! several rankings (e.g. one per expert, or one per MCDA method) into a
//! consensus: Borda count, Copeland pairwise majority, and exact Kemeny
//! (brute force over permutations, suitable for the ≤ 8 alternatives the
//! experiments use).

use crate::{McdaError, Result};

/// Orders item indices best → worst by score.
///
/// `higher_is_better = false` flips the order (cost-style scores). Ties are
/// broken by index for determinism.
pub fn ranking_from_scores(scores: &[f64], higher_is_better: bool) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        let ord = scores[b].total_cmp(&scores[a]);
        let ord = if higher_is_better { ord } else { ord.reverse() };
        ord.then(a.cmp(&b))
    });
    idx
}

/// Converts a best→worst ordering into per-item rank positions (0 = best).
pub fn positions_from_ranking(ranking: &[usize]) -> Vec<usize> {
    let mut pos = vec![0usize; ranking.len()];
    for (rank, &item) in ranking.iter().enumerate() {
        pos[item] = rank;
    }
    pos
}

fn validate_rankings(rankings: &[Vec<usize>]) -> Result<usize> {
    if rankings.is_empty() {
        return Err(McdaError::Degenerate {
            reason: "no rankings to aggregate",
        });
    }
    let n = rankings[0].len();
    if n == 0 {
        return Err(McdaError::Degenerate {
            reason: "rankings over zero items",
        });
    }
    for r in rankings {
        if r.len() != n {
            return Err(McdaError::DimensionMismatch {
                expected: n,
                actual: r.len(),
            });
        }
        let mut seen = vec![false; n];
        for &item in r {
            if item >= n {
                return Err(McdaError::IndexOutOfBounds {
                    index: item,
                    size: n,
                });
            }
            if seen[item] {
                return Err(McdaError::Degenerate {
                    reason: "ranking repeats an item",
                });
            }
            seen[item] = true;
        }
    }
    Ok(n)
}

/// Borda count: item scores `n − 1 − position`, summed over rankings.
/// Returns the consensus ordering (ties broken by index).
///
/// # Errors
///
/// Returns [`McdaError`] variants for empty, ragged or non-permutation
/// input.
pub fn borda(rankings: &[Vec<usize>]) -> Result<Vec<usize>> {
    let n = validate_rankings(rankings)?;
    let mut scores = vec![0.0; n];
    for r in rankings {
        for (pos, &item) in r.iter().enumerate() {
            scores[item] += (n - 1 - pos) as f64;
        }
    }
    Ok(ranking_from_scores(&scores, true))
}

/// Copeland method: an item scores +1 for every item it beats in pairwise
/// majority and −1 for every item it loses to.
///
/// # Errors
///
/// Same input validation as [`borda`].
pub fn copeland(rankings: &[Vec<usize>]) -> Result<Vec<usize>> {
    let n = validate_rankings(rankings)?;
    let positions: Vec<Vec<usize>> = rankings.iter().map(|r| positions_from_ranking(r)).collect();
    let mut scores = vec![0.0; n];
    for a in 0..n {
        for b in (a + 1)..n {
            let a_wins = positions.iter().filter(|p| p[a] < p[b]).count();
            let b_wins = positions.len() - a_wins;
            match a_wins.cmp(&b_wins) {
                std::cmp::Ordering::Greater => {
                    scores[a] += 1.0;
                    scores[b] -= 1.0;
                }
                std::cmp::Ordering::Less => {
                    scores[b] += 1.0;
                    scores[a] -= 1.0;
                }
                std::cmp::Ordering::Equal => {}
            }
        }
    }
    Ok(ranking_from_scores(&scores, true))
}

/// Exact Kemeny-optimal consensus: the ordering minimizing the total number
/// of pairwise disagreements with the input rankings, found by exhaustive
/// permutation search.
///
/// # Errors
///
/// Returns [`McdaError::Degenerate`] when the item count exceeds 8 (the
/// factorial search would be impractical) plus the usual input validation.
pub fn kemeny(rankings: &[Vec<usize>]) -> Result<Vec<usize>> {
    let n = validate_rankings(rankings)?;
    if n > 8 {
        return Err(McdaError::Degenerate {
            reason: "exact Kemeny limited to 8 items; use borda/copeland",
        });
    }
    // Pairwise preference counts: pref[a][b] = how many rankings place a
    // above b.
    let positions: Vec<Vec<usize>> = rankings.iter().map(|r| positions_from_ranking(r)).collect();
    let mut pref = vec![vec![0usize; n]; n];
    for p in &positions {
        for a in 0..n {
            for b in 0..n {
                if a != b && p[a] < p[b] {
                    pref[a][b] += 1;
                }
            }
        }
    }
    // Cost of an ordering: for each ordered pair (x above y), the number of
    // rankings preferring y over x.
    let mut best: Option<(usize, Vec<usize>)> = None;
    let mut items: Vec<usize> = (0..n).collect();
    permute(&mut items, 0, &mut |perm| {
        let mut cost = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                cost += pref[perm[j]][perm[i]];
            }
        }
        match &best {
            Some((c, _)) if *c <= cost => {}
            _ => best = Some((cost, perm.to_vec())),
        }
    });
    Ok(best.expect("n >= 1 guarantees at least one permutation").1)
}

fn permute<F: FnMut(&[usize])>(items: &mut Vec<usize>, k: usize, visit: &mut F) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_to_ranking() {
        assert_eq!(ranking_from_scores(&[0.1, 0.9, 0.5], true), vec![1, 2, 0]);
        assert_eq!(ranking_from_scores(&[0.1, 0.9, 0.5], false), vec![0, 2, 1]);
        // Deterministic tie-break by index.
        assert_eq!(ranking_from_scores(&[0.5, 0.5], true), vec![0, 1]);
    }

    #[test]
    fn positions_round_trip() {
        let ranking = vec![2, 0, 1];
        let pos = positions_from_ranking(&ranking);
        assert_eq!(pos, vec![1, 2, 0]);
    }

    #[test]
    fn borda_unanimous() {
        let rankings = vec![vec![1, 0, 2], vec![1, 0, 2], vec![1, 0, 2]];
        assert_eq!(borda(&rankings).unwrap(), vec![1, 0, 2]);
    }

    #[test]
    fn borda_majority() {
        let rankings = vec![vec![0, 1, 2], vec![0, 1, 2], vec![2, 1, 0]];
        assert_eq!(borda(&rankings).unwrap()[0], 0);
    }

    #[test]
    fn copeland_matches_borda_on_clean_majorities() {
        let rankings = vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2]];
        assert_eq!(
            copeland(&rankings).unwrap()[0],
            borda(&rankings).unwrap()[0]
        );
    }

    #[test]
    fn kemeny_recovers_unanimity_and_majority() {
        let rankings = vec![vec![2, 1, 0], vec![2, 1, 0]];
        assert_eq!(kemeny(&rankings).unwrap(), vec![2, 1, 0]);
        let rankings = vec![vec![0, 1, 2], vec![0, 1, 2], vec![1, 2, 0]];
        assert_eq!(kemeny(&rankings).unwrap()[0], 0);
    }

    #[test]
    fn kemeny_minimizes_disagreement() {
        // Condorcet-cycle style input; Kemeny must pick one of the three
        // minimum-cost orderings, all of which cost 4 here.
        let rankings = vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]];
        let consensus = kemeny(&rankings).unwrap();
        let positions: Vec<Vec<usize>> =
            rankings.iter().map(|r| positions_from_ranking(r)).collect();
        let cons_pos = positions_from_ranking(&consensus);
        let mut cost = 0;
        for p in &positions {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    if (p[a] < p[b]) != (cons_pos[a] < cons_pos[b]) {
                        cost += 1;
                    }
                }
            }
        }
        assert_eq!(cost, 4);
    }

    #[test]
    fn input_validation() {
        assert!(borda(&[]).is_err());
        assert!(borda(&[vec![]]).is_err());
        assert!(borda(&[vec![0, 1], vec![0]]).is_err());
        assert!(borda(&[vec![0, 0]]).is_err());
        assert!(borda(&[vec![0, 5]]).is_err());
        let big: Vec<usize> = (0..9).collect();
        assert!(kemeny(&[big]).is_err());
    }

    #[test]
    fn aggregators_agree_on_strong_consensus() {
        let rankings = vec![
            vec![3, 1, 0, 2],
            vec![3, 1, 2, 0],
            vec![3, 0, 1, 2],
            vec![1, 3, 0, 2],
        ];
        let b = borda(&rankings).unwrap();
        let c = copeland(&rankings).unwrap();
        let k = kemeny(&rankings).unwrap();
        assert_eq!(b[0], 3);
        assert_eq!(c[0], 3);
        assert_eq!(k[0], 3);
    }
}
