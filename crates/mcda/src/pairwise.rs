//! Reciprocal pairwise-comparison matrices.

use crate::{McdaError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A positive reciprocal matrix of pairwise judgments: `a[i][j]` states how
/// many times more important element `i` is than element `j`, and
/// `a[j][i] = 1 / a[i][j]` is maintained automatically.
///
/// ```
/// use vdbench_mcda::PairwiseMatrix;
///
/// let mut m = PairwiseMatrix::identity(3);
/// m.set(0, 1, 3.0)?; // element 0 moderately more important than 1
/// m.set(0, 2, 5.0)?;
/// m.set(1, 2, 2.0)?;
/// assert_eq!(m.get(1, 0), 1.0 / 3.0);
/// # Ok::<(), vdbench_mcda::McdaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl PairwiseMatrix {
    /// Creates the `n × n` identity judgment matrix (everything equally
    /// important).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "pairwise matrix needs at least one element");
        let mut data = vec![1.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    data[i * n + j] = 1.0;
                }
            }
        }
        PairwiseMatrix { n, data }
    }

    /// Builds the perfectly consistent matrix implied by a weight vector:
    /// `a[i][j] = w[i] / w[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::Degenerate`] on empty input and
    /// [`McdaError::InvalidValue`] for non-positive weights.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(McdaError::Degenerate {
                reason: "no weights",
            });
        }
        for &w in weights {
            if !w.is_finite() || w <= 0.0 {
                return Err(McdaError::InvalidValue {
                    name: "weight",
                    value: w,
                });
            }
        }
        let n = weights.len();
        let mut m = PairwiseMatrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = weights[i] / weights[j];
            }
        }
        Ok(m)
    }

    /// Builds a matrix from upper-triangle judgments listed row-major:
    /// `judgments[k]` is the comparison of `i` vs `j` for successive
    /// `(i, j), i < j`.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::DimensionMismatch`] when the judgment count is
    /// not `n(n−1)/2` and [`McdaError::InvalidValue`] for non-positive
    /// entries.
    pub fn from_upper_triangle(n: usize, judgments: &[f64]) -> Result<Self> {
        let expected = n * (n - 1) / 2;
        if judgments.len() != expected {
            return Err(McdaError::DimensionMismatch {
                expected,
                actual: judgments.len(),
            });
        }
        let mut m = PairwiseMatrix::identity(n);
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, judgments[k])?;
                k += 1;
            }
        }
        Ok(m)
    }

    /// Number of compared elements.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Reads judgment `a[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "pairwise index out of bounds");
        self.data[i * self.n + j]
    }

    /// Sets judgment `a[i][j] = value` and `a[j][i] = 1 / value`.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::IndexOutOfBounds`] for bad indices,
    /// [`McdaError::InvalidValue`] for non-positive/non-finite values, and
    /// [`McdaError::Degenerate`] when `i == j` and `value != 1`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i >= self.n {
            return Err(McdaError::IndexOutOfBounds {
                index: i,
                size: self.n,
            });
        }
        if j >= self.n {
            return Err(McdaError::IndexOutOfBounds {
                index: j,
                size: self.n,
            });
        }
        if !value.is_finite() || value <= 0.0 {
            return Err(McdaError::InvalidValue {
                name: "judgment",
                value,
            });
        }
        if i == j {
            if (value - 1.0).abs() > f64::EPSILON {
                return Err(McdaError::Degenerate {
                    reason: "diagonal judgments must be 1",
                });
            }
            return Ok(());
        }
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = 1.0 / value;
        Ok(())
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds row.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row index out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Verifies the reciprocal property within floating-point tolerance.
    pub fn is_reciprocal(&self) -> bool {
        for i in 0..self.n {
            if (self.get(i, i) - 1.0).abs() > 1e-12 {
                return false;
            }
            for j in (i + 1)..self.n {
                if (self.get(i, j) * self.get(j, i) - 1.0).abs() > 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the matrix is perfectly (cardinally) consistent:
    /// `a[i][k] = a[i][j] · a[j][k]` for all triples, within tolerance.
    pub fn is_consistent(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let direct = self.get(i, k);
                    let via = self.get(i, j) * self.get(j, k);
                    if (direct - via).abs() > tol * direct.abs().max(1.0) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Multiplies the matrix by a vector.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::DimensionMismatch`] when the vector length is
    /// not `n`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.n);
        self.mul_vec_into(v, &mut out)?;
        Ok(out)
    }

    /// Multiplies the matrix by a vector into a caller-provided buffer —
    /// the allocation-free form used by the power iteration in
    /// [`crate::priority::eigenvector_priorities`], which would otherwise
    /// allocate a fresh `Vec` per iteration. Performs exactly the same
    /// row-dot-product operations (same order) as [`Self::mul_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::DimensionMismatch`] when the vector length is
    /// not `n`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.n {
            return Err(McdaError::DimensionMismatch {
                expected: self.n,
                actual: v.len(),
            });
        }
        out.clear();
        out.extend((0..self.n).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum::<f64>()));
        Ok(())
    }
}

impl fmt::Display for PairwiseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:7.3}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_shape() {
        let m = PairwiseMatrix::identity(3);
        assert_eq!(m.size(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), 1.0);
            }
        }
        assert!(m.is_reciprocal());
        assert!(m.is_consistent(1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_size_panics() {
        let _ = PairwiseMatrix::identity(0);
    }

    #[test]
    fn set_maintains_reciprocity() {
        let mut m = PairwiseMatrix::identity(4);
        m.set(0, 3, 7.0).unwrap();
        assert_eq!(m.get(3, 0), 1.0 / 7.0);
        m.set(3, 0, 2.0).unwrap();
        assert_eq!(m.get(0, 3), 0.5);
        assert!(m.is_reciprocal());
    }

    #[test]
    fn set_validation() {
        let mut m = PairwiseMatrix::identity(2);
        assert!(m.set(0, 1, 0.0).is_err());
        assert!(m.set(0, 1, -3.0).is_err());
        assert!(m.set(0, 1, f64::NAN).is_err());
        assert!(m.set(2, 0, 1.0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
        assert!(m.set(0, 0, 2.0).is_err());
        assert!(m.set(0, 0, 1.0).is_ok());
    }

    #[test]
    fn from_weights_is_consistent() {
        let m = PairwiseMatrix::from_weights(&[0.5, 0.3, 0.2]).unwrap();
        assert!(m.is_reciprocal());
        assert!(m.is_consistent(1e-12));
        assert!((m.get(0, 1) - 0.5 / 0.3).abs() < 1e-12);
        assert!(PairwiseMatrix::from_weights(&[]).is_err());
        assert!(PairwiseMatrix::from_weights(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn from_upper_triangle_layout() {
        // n=3: judgments are (0,1), (0,2), (1,2)
        let m = PairwiseMatrix::from_upper_triangle(3, &[3.0, 5.0, 2.0]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(2, 1), 0.5);
        assert!(PairwiseMatrix::from_upper_triangle(3, &[1.0]).is_err());
    }

    #[test]
    fn inconsistency_detected() {
        // 0>1 (3x), 1>2 (3x), but 0 vs 2 judged equal — intransitive
        // intensity.
        let m = PairwiseMatrix::from_upper_triangle(3, &[3.0, 1.0, 3.0]).unwrap();
        assert!(m.is_reciprocal());
        assert!(!m.is_consistent(0.1));
    }

    #[test]
    fn mul_vec_works() {
        let m = PairwiseMatrix::from_weights(&[2.0, 1.0]).unwrap();
        let out = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![3.0, 1.5]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn display_renders_rows() {
        let m = PairwiseMatrix::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
