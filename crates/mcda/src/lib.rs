//! Multi-criteria decision analysis for the metric-selection study.
//!
//! Stage 3 of Antunes & Vieira (DSN 2015) validates the analytical metric
//! selection by running "an MCDA algorithm together with experts' judgment".
//! This crate provides that machinery in full:
//!
//! * [`pairwise::PairwiseMatrix`] — Saaty reciprocal comparison matrices;
//! * [`priority`] — priority-vector extraction (geometric-mean and principal
//!   eigenvector methods);
//! * [`consistency`] — consistency index/ratio with Saaty's random-index
//!   table;
//! * [`ahp::Ahp`] — the full goal → criteria → alternatives hierarchy, with
//!   either pairwise-compared or directly-rated alternatives;
//! * [`decision`], [`saw`], [`topsis`] — decision matrices and the two
//!   ablation MCDA methods, used to show conclusions are not AHP-specific;
//! * [`ranking`] — Borda, Copeland and exact Kemeny rank aggregation;
//! * [`group`] — aggregation of individual judgments (AIJ) and priorities
//!   (AIP) across an expert panel;
//! * [`sensitivity`] — weight-sensitivity analysis of additive rankings
//!   (how much must a criterion weight move to flip the winner?).
//!
//! # Example: a tiny AHP
//!
//! ```
//! use vdbench_mcda::pairwise::PairwiseMatrix;
//! use vdbench_mcda::priority::eigenvector_priorities;
//!
//! // Two criteria, the first 3x as important.
//! let mut m = PairwiseMatrix::identity(2);
//! m.set(0, 1, 3.0)?;
//! let solved = eigenvector_priorities(&m)?;
//! assert!((solved.weights[0] - 0.75).abs() < 1e-9);
//! # Ok::<(), vdbench_mcda::McdaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ahp;
pub mod consistency;
pub mod decision;
pub mod group;
pub mod pairwise;
pub mod priority;
pub mod ranking;
pub mod saw;
pub mod scale;
pub mod sensitivity;
pub mod topsis;

pub use ahp::Ahp;
pub use decision::{Criterion, DecisionMatrix, Direction};
pub use pairwise::PairwiseMatrix;
pub use scale::SaatyScale;

use std::fmt;

/// Errors produced by MCDA routines.
#[derive(Debug, Clone, PartialEq)]
pub enum McdaError {
    /// A judgment or weight was outside its domain.
    InvalidValue {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Matrix/vector dimensions do not line up.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container size.
        size: usize,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
    },
    /// The problem is degenerate (e.g. no alternatives).
    Degenerate {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for McdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McdaError::InvalidValue { name, value } => {
                write!(f, "invalid value for `{name}`: {value}")
            }
            McdaError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            McdaError::IndexOutOfBounds { index, size } => {
                write!(f, "index {index} out of bounds for size {size}")
            }
            McdaError::NoConvergence { routine } => {
                write!(f, "routine `{routine}` failed to converge")
            }
            McdaError::Degenerate { reason } => write!(f, "degenerate problem: {reason}"),
        }
    }
}

impl std::error::Error for McdaError {}

/// Crate-wide result alias.
pub type Result<T, E = McdaError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        let e = McdaError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(McdaError::NoConvergence { routine: "power" }
            .to_string()
            .contains("power"));
        assert!(McdaError::Degenerate { reason: "empty" }
            .to_string()
            .contains("empty"));
        assert!(McdaError::IndexOutOfBounds { index: 5, size: 3 }
            .to_string()
            .contains('5'));
        assert!(McdaError::InvalidValue {
            name: "judgment",
            value: -1.0
        }
        .to_string()
        .contains("judgment"));
    }
}
