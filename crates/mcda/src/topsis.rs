//! TOPSIS: Technique for Order of Preference by Similarity to Ideal
//! Solution.
//!
//! Ranks alternatives by relative closeness to the ideal (best value on
//! every criterion) versus the anti-ideal. Included as an ablation MCDA
//! method: Table 6's conclusions should not depend on the choice of AHP.

use crate::decision::{DecisionMatrix, Direction};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Result of a TOPSIS evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopsisResult {
    /// Closeness coefficient per alternative in `[0, 1]`; higher is better.
    pub closeness: Vec<f64>,
    /// Alternative indices ordered best → worst.
    pub ranking: Vec<usize>,
}

/// Runs TOPSIS with vector normalization.
///
/// # Errors
///
/// Never fails for a valid [`DecisionMatrix`]; mirrors the other MCDA entry
/// points.
pub fn evaluate(dm: &DecisionMatrix) -> Result<TopsisResult> {
    let norm = dm.normalize_vector();
    let weights = dm.normalized_weights();
    let n_alt = norm.len();
    let n_crit = weights.len();

    // Weighted normalized matrix.
    let weighted: Vec<Vec<f64>> = norm
        .iter()
        .map(|row| row.iter().zip(&weights).map(|(v, w)| v * w).collect())
        .collect();

    // Ideal and anti-ideal per criterion, respecting direction.
    let mut ideal = vec![0.0; n_crit];
    let mut anti = vec![0.0; n_crit];
    for c in 0..n_crit {
        let col: Vec<f64> = weighted.iter().map(|row| row[c]).collect();
        let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = col.iter().copied().fold(f64::INFINITY, f64::min);
        match dm.criteria()[c].direction {
            Direction::Benefit => {
                ideal[c] = max;
                anti[c] = min;
            }
            Direction::Cost => {
                ideal[c] = min;
                anti[c] = max;
            }
        }
    }

    let dist = |row: &[f64], target: &[f64]| -> f64 {
        row.iter()
            .zip(target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };

    let closeness: Vec<f64> = (0..n_alt)
        .map(|a| {
            let d_plus = dist(&weighted[a], &ideal);
            let d_minus = dist(&weighted[a], &anti);
            if d_plus + d_minus == 0.0 {
                // All alternatives identical on every criterion.
                0.5
            } else {
                d_minus / (d_plus + d_minus)
            }
        })
        .collect();

    let mut ranking: Vec<usize> = (0..n_alt).collect();
    ranking.sort_by(|&a, &b| closeness[b].total_cmp(&closeness[a]));
    Ok(TopsisResult { closeness, ranking })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Criterion;

    #[test]
    fn dominant_alternative_has_closeness_one() {
        let dm = DecisionMatrix::new(
            vec!["best".into(), "worst".into()],
            vec![
                Criterion::benefit("recall", 1.0),
                Criterion::cost("alarms", 1.0),
            ],
            vec![vec![0.9, 1.0], vec![0.1, 50.0]],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        assert_eq!(r.ranking, vec![0, 1]);
        assert!((r.closeness[0] - 1.0).abs() < 1e-12);
        assert!(r.closeness[1].abs() < 1e-12);
    }

    #[test]
    fn identical_alternatives_tie_at_half() {
        let dm = DecisionMatrix::new(
            vec!["a".into(), "b".into()],
            vec![Criterion::benefit("x", 1.0)],
            vec![vec![3.0], vec![3.0]],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        assert_eq!(r.closeness, vec![0.5, 0.5]);
    }

    #[test]
    fn agrees_with_saw_on_clear_orderings() {
        let dm = DecisionMatrix::new(
            vec!["low".into(), "mid".into(), "high".into()],
            vec![Criterion::benefit("x", 2.0), Criterion::benefit("y", 1.0)],
            vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]],
        )
        .unwrap();
        let t = evaluate(&dm).unwrap();
        let s = crate::saw::evaluate(&dm).unwrap();
        assert_eq!(t.ranking, s.ranking);
        assert_eq!(t.ranking, vec![2, 1, 0]);
    }

    #[test]
    fn closeness_in_unit_interval() {
        let dm = DecisionMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                Criterion::benefit("x", 1.0),
                Criterion::cost("y", 3.0),
                Criterion::benefit("z", 2.0),
            ],
            vec![
                vec![0.1, 9.0, 4.0],
                vec![0.8, 2.0, 1.0],
                vec![0.4, 5.0, 8.0],
                vec![0.9, 1.0, 0.5],
            ],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        for c in &r.closeness {
            assert!((0.0..=1.0).contains(c));
        }
        assert_eq!(r.ranking.len(), 4);
    }

    #[test]
    fn cost_direction_respected() {
        // Only criterion is a cost: fewer alarms must win.
        let dm = DecisionMatrix::new(
            vec!["noisy".into(), "quiet".into()],
            vec![Criterion::cost("alarms", 1.0)],
            vec![vec![100.0], vec![3.0]],
        )
        .unwrap();
        let r = evaluate(&dm).unwrap();
        assert_eq!(r.ranking[0], 1);
    }
}
