//! The Analytic Hierarchy Process.
//!
//! The validation pipeline of the paper: a goal ("pick the benchmark metric
//! for this scenario"), criteria (the characteristics of a good metric,
//! weighted by expert pairwise judgment) and alternatives (the candidate
//! metrics). Alternatives can be compared pairwise per criterion (classic
//! AHP) or rated directly with measured attribute scores (ratings mode) —
//! the experiments use ratings mode with empirically assessed attributes,
//! expert panels supply the criteria matrix.

use crate::consistency::{check, ConsistencyReport};
use crate::decision::Direction;
use crate::pairwise::PairwiseMatrix;
use crate::ranking::ranking_from_scores;
use crate::{McdaError, Result};
use serde::{Deserialize, Serialize};

/// How alternatives are scored under each criterion.
#[derive(Debug, Clone)]
enum AlternativeInput {
    /// One pairwise comparison matrix of alternatives per criterion.
    Pairwise(Vec<PairwiseMatrix>),
    /// Direct performance ratings: `values[alt][crit]` plus a direction per
    /// criterion.
    Ratings {
        values: Vec<Vec<f64>>,
        directions: Vec<Direction>,
    },
}

/// A configured AHP hierarchy ready to solve.
///
/// ```
/// use vdbench_mcda::ahp::Ahp;
/// use vdbench_mcda::pairwise::PairwiseMatrix;
/// use vdbench_mcda::decision::Direction;
///
/// // Two criteria (the first 3x as important), three alternatives rated
/// // directly.
/// let mut criteria = PairwiseMatrix::identity(2);
/// criteria.set(0, 1, 3.0)?;
/// let ahp = Ahp::with_ratings(
///     vec!["validity".into(), "simplicity".into()],
///     criteria,
///     vec!["PPV".into(), "TPR".into(), "MCC".into()],
///     vec![vec![0.9, 0.8], vec![0.6, 0.9], vec![0.95, 0.3]],
///     vec![Direction::Benefit, Direction::Benefit],
/// )?;
/// let result = ahp.solve()?;
/// assert_eq!(result.scores.len(), 3);
/// # Ok::<(), vdbench_mcda::McdaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ahp {
    criteria_names: Vec<String>,
    alternative_names: Vec<String>,
    criteria_matrix: PairwiseMatrix,
    alternatives: AlternativeInput,
}

/// The solved hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AhpResult {
    /// Criteria weights from the expert judgment matrix.
    pub criteria_weights: Vec<f64>,
    /// Consistency of the criteria judgments.
    pub criteria_consistency: ConsistencyReport,
    /// Per-criterion consistency of alternative judgments (classic mode
    /// only; empty in ratings mode).
    pub alternative_consistency: Vec<ConsistencyReport>,
    /// Global priority per alternative (sums to 1).
    pub scores: Vec<f64>,
    /// Alternative indices ordered best → worst.
    pub ranking: Vec<usize>,
}

impl AhpResult {
    /// Index of the winning alternative.
    pub fn best(&self) -> usize {
        self.ranking[0]
    }

    /// Whether every judgment matrix in the hierarchy met Saaty's 10% rule.
    pub fn is_consistent(&self) -> bool {
        self.criteria_consistency.is_acceptable()
            && self
                .alternative_consistency
                .iter()
                .all(ConsistencyReport::is_acceptable)
    }
}

impl Ahp {
    /// Builds a classic hierarchy with pairwise-compared alternatives.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::DimensionMismatch`] when matrix sizes disagree
    /// with the name lists and [`McdaError::Degenerate`] for empty inputs.
    pub fn with_pairwise(
        criteria_names: Vec<String>,
        criteria_matrix: PairwiseMatrix,
        alternative_names: Vec<String>,
        alternative_matrices: Vec<PairwiseMatrix>,
    ) -> Result<Self> {
        validate_names(&criteria_names, &alternative_names)?;
        if criteria_matrix.size() != criteria_names.len() {
            return Err(McdaError::DimensionMismatch {
                expected: criteria_names.len(),
                actual: criteria_matrix.size(),
            });
        }
        if alternative_matrices.len() != criteria_names.len() {
            return Err(McdaError::DimensionMismatch {
                expected: criteria_names.len(),
                actual: alternative_matrices.len(),
            });
        }
        for m in &alternative_matrices {
            if m.size() != alternative_names.len() {
                return Err(McdaError::DimensionMismatch {
                    expected: alternative_names.len(),
                    actual: m.size(),
                });
            }
        }
        Ok(Ahp {
            criteria_names,
            alternative_names,
            criteria_matrix,
            alternatives: AlternativeInput::Pairwise(alternative_matrices),
        })
    }

    /// Builds a ratings-mode hierarchy (absolute measurement): alternatives
    /// are scored directly on each criterion with commensurable intensities
    /// in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::DimensionMismatch`] for shape disagreements,
    /// [`McdaError::Degenerate`] for empty inputs and
    /// [`McdaError::InvalidValue`] for ratings outside `[0, 1]`.
    pub fn with_ratings(
        criteria_names: Vec<String>,
        criteria_matrix: PairwiseMatrix,
        alternative_names: Vec<String>,
        ratings: Vec<Vec<f64>>,
        directions: Vec<Direction>,
    ) -> Result<Self> {
        validate_names(&criteria_names, &alternative_names)?;
        if criteria_matrix.size() != criteria_names.len() {
            return Err(McdaError::DimensionMismatch {
                expected: criteria_names.len(),
                actual: criteria_matrix.size(),
            });
        }
        if ratings.len() != alternative_names.len() {
            return Err(McdaError::DimensionMismatch {
                expected: alternative_names.len(),
                actual: ratings.len(),
            });
        }
        if directions.len() != criteria_names.len() {
            return Err(McdaError::DimensionMismatch {
                expected: criteria_names.len(),
                actual: directions.len(),
            });
        }
        for row in &ratings {
            if row.len() != criteria_names.len() {
                return Err(McdaError::DimensionMismatch {
                    expected: criteria_names.len(),
                    actual: row.len(),
                });
            }
            for &v in row {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(McdaError::InvalidValue {
                        name: "rating",
                        value: v,
                    });
                }
            }
        }
        Ok(Ahp {
            criteria_names,
            alternative_names,
            criteria_matrix,
            alternatives: AlternativeInput::Ratings {
                values: ratings,
                directions,
            },
        })
    }

    /// Criteria names.
    pub fn criteria_names(&self) -> &[String] {
        &self.criteria_names
    }

    /// Alternative names.
    pub fn alternative_names(&self) -> &[String] {
        &self.alternative_names
    }

    /// Solves the hierarchy: criteria priorities × per-criterion
    /// alternative priorities → global scores.
    ///
    /// # Errors
    ///
    /// Propagates eigenvector solver failures.
    pub fn solve(&self) -> Result<AhpResult> {
        let _span = vdbench_telemetry::span!(
            "mcda",
            "ahp_solve",
            criteria = self.criteria_names.len(),
            alternatives = self.alternative_names.len()
        );
        let (criteria_pv, criteria_consistency) = check(&self.criteria_matrix)?;
        let n_alt = self.alternative_names.len();
        let mut scores = vec![0.0; n_alt];
        let mut alternative_consistency = Vec::new();

        match &self.alternatives {
            AlternativeInput::Pairwise(matrices) => {
                for (c, m) in matrices.iter().enumerate() {
                    let (pv, report) = check(m)?;
                    alternative_consistency.push(report);
                    for (s, w) in scores.iter_mut().zip(&pv.weights) {
                        *s += criteria_pv.weights[c] * w;
                    }
                }
            }
            AlternativeInput::Ratings { values, directions } => {
                for c in 0..self.criteria_names.len() {
                    let col: Vec<f64> = values.iter().map(|row| row[c]).collect();
                    let local = orient_ratings(&col, directions[c]);
                    for (s, w) in scores.iter_mut().zip(&local) {
                        *s += criteria_pv.weights[c] * w;
                    }
                }
            }
        }

        // Scores already sum to 1 (convex combination of normalized local
        // priorities); renormalize defensively against rounding.
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        let ranking = ranking_from_scores(&scores, true);
        Ok(AhpResult {
            criteria_weights: criteria_pv.weights,
            criteria_consistency,
            alternative_consistency,
            scores,
            ranking,
        })
    }
}

fn validate_names(criteria: &[String], alternatives: &[String]) -> Result<()> {
    if criteria.is_empty() {
        return Err(McdaError::Degenerate {
            reason: "no criteria",
        });
    }
    if alternatives.is_empty() {
        return Err(McdaError::Degenerate {
            reason: "no alternatives",
        });
    }
    Ok(())
}

/// Orients a ratings column as absolute intensities (Saaty's *ratings
/// mode* / absolute measurement): values are already commensurable scores
/// in `[0, 1]`, so benefit criteria use them directly and cost criteria use
/// the complement. No per-column renormalization is applied — relative
/// normalization would re-weight criteria by the accident of their column
/// sums and break agreement with direct weighted-sum selection.
fn orient_ratings(col: &[f64], direction: Direction) -> Vec<f64> {
    col.iter()
        .map(|&v| match direction {
            Direction::Benefit => v,
            Direction::Cost => 1.0 - v,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classic_mode_consistent_hierarchy() {
        // Criteria: quality 3x cost. Alternatives: A beats B on quality,
        // B beats A on cost, quality dominates → A wins.
        let mut criteria = PairwiseMatrix::identity(2);
        criteria.set(0, 1, 3.0).unwrap();
        let mut quality = PairwiseMatrix::identity(2);
        quality.set(0, 1, 5.0).unwrap();
        let mut cost = PairwiseMatrix::identity(2);
        cost.set(0, 1, 1.0 / 5.0).unwrap();
        let ahp = Ahp::with_pairwise(
            names(&["quality", "cost"]),
            criteria,
            names(&["A", "B"]),
            vec![quality, cost],
        )
        .unwrap();
        let r = ahp.solve().unwrap();
        assert_eq!(r.best(), 0);
        assert!(r.is_consistent());
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(r.alternative_consistency.len(), 2);
    }

    #[test]
    fn ratings_mode_weights_matter() {
        let mut validity_heavy = PairwiseMatrix::identity(2);
        validity_heavy.set(0, 1, 9.0).unwrap();
        let mut simplicity_heavy = PairwiseMatrix::identity(2);
        simplicity_heavy.set(0, 1, 1.0 / 9.0).unwrap();
        let ratings = vec![vec![0.95, 0.2], vec![0.5, 0.95]];
        let mk = |criteria: PairwiseMatrix| {
            Ahp::with_ratings(
                names(&["validity", "simplicity"]),
                criteria,
                names(&["MCC", "PPV"]),
                ratings.clone(),
                vec![Direction::Benefit, Direction::Benefit],
            )
            .unwrap()
        };
        assert_eq!(mk(validity_heavy).solve().unwrap().best(), 0);
        assert_eq!(mk(simplicity_heavy).solve().unwrap().best(), 1);
    }

    #[test]
    fn ratings_mode_cost_direction() {
        let criteria = PairwiseMatrix::identity(1);
        let ahp = Ahp::with_ratings(
            names(&["undefined-cases"]),
            criteria,
            names(&["fragile", "robust"]),
            vec![vec![0.9], vec![0.1]],
            vec![Direction::Cost],
        )
        .unwrap();
        assert_eq!(ahp.solve().unwrap().best(), 1);
    }

    #[test]
    fn constant_column_is_neutral() {
        let criteria = PairwiseMatrix::identity(1);
        let ahp = Ahp::with_ratings(
            names(&["x"]),
            criteria,
            names(&["a", "b"]),
            vec![vec![0.5], vec![0.5]],
            vec![Direction::Benefit],
        )
        .unwrap();
        let r = ahp.solve().unwrap();
        assert!((r.scores[0] - r.scores[1]).abs() < 1e-12);
    }

    #[test]
    fn ratings_outside_unit_interval_rejected() {
        let criteria = PairwiseMatrix::identity(1);
        assert!(Ahp::with_ratings(
            names(&["x"]),
            criteria,
            names(&["a"]),
            vec![vec![5.0]],
            vec![Direction::Benefit],
        )
        .is_err());
    }

    #[test]
    fn ratings_mode_matches_direct_weighted_sum() {
        // Absolute-measurement mode must agree with a plain weighted sum of
        // the same scores under the same weights.
        let mut criteria = PairwiseMatrix::identity(2);
        criteria.set(0, 1, 4.0).unwrap(); // weights 0.8 / 0.2
        let ratings = vec![vec![0.6, 0.9], vec![0.7, 0.2], vec![0.5, 1.0]];
        let ahp = Ahp::with_ratings(
            names(&["c1", "c2"]),
            criteria,
            names(&["a", "b", "c"]),
            ratings.clone(),
            vec![Direction::Benefit; 2],
        )
        .unwrap();
        let r = ahp.solve().unwrap();
        let direct: Vec<f64> = ratings
            .iter()
            .map(|row| 0.8 * row[0] + 0.2 * row[1])
            .collect();
        let mut expect: Vec<usize> = (0..3).collect();
        expect.sort_by(|&a, &b| direct[b].total_cmp(&direct[a]));
        assert_eq!(r.ranking, expect);
    }

    #[test]
    fn inconsistent_criteria_flagged_but_solvable() {
        let mut criteria = PairwiseMatrix::identity(3);
        criteria.set(0, 1, 9.0).unwrap();
        criteria.set(1, 2, 9.0).unwrap();
        criteria.set(2, 0, 9.0).unwrap();
        let ahp = Ahp::with_ratings(
            names(&["a", "b", "c"]),
            criteria,
            names(&["x", "y"]),
            vec![vec![1.0, 0.0, 0.5], vec![0.0, 1.0, 0.5]],
            vec![Direction::Benefit; 3],
        )
        .unwrap();
        let r = ahp.solve().unwrap();
        assert!(!r.is_consistent());
        assert_eq!(r.scores.len(), 2);
    }

    #[test]
    fn validation_errors() {
        let m2 = PairwiseMatrix::identity(2);
        assert!(Ahp::with_ratings(vec![], m2.clone(), names(&["a"]), vec![], vec![]).is_err());
        assert!(Ahp::with_ratings(
            names(&["c1", "c2"]),
            PairwiseMatrix::identity(3),
            names(&["a"]),
            vec![vec![1.0, 1.0]],
            vec![Direction::Benefit; 2]
        )
        .is_err());
        assert!(Ahp::with_ratings(
            names(&["c1", "c2"]),
            m2.clone(),
            names(&["a"]),
            vec![vec![1.0]],
            vec![Direction::Benefit; 2]
        )
        .is_err());
        assert!(Ahp::with_ratings(
            names(&["c1", "c2"]),
            m2.clone(),
            names(&["a"]),
            vec![vec![1.0, f64::NAN]],
            vec![Direction::Benefit; 2]
        )
        .is_err());
        assert!(Ahp::with_pairwise(
            names(&["c1", "c2"]),
            m2.clone(),
            names(&["a", "b"]),
            vec![PairwiseMatrix::identity(2)]
        )
        .is_err());
        assert!(Ahp::with_pairwise(
            names(&["c1", "c2"]),
            m2,
            names(&["a", "b"]),
            vec![PairwiseMatrix::identity(3), PairwiseMatrix::identity(2)]
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let ahp = Ahp::with_ratings(
            names(&["c"]),
            PairwiseMatrix::identity(1),
            names(&["a", "b"]),
            vec![vec![0.4], vec![0.8]],
            vec![Direction::Benefit],
        )
        .unwrap();
        assert_eq!(ahp.criteria_names(), &["c".to_string()]);
        assert_eq!(ahp.alternative_names().len(), 2);
    }
}
