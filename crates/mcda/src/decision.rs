//! Decision matrices shared by the SAW and TOPSIS methods.

use crate::{McdaError, Result};
use serde::{Deserialize, Serialize};

/// Whether larger criterion values are desirable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Larger is better (a *benefit* criterion).
    Benefit,
    /// Smaller is better (a *cost* criterion).
    Cost,
}

/// One evaluation criterion: a name, an importance weight and a direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Criterion {
    /// Display name.
    pub name: String,
    /// Non-negative importance weight (normalized internally).
    pub weight: f64,
    /// Benefit or cost.
    pub direction: Direction,
}

impl Criterion {
    /// Creates a benefit criterion.
    pub fn benefit(name: impl Into<String>, weight: f64) -> Self {
        Criterion {
            name: name.into(),
            weight,
            direction: Direction::Benefit,
        }
    }

    /// Creates a cost criterion.
    pub fn cost(name: impl Into<String>, weight: f64) -> Self {
        Criterion {
            name: name.into(),
            weight,
            direction: Direction::Cost,
        }
    }
}

/// An `alternatives × criteria` performance table.
///
/// ```
/// use vdbench_mcda::{Criterion, DecisionMatrix};
///
/// let dm = DecisionMatrix::new(
///     vec!["tool-a".into(), "tool-b".into()],
///     vec![Criterion::benefit("recall", 2.0), Criterion::cost("false alarms", 1.0)],
///     vec![vec![0.9, 30.0], vec![0.7, 5.0]],
/// )?;
/// assert_eq!(dm.alternatives().len(), 2);
/// # Ok::<(), vdbench_mcda::McdaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionMatrix {
    alternatives: Vec<String>,
    criteria: Vec<Criterion>,
    /// `values[a][c]` = performance of alternative `a` on criterion `c`.
    values: Vec<Vec<f64>>,
}

impl DecisionMatrix {
    /// Creates a decision matrix.
    ///
    /// # Errors
    ///
    /// Returns [`McdaError::Degenerate`] for empty alternatives/criteria,
    /// [`McdaError::DimensionMismatch`] for ragged rows, and
    /// [`McdaError::InvalidValue`] for non-finite values or negative
    /// weights.
    pub fn new(
        alternatives: Vec<String>,
        criteria: Vec<Criterion>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self> {
        if alternatives.is_empty() {
            return Err(McdaError::Degenerate {
                reason: "no alternatives",
            });
        }
        if criteria.is_empty() {
            return Err(McdaError::Degenerate {
                reason: "no criteria",
            });
        }
        if values.len() != alternatives.len() {
            return Err(McdaError::DimensionMismatch {
                expected: alternatives.len(),
                actual: values.len(),
            });
        }
        for row in &values {
            if row.len() != criteria.len() {
                return Err(McdaError::DimensionMismatch {
                    expected: criteria.len(),
                    actual: row.len(),
                });
            }
            for &v in row {
                if !v.is_finite() {
                    return Err(McdaError::InvalidValue {
                        name: "value",
                        value: v,
                    });
                }
            }
        }
        let weight_sum: f64 = criteria.iter().map(|c| c.weight).sum();
        for c in &criteria {
            if !c.weight.is_finite() || c.weight < 0.0 {
                return Err(McdaError::InvalidValue {
                    name: "weight",
                    value: c.weight,
                });
            }
        }
        if weight_sum <= 0.0 {
            return Err(McdaError::InvalidValue {
                name: "weight_sum",
                value: weight_sum,
            });
        }
        Ok(DecisionMatrix {
            alternatives,
            criteria,
            values,
        })
    }

    /// Alternative names.
    pub fn alternatives(&self) -> &[String] {
        &self.alternatives
    }

    /// Criteria definitions.
    pub fn criteria(&self) -> &[Criterion] {
        &self.criteria
    }

    /// Performance value of alternative `a` on criterion `c`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn value(&self, a: usize, c: usize) -> f64 {
        self.values[a][c]
    }

    /// Criteria weights normalized to sum to one.
    pub fn normalized_weights(&self) -> Vec<f64> {
        let sum: f64 = self.criteria.iter().map(|c| c.weight).sum();
        self.criteria.iter().map(|c| c.weight / sum).collect()
    }

    /// Column `c` across all alternatives.
    pub fn column(&self, c: usize) -> Vec<f64> {
        self.values.iter().map(|row| row[c]).collect()
    }

    /// Min–max normalization to `[0, 1]`, orienting cost criteria so that
    /// **1 is always best**. Constant columns normalize to 0.5 (no
    /// discriminating information).
    pub fn normalize_minmax(&self) -> Vec<Vec<f64>> {
        let ncols = self.criteria.len();
        let mut mins = vec![f64::INFINITY; ncols];
        let mut maxs = vec![f64::NEG_INFINITY; ncols];
        for row in &self.values {
            for (c, &v) in row.iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        self.values
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &v)| {
                        let span = maxs[c] - mins[c];
                        let scaled = if span == 0.0 {
                            0.5
                        } else {
                            (v - mins[c]) / span
                        };
                        match self.criteria[c].direction {
                            Direction::Benefit => scaled,
                            Direction::Cost => {
                                if span == 0.0 {
                                    0.5
                                } else {
                                    1.0 - scaled
                                }
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Vector (Euclidean) normalization per column, preserving sign and
    /// direction; used by TOPSIS. Zero columns stay zero.
    pub fn normalize_vector(&self) -> Vec<Vec<f64>> {
        let ncols = self.criteria.len();
        let norms: Vec<f64> = (0..ncols)
            .map(|c| {
                self.values
                    .iter()
                    .map(|row| row[c] * row[c])
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        self.values
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &v)| if norms[c] == 0.0 { 0.0 } else { v / norms[c] })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionMatrix {
        DecisionMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                Criterion::benefit("recall", 2.0),
                Criterion::cost("alarms", 1.0),
            ],
            vec![vec![0.9, 30.0], vec![0.7, 5.0], vec![0.5, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(DecisionMatrix::new(vec![], vec![Criterion::benefit("x", 1.0)], vec![]).is_err());
        assert!(DecisionMatrix::new(vec!["a".into()], vec![], vec![vec![]]).is_err());
        assert!(
            DecisionMatrix::new(vec!["a".into()], vec![Criterion::benefit("x", 1.0)], vec![])
                .is_err()
        );
        assert!(DecisionMatrix::new(
            vec!["a".into()],
            vec![Criterion::benefit("x", 1.0)],
            vec![vec![1.0, 2.0]]
        )
        .is_err());
        assert!(DecisionMatrix::new(
            vec!["a".into()],
            vec![Criterion::benefit("x", 1.0)],
            vec![vec![f64::NAN]]
        )
        .is_err());
        assert!(DecisionMatrix::new(
            vec!["a".into()],
            vec![Criterion::benefit("x", -1.0)],
            vec![vec![1.0]]
        )
        .is_err());
        assert!(DecisionMatrix::new(
            vec!["a".into()],
            vec![Criterion::benefit("x", 0.0)],
            vec![vec![1.0]]
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let dm = sample();
        assert_eq!(dm.alternatives().len(), 3);
        assert_eq!(dm.criteria()[1].direction, Direction::Cost);
        assert_eq!(dm.value(0, 1), 30.0);
        assert_eq!(dm.column(0), vec![0.9, 0.7, 0.5]);
        let w = dm.normalized_weights();
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_orients_cost_criteria() {
        let dm = sample();
        let norm = dm.normalize_minmax();
        // Alternative "c" has the fewest alarms → best (1.0) on the cost
        // criterion after orientation.
        assert!((norm[2][1] - 1.0).abs() < 1e-12);
        assert!((norm[0][1]).abs() < 1e-12);
        // Benefit criterion keeps order.
        assert!((norm[0][0] - 1.0).abs() < 1e-12);
        assert!((norm[2][0]).abs() < 1e-12);
    }

    #[test]
    fn minmax_constant_column() {
        let dm = DecisionMatrix::new(
            vec!["a".into(), "b".into()],
            vec![Criterion::benefit("x", 1.0), Criterion::cost("y", 1.0)],
            vec![vec![5.0, 2.0], vec![5.0, 4.0]],
        )
        .unwrap();
        let norm = dm.normalize_minmax();
        assert_eq!(norm[0][0], 0.5);
        assert_eq!(norm[1][0], 0.5);
    }

    #[test]
    fn vector_normalization_unit_columns() {
        let dm = sample();
        let norm = dm.normalize_vector();
        for c in 0..2 {
            let ss: f64 = norm.iter().map(|row| row[c] * row[c]).sum();
            assert!((ss - 1.0).abs() < 1e-12, "column {c}");
        }
    }

    #[test]
    fn vector_normalization_zero_column() {
        let dm = DecisionMatrix::new(
            vec!["a".into(), "b".into()],
            vec![Criterion::benefit("x", 1.0)],
            vec![vec![0.0], vec![0.0]],
        )
        .unwrap();
        let norm = dm.normalize_vector();
        assert_eq!(norm[0][0], 0.0);
        assert_eq!(norm[1][0], 0.0);
    }
}
