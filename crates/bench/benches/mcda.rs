//! Criterion benchmarks: MCDA solvers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_mcda::consistency::check;
use vdbench_mcda::pairwise::PairwiseMatrix;
use vdbench_mcda::priority::{eigenvector_priorities, geometric_mean_priorities};
use vdbench_mcda::ranking::{borda, kemeny};

fn slightly_inconsistent(n: usize) -> PairwiseMatrix {
    let weights: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let mut m = PairwiseMatrix::from_weights(&weights).unwrap();
    // Perturb one judgment to keep the eigen-solver honest.
    m.set(0, n - 1, m.get(0, n - 1) * 1.5).unwrap();
    m
}

fn bench_priorities(c: &mut Criterion) {
    let m = slightly_inconsistent(8);
    c.bench_function("mcda/eigenvector-8x8", |b| {
        b.iter(|| black_box(eigenvector_priorities(black_box(&m)).unwrap()))
    });
    c.bench_function("mcda/geometric-mean-8x8", |b| {
        b.iter(|| black_box(geometric_mean_priorities(black_box(&m)).unwrap()))
    });
}

fn bench_consistency(c: &mut Criterion) {
    let m = slightly_inconsistent(8);
    c.bench_function("mcda/consistency-check-8x8", |b| {
        b.iter(|| black_box(check(black_box(&m)).unwrap()))
    });
}

fn bench_rank_aggregation(c: &mut Criterion) {
    let rankings: Vec<Vec<usize>> = (0..9)
        .map(|i| {
            let mut r: Vec<usize> = (0..7).collect();
            r.rotate_left(i % 7);
            r
        })
        .collect();
    c.bench_function("mcda/borda-9x7", |b| {
        b.iter(|| black_box(borda(black_box(&rankings)).unwrap()))
    });
    c.bench_function("mcda/kemeny-exact-9x7", |b| {
        b.iter(|| black_box(kemeny(black_box(&rankings)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_priorities,
    bench_consistency,
    bench_rank_aggregation
);
criterion_main!(benches);
