//! Criterion kernel-bench suite: old-vs-new timings for the hot kernels.
//!
//! Four groups, one per optimized kernel family:
//!
//! * `kendall`  — Knight's O(n log n) τ-b vs the retained O(n²) oracle;
//! * `bootstrap` — streaming per-worker-scratch replicates vs the retained
//!   materializing oracle, plus `select_nth` quantiles vs clone-and-sort;
//! * `interp`   — slot-compiled MiniWeb execution vs the tree-walking
//!   reference interpreter;
//! * `scan`     — the dynamic scanner's whole-corpus path (compiled units,
//!   pooled scratch, per-worker fold), new implementation only (the old
//!   path no longer exists at this granularity).
//!
//! Unlike the other bench targets this one has a custom `main`: after the
//! groups run it collects every measurement from the criterion driver and
//! writes `BENCH_kernels.json` at the workspace root, including computed
//! old/new speedups where both sides survive. That file is committed, so
//! the repo carries its perf trajectory, and CI re-emits it (in `--test`
//! smoke mode, samples=1) as a build artifact.

use criterion::{black_box, BenchResult, BenchmarkId, Criterion};
use serde::Serialize;
use vdbench_corpus::{CompiledUnit, CorpusBuilder, InterpScratch, Interpreter, Request, Unit};
use vdbench_detectors::{Detector, DynamicScanner};
use vdbench_stats::correlation::{kendall_tau, kendall_tau_naive};
use vdbench_stats::descriptive::{quantile_sorted, quantile_unsorted};
use vdbench_stats::{Bootstrap, SeededRng};

/// Tie-heavy paired data (the regime rank statistics actually see: metric
/// scores quantized by small confusion-matrix counts).
fn tied_series(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    let y: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 23) as f64).collect();
    (x, y)
}

fn bench_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("kendall");
    for n in [128usize, 512, 2048] {
        let (x, y) = tied_series(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau_naive(black_box(&x), black_box(&y)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("knight", n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau(black_box(&x), black_box(&y)).unwrap()))
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    // Pin to one thread so the comparison isolates the allocation
    // behaviour of the replicate kernel, not pool scheduling.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let data: Vec<f64> = (0..400).map(|i| (i % 10) as f64).collect();
    let boot = Bootstrap::new(1000);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    c.bench_function("bootstrap/materialized-400x1000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(11);
            black_box(
                boot.replicate_distribution_materialized(black_box(&data), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    c.bench_function("bootstrap/streaming-400x1000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(11);
            black_box(
                boot.replicate_distribution(black_box(&data), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    // Small resamples are the shape `run_all` actually draws (per-scenario
    // metric vectors): here the per-replicate allocation is a visible
    // fraction of the kernel, which is what the streaming path removes.
    let small: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
    let boot_small = Bootstrap::new(4000);
    c.bench_function("bootstrap/materialized-64x4000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(13);
            black_box(
                boot_small
                    .replicate_distribution_materialized(black_box(&small), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    c.bench_function("bootstrap/streaming-64x4000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(13);
            black_box(
                boot_small
                    .replicate_distribution(black_box(&small), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    std::env::remove_var("RAYON_NUM_THREADS");

    // Percentile endpoints: full clone-and-sort vs select_nth partition.
    let mut rng = SeededRng::new(5);
    let reps: Vec<f64> = (0..4096).map(|_| rng.uniform()).collect();
    c.bench_function("bootstrap/quantile-sort-4096", |b| {
        b.iter(|| {
            let mut v = reps.clone();
            v.sort_by(f64::total_cmp);
            black_box(quantile_sorted(&v, 0.025) + quantile_sorted(&v, 0.975))
        })
    });
    c.bench_function("bootstrap/quantile-select-4096", |b| {
        b.iter(|| {
            let mut v = reps.clone();
            let lo = quantile_unsorted(&mut v, 0.025);
            let hi = quantile_unsorted(&mut v, 0.975);
            black_box(lo + hi)
        })
    });
}

/// One attack-shaped request per unit: every discovered input set to a
/// recognizable payload (what the scanner's spray phase does).
fn attack_request(unit: &Unit) -> Request {
    let mut req = Request::new();
    for (kind, name) in unit.referenced_sources() {
        req.set(kind, name, "x' OR '1'='1");
    }
    req
}

fn bench_interp(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(20)
        .vulnerability_density(0.5)
        .seed(7)
        .build();
    let interp = Interpreter::default();
    let requests: Vec<[Request; 1]> = corpus.units().iter().map(|u| [attack_request(u)]).collect();
    // Per iteration: every unit executes an 8-session batch — the shape of
    // a scanner attack run. Compilation is hoisted like the scanner hoists
    // it (once per unit per `analyze_with`, amortized over the whole
    // batch; `thorough` runs up to 96 sessions per compile, so charging it
    // here would *overstate* its cost). The treewalk pays name lookups and
    // body clones per session; the compiled path runs slot frames recycled
    // through one scratch.
    c.bench_function("interp/treewalk-20units-x8", |b| {
        b.iter(|| {
            let mut sinks = 0usize;
            for (u, session) in corpus.units().iter().zip(&requests) {
                for _ in 0..8 {
                    sinks += interp
                        .run_session_treewalk(u, session)
                        .map_or(0, |o| o.len());
                }
            }
            black_box(sinks)
        })
    });
    let compiled: Vec<CompiledUnit> = corpus.units().iter().map(CompiledUnit::compile).collect();
    c.bench_function("interp/compiled-20units-x8", |b| {
        let mut scratch = InterpScratch::new();
        b.iter(|| {
            let mut sinks = 0usize;
            for (cu, session) in compiled.iter().zip(&requests) {
                for _ in 0..8 {
                    sinks += interp
                        .run_compiled(cu, session, &mut scratch)
                        .map_or(0, |o| o.len());
                }
            }
            black_box(sinks)
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(60)
        .vulnerability_density(0.35)
        .seed(41)
        .build();
    let scanner = DynamicScanner::thorough();
    c.bench_function("scan/pentest-96-dict-60units", |b| {
        b.iter(|| black_box(scanner.analyze_corpus(black_box(&corpus)).len()))
    });
}

/// Serialized form of one measurement.
#[derive(Serialize)]
struct JsonResult {
    id: String,
    mean_ns: f64,
    samples: u64,
}

/// Old-vs-new ratio for a kernel where both implementations survive.
#[derive(Serialize)]
struct JsonSpeedup {
    kernel: String,
    old_id: String,
    new_id: String,
    speedup: f64,
}

#[derive(Serialize)]
struct JsonReport {
    generated_by: String,
    test_mode: bool,
    results: Vec<JsonResult>,
    speedups: Vec<JsonSpeedup>,
}

fn mean_of(results: &[BenchResult], id: &str) -> Option<f64> {
    results.iter().find(|r| r.id == id).map(|r| r.mean_ns)
}

fn write_report(criterion: &Criterion) {
    let results = criterion.results();
    let pairs: [(&str, &str, &str); 7] = [
        ("kendall-128", "kendall/naive/128", "kendall/knight/128"),
        ("kendall-512", "kendall/naive/512", "kendall/knight/512"),
        ("kendall-2048", "kendall/naive/2048", "kendall/knight/2048"),
        (
            "bootstrap-replicates",
            "bootstrap/materialized-400x1000",
            "bootstrap/streaming-400x1000",
        ),
        (
            "bootstrap-replicates-small",
            "bootstrap/materialized-64x4000",
            "bootstrap/streaming-64x4000",
        ),
        (
            "bootstrap-quantiles",
            "bootstrap/quantile-sort-4096",
            "bootstrap/quantile-select-4096",
        ),
        (
            "interp-session",
            "interp/treewalk-20units-x8",
            "interp/compiled-20units-x8",
        ),
    ];
    let speedups = pairs
        .iter()
        .filter_map(|(kernel, old_id, new_id)| {
            let old = mean_of(results, old_id)?;
            let new = mean_of(results, new_id)?;
            Some(JsonSpeedup {
                kernel: (*kernel).to_string(),
                old_id: (*old_id).to_string(),
                new_id: (*new_id).to_string(),
                speedup: old / new,
            })
        })
        .collect();
    let report = JsonReport {
        generated_by: "cargo bench -p vdbench-bench --bench kernels".to_string(),
        test_mode: criterion::test_mode(),
        results: results
            .iter()
            .map(|r| JsonResult {
                id: r.id.clone(),
                mean_ns: r.mean_ns,
                samples: r.samples,
            })
            .collect(),
        speedups,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
    for s in &report.speedups {
        println!("speedup {:<24} {:>8.2}x", s.kernel, s.speedup);
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kendall(&mut criterion);
    bench_bootstrap(&mut criterion);
    bench_interp(&mut criterion);
    bench_scan(&mut criterion);
    write_report(&criterion);
}
