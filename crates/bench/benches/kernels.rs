//! Criterion kernel-bench suite: old-vs-new timings for the hot kernels.
//!
//! Five groups, one per optimized kernel family:
//!
//! * `kendall`  — Knight's O(n log n) τ-b vs the retained O(n²) oracle;
//! * `bootstrap` — streaming per-worker-scratch replicates vs the retained
//!   materializing oracle, plus `select_nth` quantiles vs clone-and-sort;
//! * `interp`   — all three MiniWeb execution tiers over the same corpus:
//!   tree-walking reference, slot-compiled walker, bytecode register VM;
//! * `vm`       — per-opcode-class microbenches isolating each bytecode
//!   superinstruction family (slotwalk vs bytecode);
//! * `scan`     — the dynamic scanner's whole-corpus path (compiled units,
//!   pooled scratch, per-worker fold), new implementation only (the old
//!   path no longer exists at this granularity).
//!
//! Unlike the other bench targets this one has a custom `main`: after the
//! groups run it collects every measurement from the criterion driver and
//! writes `BENCH_kernels.json` at the workspace root, including computed
//! old/new speedups where both sides survive (paired "new" entries also
//! carry the ratio inline as `speedup`). In a full run it additionally
//! rewrites the README's speedup table between the `BENCH_TABLE` markers,
//! so the published numbers are always the measured ones. That file is
//! committed, so the repo carries its perf trajectory, and CI re-emits it
//! (in `--test` smoke mode, samples=1) as a build artifact.

use criterion::{black_box, BenchResult, BenchmarkId, Criterion};
use serde::Serialize;
use vdbench_corpus::ast::BinOp;
use vdbench_corpus::{
    CompiledUnit, CorpusBuilder, Expr, Function, InterpScratch, Interpreter, Request, SinkKind,
    SiteId, SourceKind, Stmt, Unit,
};
use vdbench_detectors::{Detector, DynamicScanner};
use vdbench_stats::correlation::{kendall_tau, kendall_tau_naive};
use vdbench_stats::descriptive::{quantile_sorted, quantile_unsorted};
use vdbench_stats::{Bootstrap, SeededRng};

/// Tie-heavy paired data (the regime rank statistics actually see: metric
/// scores quantized by small confusion-matrix counts).
fn tied_series(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    let y: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 23) as f64).collect();
    (x, y)
}

fn bench_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("kendall");
    for n in [128usize, 512, 2048] {
        let (x, y) = tied_series(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau_naive(black_box(&x), black_box(&y)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("knight", n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau(black_box(&x), black_box(&y)).unwrap()))
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    // Pin to one thread so the comparison isolates the allocation
    // behaviour of the replicate kernel, not pool scheduling.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let data: Vec<f64> = (0..400).map(|i| (i % 10) as f64).collect();
    let boot = Bootstrap::new(1000);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    c.bench_function("bootstrap/materialized-400x1000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(11);
            black_box(
                boot.replicate_distribution_materialized(black_box(&data), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    c.bench_function("bootstrap/streaming-400x1000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(11);
            black_box(
                boot.replicate_distribution(black_box(&data), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    // Small resamples are the shape `run_all` actually draws (per-scenario
    // metric vectors): here the per-replicate allocation is a visible
    // fraction of the kernel, which is what the streaming path removes.
    let small: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
    let boot_small = Bootstrap::new(4000);
    c.bench_function("bootstrap/materialized-64x4000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(13);
            black_box(
                boot_small
                    .replicate_distribution_materialized(black_box(&small), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    c.bench_function("bootstrap/streaming-64x4000", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(13);
            black_box(
                boot_small
                    .replicate_distribution(black_box(&small), mean, &mut rng)
                    .unwrap(),
            )
        })
    });
    std::env::remove_var("RAYON_NUM_THREADS");

    // Percentile endpoints: full clone-and-sort vs select_nth partition.
    let mut rng = SeededRng::new(5);
    let reps: Vec<f64> = (0..4096).map(|_| rng.uniform()).collect();
    c.bench_function("bootstrap/quantile-sort-4096", |b| {
        b.iter(|| {
            let mut v = reps.clone();
            v.sort_by(f64::total_cmp);
            black_box(quantile_sorted(&v, 0.025) + quantile_sorted(&v, 0.975))
        })
    });
    c.bench_function("bootstrap/quantile-select-4096", |b| {
        b.iter(|| {
            let mut v = reps.clone();
            let lo = quantile_unsorted(&mut v, 0.025);
            let hi = quantile_unsorted(&mut v, 0.975);
            black_box(lo + hi)
        })
    });
}

/// One attack-shaped request per unit: every discovered input set to a
/// recognizable payload (what the scanner's spray phase does).
fn attack_request(unit: &Unit) -> Request {
    let mut req = Request::new();
    for (kind, name) in unit.referenced_sources() {
        req.set(kind, name, "x' OR '1'='1");
    }
    req
}

fn bench_interp(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(20)
        .vulnerability_density(0.5)
        .seed(7)
        .build();
    let interp = Interpreter::default();
    let requests: Vec<[Request; 1]> = corpus.units().iter().map(|u| [attack_request(u)]).collect();
    // Per iteration: every unit executes an 8-session batch — the shape of
    // a scanner attack run. Compilation is hoisted like the scanner hoists
    // it (once per unit per `analyze_with`, amortized over the whole
    // batch; `thorough` runs up to 96 sessions per compile, so charging it
    // here would *overstate* its cost). The treewalk pays name lookups and
    // body clones per session; the compiled path runs slot frames recycled
    // through one scratch.
    c.bench_function("interp/treewalk-20units-x8", |b| {
        b.iter(|| {
            let mut sinks = 0usize;
            for (u, session) in corpus.units().iter().zip(&requests) {
                for _ in 0..8 {
                    sinks += interp
                        .run_session_treewalk(u, session)
                        .map_or(0, |o| o.len());
                }
            }
            black_box(sinks)
        })
    });
    let compiled: Vec<CompiledUnit> = corpus.units().iter().map(CompiledUnit::compile).collect();
    c.bench_function("interp/slotwalk-20units-x8", |b| {
        let mut scratch = InterpScratch::new();
        b.iter(|| {
            let mut sinks = 0usize;
            for (cu, session) in compiled.iter().zip(&requests) {
                for _ in 0..8 {
                    sinks += interp
                        .run_compiled_slotwalk(cu, session, &mut scratch)
                        .map_or(0, |o| o.len());
                }
            }
            black_box(sinks)
        })
    });
    c.bench_function("interp/vm-20units-x8", |b| {
        let mut scratch = InterpScratch::new();
        b.iter(|| {
            let mut sinks = 0usize;
            for (cu, session) in compiled.iter().zip(&requests) {
                for _ in 0..8 {
                    sinks += interp
                        .run_compiled(cu, session, &mut scratch)
                        .map_or(0, |o| o.len());
                }
            }
            black_box(sinks)
        })
    });
}

/// One handler-only unit around the given body.
fn vm_unit(body: Vec<Stmt>, helpers: Vec<Function>) -> Unit {
    Unit {
        id: 0,
        handler: Function::new("handler", vec![], body),
        helpers,
    }
}

fn src(kind: SourceKind, name: &str) -> Expr {
    Expr::Source {
        kind,
        name: name.into(),
    }
}

/// Per-opcode-class microbenches: each unit isolates one superinstruction
/// family of the bytecode tier (fused compare-branch, accumulator concat,
/// n-ary concat into a sink, inline-cached calls, counting-loop
/// summarization), measured slotwalk vs bytecode over the same sessions.
fn bench_vm(c: &mut Criterion) {
    let site = SiteId { unit: 0, sink: 0 };
    let cases: Vec<(&str, Unit)> = vec![
        (
            "guard-gate",
            vm_unit(
                vec![Stmt::If {
                    cond: Expr::BinOp {
                        op: BinOp::Eq,
                        lhs: Box::new(src(SourceKind::HttpParam, "mode")),
                        rhs: Box::new(Expr::str("debug")),
                    },
                    then_branch: vec![Stmt::Sink {
                        kind: SinkKind::HtmlOutput,
                        arg: Expr::str("<!-- debug -->"),
                        site,
                    }],
                    else_branch: vec![],
                }],
                vec![],
            ),
        ),
        (
            "concat-chain",
            vm_unit(
                vec![
                    Stmt::Let {
                        var: "acc".into(),
                        expr: Expr::str("ids:"),
                    },
                    Stmt::Let {
                        var: "i".into(),
                        expr: Expr::Int(0),
                    },
                    Stmt::While {
                        cond: Expr::BinOp {
                            op: BinOp::Lt,
                            lhs: Box::new(Expr::var("i")),
                            rhs: Box::new(Expr::Int(8)),
                        },
                        body: vec![
                            Stmt::Assign {
                                var: "acc".into(),
                                expr: Expr::concat(
                                    Expr::concat(Expr::var("acc"), Expr::str(",")),
                                    src(SourceKind::HttpParam, "id"),
                                ),
                            },
                            Stmt::Assign {
                                var: "i".into(),
                                expr: Expr::BinOp {
                                    op: BinOp::Add,
                                    lhs: Box::new(Expr::var("i")),
                                    rhs: Box::new(Expr::Int(1)),
                                },
                            },
                        ],
                    },
                    Stmt::Sink {
                        kind: SinkKind::HtmlOutput,
                        arg: Expr::var("acc"),
                        site,
                    },
                ],
                vec![],
            ),
        ),
        (
            "query-sink",
            vm_unit(
                vec![Stmt::Sink {
                    kind: SinkKind::SqlQuery,
                    arg: Expr::concat(
                        Expr::concat(
                            Expr::str("SELECT * FROM t WHERE id = '"),
                            src(SourceKind::HttpParam, "id"),
                        ),
                        Expr::str("'"),
                    ),
                    site,
                }],
                vec![],
            ),
        ),
        (
            "call-helper",
            vm_unit(
                vec![
                    Stmt::Call {
                        var: Some("q".into()),
                        func: "prepare".into(),
                        args: vec![src(SourceKind::HttpParam, "id")],
                    },
                    Stmt::Sink {
                        kind: SinkKind::SqlQuery,
                        arg: Expr::var("q"),
                        site,
                    },
                ],
                vec![Function::new(
                    "prepare",
                    vec!["raw".into()],
                    vec![Stmt::Return(Expr::concat(
                        Expr::str("SELECT * FROM records WHERE key = '"),
                        Expr::var("raw"),
                    ))],
                )],
            ),
        ),
        (
            "loop-count",
            vm_unit(
                vec![
                    Stmt::Let {
                        var: "c0".into(),
                        expr: Expr::Int(0),
                    },
                    Stmt::While {
                        cond: Expr::BinOp {
                            op: BinOp::Lt,
                            lhs: Box::new(Expr::var("c0")),
                            rhs: Box::new(Expr::Int(24)),
                        },
                        body: vec![Stmt::Assign {
                            var: "c0".into(),
                            expr: Expr::BinOp {
                                op: BinOp::Add,
                                lhs: Box::new(Expr::var("c0")),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        }],
                    },
                    Stmt::Sink {
                        kind: SinkKind::CryptoHash,
                        arg: Expr::str("sha256"),
                        site,
                    },
                ],
                vec![],
            ),
        ),
    ];
    let interp = Interpreter::default();
    for (name, unit) in &cases {
        let session = [attack_request(unit)];
        let cu = CompiledUnit::compile(unit);
        c.bench_function(&format!("vm/slotwalk-{name}-x64"), |b| {
            let mut scratch = InterpScratch::new();
            b.iter(|| {
                let mut sinks = 0usize;
                for _ in 0..64 {
                    sinks += interp
                        .run_compiled_slotwalk(&cu, &session, &mut scratch)
                        .map_or(0, |o| o.len());
                }
                black_box(sinks)
            })
        });
        c.bench_function(&format!("vm/bytecode-{name}-x64"), |b| {
            let mut scratch = InterpScratch::new();
            b.iter(|| {
                let mut sinks = 0usize;
                for _ in 0..64 {
                    sinks += interp
                        .run_compiled(&cu, &session, &mut scratch)
                        .map_or(0, |o| o.len());
                }
                black_box(sinks)
            })
        });
    }
}

fn bench_scan(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(60)
        .vulnerability_density(0.35)
        .seed(41)
        .build();
    let scanner = DynamicScanner::thorough();
    c.bench_function("scan/pentest-96-dict-60units", |b| {
        b.iter(|| black_box(scanner.analyze_corpus(black_box(&corpus)).len()))
    });
}

/// Serialized form of one measurement. Entries that are the "new" side of
/// an old/new pair carry the computed speedup inline (the README table is
/// rendered from exactly these fields); unpaired entries omit the field
/// entirely, hence the hand-rolled impl (the vendored serde has no
/// `skip_serializing_if`).
struct JsonResult {
    id: String,
    mean_ns: f64,
    samples: u64,
    speedup: Option<f64>,
}

impl Serialize for JsonResult {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("mean_ns".to_string(), self.mean_ns.to_value()),
            ("samples".to_string(), self.samples.to_value()),
        ];
        if let Some(s) = self.speedup {
            fields.push(("speedup".to_string(), s.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Old-vs-new ratio for a kernel where both implementations survive.
#[derive(Serialize)]
struct JsonSpeedup {
    kernel: String,
    old_id: String,
    new_id: String,
    speedup: f64,
}

#[derive(Serialize)]
struct JsonReport {
    generated_by: String,
    test_mode: bool,
    results: Vec<JsonResult>,
    speedups: Vec<JsonSpeedup>,
}

fn mean_of(results: &[BenchResult], id: &str) -> Option<f64> {
    results.iter().find(|r| r.id == id).map(|r| r.mean_ns)
}

/// The old/new kernel pairs the report and the README table are built
/// from: `(kernel, old_id, new_id)`.
const PAIRS: [(&str, &str, &str); 13] = [
    ("kendall-128", "kendall/naive/128", "kendall/knight/128"),
    ("kendall-512", "kendall/naive/512", "kendall/knight/512"),
    ("kendall-2048", "kendall/naive/2048", "kendall/knight/2048"),
    (
        "bootstrap-replicates",
        "bootstrap/materialized-400x1000",
        "bootstrap/streaming-400x1000",
    ),
    (
        "bootstrap-replicates-small",
        "bootstrap/materialized-64x4000",
        "bootstrap/streaming-64x4000",
    ),
    (
        "bootstrap-quantiles",
        "bootstrap/quantile-sort-4096",
        "bootstrap/quantile-select-4096",
    ),
    (
        "interp-slotwalk",
        "interp/treewalk-20units-x8",
        "interp/slotwalk-20units-x8",
    ),
    (
        "interp-session",
        "interp/treewalk-20units-x8",
        "interp/vm-20units-x8",
    ),
    (
        "vm-guard-gate",
        "vm/slotwalk-guard-gate-x64",
        "vm/bytecode-guard-gate-x64",
    ),
    (
        "vm-concat-chain",
        "vm/slotwalk-concat-chain-x64",
        "vm/bytecode-concat-chain-x64",
    ),
    (
        "vm-query-sink",
        "vm/slotwalk-query-sink-x64",
        "vm/bytecode-query-sink-x64",
    ),
    (
        "vm-call-helper",
        "vm/slotwalk-call-helper-x64",
        "vm/bytecode-call-helper-x64",
    ),
    (
        "vm-loop-count",
        "vm/slotwalk-loop-count-x64",
        "vm/bytecode-loop-count-x64",
    ),
];

/// Human-readable row labels for the README table, keyed by pair kernel
/// name: `(old description, new description)`.
fn pair_labels(kernel: &str) -> Option<(&'static str, &'static str)> {
    Some(match kernel {
        "kendall-512" => ("O(n²) pair scan", "Knight's O(n log n)"),
        "kendall-2048" => ("O(n²) pair scan", "Knight's O(n log n)"),
        "bootstrap-quantiles" => ("clone + full sort", "`select_nth` partition"),
        "bootstrap-replicates" => ("per-replicate alloc", "streaming scratch"),
        "interp-slotwalk" => ("treewalk + name maps", "slot-compiled walker"),
        "interp-session" => ("treewalk + name maps", "bytecode register VM"),
        "vm-guard-gate" => ("slot-compiled walker", "fused compare-branch"),
        "vm-concat-chain" => ("slot-compiled walker", "in-place accumulator concat"),
        "vm-query-sink" => ("slot-compiled walker", "n-ary concat superinsn"),
        "vm-call-helper" => ("slot-compiled walker", "inline-cached call"),
        "vm-loop-count" => ("slot-compiled walker", "counting-loop summarization"),
        _ => return None,
    })
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Rewrites the README's generated speedup table (between the marker
/// comments) from the measured pairs. Skipped in `--test` smoke mode:
/// samples=1 timings would churn the committed file with noise.
fn render_readme_table(speedups: &[JsonSpeedup], results: &[BenchResult]) {
    const START: &str = "<!-- BENCH_TABLE_START";
    const END: &str = "<!-- BENCH_TABLE_END";
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let Ok(readme) = std::fs::read_to_string(path) else {
        return;
    };
    let (Some(start), Some(end)) = (readme.find(START), readme.find(END)) else {
        return;
    };
    let head = &readme[..readme[..start].rfind('\n').map_or(start, |i| i + 1)];
    let tail = &readme[end..];
    let mut table = String::from(
        "<!-- BENCH_TABLE_START — generated by `cargo bench -p vdbench-bench \
         --bench kernels`; do not edit by hand -->\n\
         | Kernel | Before (oracle) | After (optimized) | Speedup |\n\
         |--------|-----------------|-------------------|--------:|\n",
    );
    for s in speedups {
        let Some((old_label, new_label)) = pair_labels(&s.kernel) else {
            continue;
        };
        let (Some(old), Some(new)) = (mean_of(results, &s.old_id), mean_of(results, &s.new_id))
        else {
            continue;
        };
        table.push_str(&format!(
            "| {} | {}, {} | {}, {} | {:.1}× |\n",
            s.kernel,
            old_label,
            fmt_ns(old),
            new_label,
            fmt_ns(new),
            s.speedup
        ));
    }
    std::fs::write(path, format!("{head}{table}{tail}")).expect("rewrite README table");
    println!("rendered README speedup table ({} rows)", speedups.len());
}

fn write_report(criterion: &Criterion) {
    let results = criterion.results();
    let speedups: Vec<JsonSpeedup> = PAIRS
        .iter()
        .filter_map(|(kernel, old_id, new_id)| {
            let old = mean_of(results, old_id)?;
            let new = mean_of(results, new_id)?;
            Some(JsonSpeedup {
                kernel: (*kernel).to_string(),
                old_id: (*old_id).to_string(),
                new_id: (*new_id).to_string(),
                speedup: old / new,
            })
        })
        .collect();
    let report = JsonReport {
        generated_by: "cargo bench -p vdbench-bench --bench kernels".to_string(),
        test_mode: criterion::test_mode(),
        results: results
            .iter()
            .map(|r| JsonResult {
                id: r.id.clone(),
                mean_ns: r.mean_ns,
                samples: r.samples,
                speedup: speedups
                    .iter()
                    .find(|s| s.new_id == r.id)
                    .map(|s| s.speedup),
            })
            .collect(),
        speedups,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
    for s in &report.speedups {
        println!("speedup {:<24} {:>8.2}x", s.kernel, s.speedup);
    }
    if !criterion::test_mode() {
        render_readme_table(&report.speedups, results);
    }
}

/// Appends this run to the perf-history ledger when capture is enabled
/// (`VDBENCH_PERF_HISTORY`). Gated series are the per-pair old/new speedup
/// ratios — both sides measured in-process, so the ratio is comparable
/// across hosts; absolute ns/iter series ride along as advisory context.
/// Skipped in `--test` smoke mode, whose single-warmup timings are noise.
fn append_perf_history(criterion: &Criterion) {
    let Some(dir) = vdbench_perfwatch::env_dir() else {
        return;
    };
    if criterion::test_mode() {
        return;
    }
    let results = criterion.results();
    let batches = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.batch_means_ns.as_slice())
    };
    let mut series = Vec::new();
    for (kernel, old_id, new_id) in &PAIRS {
        let (Some(old), Some(new)) = (batches(old_id), batches(new_id)) else {
            continue;
        };
        let ratios: Vec<f64> = old
            .iter()
            .zip(new.iter())
            .filter(|(_, &n)| n > 0.0)
            .map(|(&o, &n)| o / n)
            .collect();
        if !ratios.is_empty() {
            series.push(vdbench_perfwatch::Series::delta(
                format!("{kernel}:speedup"),
                "ratio",
                "higher",
                true,
                ratios,
            ));
        }
    }
    for r in results {
        series.push(vdbench_perfwatch::Series::delta(
            format!("{}:ns", r.id),
            "ns/iter",
            "lower",
            false,
            r.batch_means_ns.clone(),
        ));
    }
    let entry = vdbench_perfwatch::RunEntry {
        source: "kernels".to_string(),
        unix_ms: vdbench_perfwatch::now_ms(),
        label: "kernels-bench".to_string(),
        provenance: String::new(),
        baseline: false,
        series,
    };
    match vdbench_perfwatch::append_entry(&dir, &entry) {
        Ok(path) => println!("appended perf history to {}", path.display()),
        Err(e) => eprintln!("perf history append failed: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kendall(&mut criterion);
    bench_bootstrap(&mut criterion);
    bench_interp(&mut criterion);
    bench_vm(&mut criterion);
    bench_scan(&mut criterion);
    write_report(&criterion);
    append_perf_history(&criterion);
}
