//! Criterion benchmarks: corpus generation and interpretation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vdbench_corpus::{CorpusBuilder, Interpreter, Request};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus/generate");
    for &units in &[100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, &units| {
            b.iter(|| {
                black_box(
                    CorpusBuilder::new()
                        .units(units)
                        .vulnerability_density(0.3)
                        .seed(7)
                        .build(),
                )
            })
        });
    }
    group.finish();
}

fn bench_interpretation(c: &mut Criterion) {
    let corpus = CorpusBuilder::new().units(100).seed(7).build();
    let interp = Interpreter::default();
    let request = Request::new()
        .with_param("id", "x' OR '1'='1")
        .with_param("mode", "debug");
    c.bench_function("corpus/interpret-100-units", |b| {
        b.iter(|| {
            let mut sinks = 0usize;
            for unit in corpus.units() {
                sinks += interp
                    .run(black_box(unit), &request)
                    .map(|o| o.len())
                    .unwrap_or(0);
            }
            black_box(sinks)
        })
    });
}

fn bench_pretty_printing(c: &mut Criterion) {
    let corpus = CorpusBuilder::new().units(100).seed(7).build();
    c.bench_function("corpus/pretty-print-100-units", |b| {
        b.iter(|| {
            let total: usize = corpus
                .units()
                .iter()
                .map(|u| vdbench_corpus::pretty::unit_to_string(u).len())
                .sum();
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_interpretation,
    bench_pretty_printing
);
criterion_main!(benches);
