//! Criterion benchmarks: the parallel campaign engine.
//!
//! Measures one small end-to-end case study (scenario workload → tool
//! roster scan → metric table) serial vs parallel, plus the campaign-cache
//! hit path. On a multi-core machine the `parallel` timing should sit well
//! below `serial`; on a single hardware thread the two coincide (the
//! worker pool degenerates to the serial path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_core::campaign::run_case_study;
use vdbench_core::scenario::{Scenario, ScenarioId};
use vdbench_core::{cache, cached_case_study};

const SEED: u64 = 0xBE7C4;

/// A scaled-down S1 case study: full roster and metric set on a small
/// workload, so the benchmark stays in the tens of milliseconds.
fn small_scenario() -> Scenario {
    let mut scenario = Scenario::standard(ScenarioId::S1Audit);
    scenario.workload_units = 60;
    scenario
}

fn bench_case_study_serial_vs_parallel(c: &mut Criterion) {
    let scenario = small_scenario();
    c.bench_function("campaign/case-study-serial", |b| {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        b.iter(|| black_box(run_case_study(black_box(&scenario), SEED).unwrap()));
        std::env::remove_var("RAYON_NUM_THREADS");
    });
    c.bench_function("campaign/case-study-parallel", |b| {
        // Default thread count: the machine's available parallelism.
        b.iter(|| black_box(run_case_study(black_box(&scenario), SEED).unwrap()));
    });
}

fn bench_case_study_cache_hit(c: &mut Criterion) {
    let scenario = small_scenario();
    cache::clear();
    // Warm the entry once; every iteration below is a pure hit.
    let _ = cached_case_study(&scenario, SEED).unwrap();
    c.bench_function("campaign/case-study-cache-hit", |b| {
        b.iter(|| black_box(cached_case_study(black_box(&scenario), SEED).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_case_study_serial_vs_parallel,
    bench_case_study_cache_hit
);
criterion_main!(benches);
