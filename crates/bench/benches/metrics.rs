//! Criterion benchmarks: metric computation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_metrics::metric::MetricExt;
use vdbench_metrics::{standard_catalog, ConfusionMatrix};

fn bench_single_metric(c: &mut Criterion) {
    let cm = ConfusionMatrix::new(431, 87, 62, 3420);
    let mcc = vdbench_metrics::composite::Mcc;
    c.bench_function("metric/mcc", |b| {
        b.iter(|| {
            use vdbench_metrics::metric::Metric;
            black_box(mcc.compute(black_box(&cm)).unwrap())
        })
    });
}

fn bench_full_catalog(c: &mut Criterion) {
    let cm = ConfusionMatrix::new(431, 87, 62, 3420);
    let catalog = standard_catalog();
    c.bench_function("metric/full-catalog-27", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &catalog {
                let v = m.compute_or_nan(black_box(&cm));
                if v.is_finite() {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_confusion_from_outcomes(c: &mut Criterion) {
    let outcomes: Vec<(bool, bool)> = (0..10_000).map(|i| (i % 3 == 0, i % 7 == 0)).collect();
    c.bench_function("metric/confusion-from-10k-outcomes", |b| {
        b.iter(|| black_box(ConfusionMatrix::from_outcomes(outcomes.iter().copied())))
    });
}

criterion_group!(
    benches,
    bench_single_metric,
    bench_full_catalog,
    bench_confusion_from_outcomes
);
criterion_main!(benches);
