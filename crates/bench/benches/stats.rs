//! Criterion benchmarks: statistics substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_stats::correlation::{kendall_tau, spearman};
use vdbench_stats::intervals::{clopper_pearson, wilson, Confidence};
use vdbench_stats::{Bootstrap, SeededRng};

fn bench_intervals(c: &mut Criterion) {
    c.bench_function("stats/wilson-interval", |b| {
        b.iter(|| black_box(wilson(black_box(431), 4000, Confidence::P95).unwrap()))
    });
    c.bench_function("stats/clopper-pearson-interval", |b| {
        b.iter(|| black_box(clopper_pearson(black_box(431), 4000, Confidence::P95).unwrap()))
    });
}

fn bench_correlation(c: &mut Criterion) {
    let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
    let y: Vec<f64> = (0..200).map(|i| (i as f64 * 0.41).cos()).collect();
    c.bench_function("stats/kendall-tau-200", |b| {
        b.iter(|| black_box(kendall_tau(black_box(&x), black_box(&y)).unwrap()))
    });
    c.bench_function("stats/spearman-200", |b| {
        b.iter(|| black_box(spearman(black_box(&x), black_box(&y)).unwrap()))
    });
}

fn bench_bootstrap(c: &mut Criterion) {
    let data: Vec<f64> = (0..400).map(|i| (i % 10) as f64).collect();
    c.bench_function("stats/bootstrap-ci-400x500", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(9);
            black_box(
                Bootstrap::new(500)
                    .percentile_ci(
                        black_box(&data),
                        0.95,
                        |s| s.iter().sum::<f64>() / s.len() as f64,
                        &mut rng,
                    )
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_intervals, bench_correlation, bench_bootstrap);
criterion_main!(benches);
