//! Criterion benchmarks: the metric-selection pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_core::attributes::{assess_catalog, cost_alignment, AssessmentConfig};
use vdbench_core::scenario::{Scenario, ScenarioId};
use vdbench_core::selection::{default_candidates, MetricSelector};
use vdbench_experts::Panel;

fn quick_cfg() -> AssessmentConfig {
    AssessmentConfig {
        workload_size: 200,
        reference_prevalence: 0.2,
        tool_sample: 40,
        replicates: 100,
        seed: 77,
    }
}

fn bench_assessment(c: &mut Criterion) {
    let candidates = default_candidates();
    let cfg = quick_cfg();
    c.bench_function("selection/assess-11-candidates", |b| {
        b.iter(|| black_box(assess_catalog(black_box(&candidates), &cfg)))
    });
    let precision = vdbench_metrics::basic::Precision;
    c.bench_function("selection/cost-alignment-one-metric", |b| {
        b.iter(|| black_box(cost_alignment(&precision, 5.0, 1.0, 0.25, &cfg)))
    });
}

fn bench_full_selection(c: &mut Criterion) {
    let selector = MetricSelector::new(default_candidates(), quick_cfg()).unwrap();
    let scenario = Scenario::standard(ScenarioId::S2Gate);
    let panel = Panel::homogeneous(&scenario.weight_vector(), 7, 0.25, 1);
    c.bench_function("selection/select-one-scenario", |b| {
        b.iter(|| black_box(selector.select(black_box(&scenario), &panel).unwrap()))
    });
    c.bench_function("selection/panel-elicit-aggregate", |b| {
        b.iter(|| black_box(panel.aggregate().unwrap()))
    });
}

criterion_group!(benches, bench_assessment, bench_full_selection);
criterion_main!(benches);
