//! Criterion benchmarks: detection-tool analysis throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdbench_corpus::CorpusBuilder;
use vdbench_detectors::{score_detector, Detector, DynamicScanner, PatternScanner, TaintAnalyzer};

fn bench_tools(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(100)
        .vulnerability_density(0.3)
        .seed(13)
        .build();
    let tools: Vec<(&str, Box<dyn Detector>)> = vec![
        ("pattern-aggressive", Box::new(PatternScanner::aggressive())),
        ("taint-precise", Box::new(TaintAnalyzer::precise())),
        ("taint-shallow", Box::new(TaintAnalyzer::shallow())),
        ("pentest-quick", Box::new(DynamicScanner::quick())),
    ];
    for (name, tool) in &tools {
        c.bench_function(&format!("detector/{name}-100-units"), |b| {
            b.iter(|| black_box(tool.analyze_corpus(black_box(&corpus))))
        });
    }
}

fn bench_scoring(c: &mut Criterion) {
    let corpus = CorpusBuilder::new()
        .units(400)
        .vulnerability_density(0.3)
        .seed(13)
        .build();
    let tool = TaintAnalyzer::precise();
    c.bench_function("detector/score-taint-400-units", |b| {
        b.iter(|| black_box(score_detector(black_box(&tool), black_box(&corpus))))
    });
}

fn bench_second_order(c: &mut Criterion) {
    // The stored-flow corpus stresses the session interpreter (two-phase
    // scanning) and the taint analyzer's double-pass heap abstraction.
    let corpus = CorpusBuilder::new()
        .units(100)
        .vulnerability_density(0.5)
        .stored_rate(1.0)
        .seed(17)
        .build();
    let stateful = DynamicScanner::stateful();
    c.bench_function("detector/pentest-stateful-100-stored-units", |b| {
        b.iter(|| black_box(stateful.analyze_corpus(black_box(&corpus))))
    });
    let heap_taint = TaintAnalyzer::precise();
    c.bench_function("detector/taint-heap-100-stored-units", |b| {
        b.iter(|| black_box(heap_taint.analyze_corpus(black_box(&corpus))))
    });
}

criterion_group!(benches, bench_tools, bench_scoring, bench_second_order);
criterion_main!(benches);
