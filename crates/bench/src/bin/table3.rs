//! Regenerates Table 3. `cargo run -p vdbench-bench --release --bin table3`
fn main() {
    println!("{}", vdbench_bench::tables::table3());
}
