//! Regenerates Table 7 (extension study). `cargo run -p vdbench-bench --release --bin table7`
fn main() {
    println!("{}", vdbench_bench::tables::table7());
}
