//! Regenerates Figure 4. `cargo run -p vdbench-bench --release --bin fig4`
fn main() {
    println!("{}", vdbench_bench::figures::fig4());
}
