//! Regenerates Table 6. `cargo run -p vdbench-bench --release --bin table6`
fn main() {
    println!("{}", vdbench_bench::tables::table6());
}
