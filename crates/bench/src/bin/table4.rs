//! Regenerates Table 4. `cargo run -p vdbench-bench --release --bin table4`
fn main() {
    println!("{}", vdbench_bench::tables::table4());
}
