//! Regenerates Table 5. `cargo run -p vdbench-bench --release --bin table5`
fn main() {
    println!("{}", vdbench_bench::tables::table5());
}
