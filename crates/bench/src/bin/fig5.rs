//! Regenerates Figure 5 (extension study). `cargo run -p vdbench-bench --release --bin fig5`
fn main() {
    println!("{}", vdbench_bench::figures::fig5());
}
