//! Regenerates every table and figure in sequence.
//! `cargo run -p vdbench-bench --release --bin run_all`
fn main() {
    println!("{}", vdbench_bench::tables::preamble());
    println!("{}", vdbench_bench::tables::table1());
    println!("{}", vdbench_bench::tables::table2());
    println!("{}", vdbench_bench::tables::table3());
    println!("{}", vdbench_bench::tables::table4());
    println!("{}", vdbench_bench::tables::table5());
    println!("{}", vdbench_bench::tables::table6());
    println!("{}", vdbench_bench::tables::table7());
    println!("{}", vdbench_bench::tables::table8());
    println!("{}", vdbench_bench::tables::table9());
    println!("{}", vdbench_bench::figures::fig1());
    println!("{}", vdbench_bench::figures::fig2());
    println!("{}", vdbench_bench::figures::fig3());
    println!("{}", vdbench_bench::figures::fig4());
    println!("{}", vdbench_bench::figures::fig5());
    println!("{}", vdbench_bench::figures::fig6());
}
