//! Regenerates every table and figure of the evaluation.
//! `cargo run -p vdbench-bench --release --bin run_all [-- --timings] [-- --trace-out trace.json]`
//!
//! The 16 artifacts are evaluated concurrently on the worker pool and
//! printed buffered, in the original (serial) order — stdout is
//! byte-identical whether the campaign runs on one thread
//! (`RAYON_NUM_THREADS=1`) or many, and whatever telemetry flags are
//! passed. Expensive intermediates (scenario case studies, the attribute
//! assessment) are shared across artifacts through the process-wide
//! campaign cache, so each is computed exactly once per run.
//!
//! Flags (all diagnostics go to **stderr** or files, never stdout):
//!
//! * `--timings` — enable telemetry, print the per-stage wall-clock +
//!   cache-counter breakdown and the span/metric summary to stderr, and
//!   write the machine-readable record to `BENCH_campaign.json`.
//! * `--trace-out <path>` — enable telemetry and write the Chrome
//!   `trace_event` JSON to `<path>` (load it in `chrome://tracing` or
//!   <https://ui.perfetto.dev> to see the worker schedule).
//! * `--telemetry-selfcheck` — after the campaign, exit non-zero if any
//!   span event was recorded while telemetry was supposed to be off: the
//!   zero-overhead regression guard used by CI.
//! * `--fault-profile <none|flaky|hostile>` — wrap every roster tool in
//!   the deterministic fault-injection proxy and run the case studies
//!   through the resilient engine (retries, step budgets, graceful
//!   degradation; DESIGN.md §12). `none` (the default) bypasses the
//!   fault layer entirely: stdout is byte-identical to a run without the
//!   flag. Active profiles append a seventeenth `availability` artifact.
//! * `--fault-seed <u64>` — base seed of the fault decision streams
//!   (default `0xFA2015`), independent of the experiment seed. Two runs
//!   with the same profile and fault seed are byte-identical at any
//!   thread count.
//! * `--cache-dir <path>` — directory of the persistent artifact cache
//!   (default `target/vdbench-cache`). Expensive intermediates (case
//!   studies, attribute assessments, tool-on-corpus scans) are persisted
//!   as content-addressed JSON blobs; a rerun in the same workspace
//!   replays them instead of recomputing — stdout is byte-identical
//!   either way. Keys include a schema version (stale layouts
//!   self-evict) and the fault fingerprint (faulty campaigns never
//!   pollute clean entries).
//! * `--no-disk-cache` — disable the persistent tier; only the in-memory
//!   campaign cache is used (the pre-disk behaviour).
//! * `--perf-history <dir>` — with `--timings`, also append this run's
//!   timing series to the perfwatch ledger in `<dir>` (one JSONL line;
//!   see DESIGN.md §17). Defaults to the `VDBENCH_PERF_HISTORY`
//!   environment variable; capture is off when neither is set. Skipped
//!   under an active fault profile, whose timings are not comparable to
//!   clean runs.

use rayon::prelude::*;
use std::path::PathBuf;
use vdbench_bench::timing::CampaignTiming;
use vdbench_bench::{figures, tables, EXPERIMENT_SEED};
use vdbench_detectors::{FaultConfig, FaultProfile};

/// Default location of the persistent artifact cache, relative to the
/// invocation directory (the workspace root in the standard
/// `cargo run -p vdbench-bench --bin run_all` flow): inside `target/` so
/// `cargo clean` clears it and it never lands in version control.
const DEFAULT_CACHE_DIR: &str = "target/vdbench-cache";

/// Default base seed of the fault decision streams (see
/// `vdbench_detectors::fault`): fixed so CI transcripts are reproducible,
/// distinct from `EXPERIMENT_SEED` so faults and workloads vary
/// independently.
const DEFAULT_FAULT_SEED: u64 = 0xFA_2015;

/// Appends the campaign timing to the perf-history ledger. The gated
/// series is `warm_over_cold` — the disk-cache replay ratio measured
/// in-process against this run's own cold baseline (bound 0.2, the
/// statistical form of the old "warm must be ≥ 5× faster" floor). The
/// absolute wall-clock and RSS numbers are advisory: CI hardware differs
/// from the baseline-recording host.
fn append_campaign_history(dir: &std::path::Path, record: &CampaignTiming) {
    use vdbench_perfwatch::Series;
    let mut series = vec![Series::delta(
        "total_millis",
        "ms",
        "lower",
        false,
        vec![record.total_millis],
    )];
    if let (Some(cold), Some(warm)) = (record.cold_millis, record.warm_millis) {
        if cold > 0.0 {
            series.push(Series::bounded(
                "warm_over_cold",
                "ratio",
                "lower",
                true,
                vec![warm / cold],
                0.2,
            ));
        }
    }
    if record.peak_rss_kb > 0 {
        series.push(Series::delta(
            "peak_rss_kb",
            "kB",
            "lower",
            false,
            vec![record.peak_rss_kb as f64],
        ));
    }
    let entry = vdbench_perfwatch::RunEntry {
        source: "campaign".to_string(),
        unix_ms: vdbench_perfwatch::now_ms(),
        label: "run_all --timings".to_string(),
        provenance: String::new(),
        baseline: false,
        series,
    };
    match vdbench_perfwatch::append_entry(dir, &entry) {
        Ok(path) => eprintln!("appended perf history to {}", path.display()),
        Err(e) => eprintln!("perf history append failed: {e}"),
    }
}

/// One campaign artifact: display name plus its renderer.
type Artifact = (&'static str, fn() -> String);

/// The campaign artifacts in output order.
fn artifacts() -> Vec<Artifact> {
    vec![
        ("preamble", tables::preamble as fn() -> String),
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("table9", tables::table9),
        ("fig1", figures::fig1),
        ("fig2", figures::fig2),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("fig5", figures::fig5),
        ("fig6", figures::fig6),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timings_requested = args.iter().any(|a| a == "--timings");
    let selfcheck = args.iter().any(|a| a == "--telemetry-selfcheck");
    let trace_out: Option<String> = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned());
    let fault_profile: FaultProfile = match args
        .iter()
        .position(|a| a == "--fault-profile")
        .and_then(|i| args.get(i + 1))
    {
        Some(value) => match value.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("run_all: {e}");
                std::process::exit(2);
            }
        },
        None => FaultProfile::None,
    };
    let fault_seed: u64 = match args
        .iter()
        .position(|a| a == "--fault-seed")
        .and_then(|i| args.get(i + 1))
    {
        Some(value) => match value.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("run_all: invalid --fault-seed '{value}': {e}");
                std::process::exit(2);
            }
        },
        None => DEFAULT_FAULT_SEED,
    };
    let no_disk_cache = args.iter().any(|a| a == "--no-disk-cache");
    let perf_history: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--perf-history")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .or_else(vdbench_perfwatch::env_dir);
    let cache_dir: PathBuf = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR), PathBuf::from);
    let telemetry_on = timings_requested || trace_out.is_some();
    if telemetry_on {
        vdbench_telemetry::enable();
    }
    let faults_on = fault_profile != FaultProfile::None;
    if faults_on {
        // Ambient configuration: every cached case study from here on
        // runs the resilient engine with fault-wrapped tools. Diagnostics
        // to stderr only — stdout layout stays position-for-position
        // comparable across profiles.
        vdbench_core::set_fault_injection(Some(FaultConfig::new(fault_profile, fault_seed)));
        eprintln!(
            "fault injection active: profile {fault_profile}, fault seed {fault_seed:#x} \
             (resilient engine, 3 attempts per scan)"
        );
    }
    if !no_disk_cache {
        // Persistent artifact cache: memory-tier misses consult the
        // content-addressed blob store before computing. Opening the
        // store sweeps blobs from other schema versions; if the
        // directory cannot be created the campaign silently degrades to
        // the memory tier.
        vdbench_core::set_disk_cache(Some(cache_dir.clone()));
        if vdbench_core::disk_cache_dir().is_none() {
            eprintln!(
                "disk cache disabled: could not create {}",
                cache_dir.display()
            );
        }
    }

    // Fan the artifacts out across the pool; `collect` preserves input
    // order, so the buffered output below matches the historical serial
    // transcript byte for byte. The whole fan-out is one `bench/campaign`
    // span; each artifact records its own `bench/artifact` span (with its
    // campaign index, so the timing view can restore campaign order).
    let mut list = artifacts();
    if faults_on {
        // The seventeenth artifact discloses per-tool scan outcomes; it
        // exists only under an active profile so the fault-free
        // transcript stays byte-identical to the historical output.
        list.push(("availability", tables::availability));
    }
    let staged: Vec<String> = {
        let _campaign = vdbench_telemetry::span!("bench", "campaign", artifacts = list.len());
        (0..list.len())
            .into_par_iter()
            .map(|i| {
                let (name, render) = list[i];
                let _span = vdbench_telemetry::span!("bench", "artifact", name = name, index = i);
                // Final cache tier: a warm workspace replays the rendered
                // text byte-for-byte instead of recomputing the artifact's
                // post-processing on top of the cached intermediates.
                vdbench_core::cached_artifact(name, EXPERIMENT_SEED, render)
            })
            .collect()
    };

    for text in &staged {
        println!("{text}");
    }

    if telemetry_on {
        let trace = vdbench_telemetry::take_trace();
        let metrics = vdbench_telemetry::registry::global().snapshot();
        vdbench_telemetry::disable();
        if timings_requested {
            let mut record = CampaignTiming::from_telemetry(EXPERIMENT_SEED, &trace, &metrics);
            if let Some(dir) = vdbench_core::disk_cache_dir() {
                // Cold/warm bookkeeping: the first `--timings` campaign
                // against a cache directory persists its wall-clock as
                // the cold baseline (keyed on schema version and fault
                // fingerprint, like the blobs); later campaigns report
                // the pair, whose ratio is the measured disk-cache
                // speedup.
                let fault_fp = vdbench_core::fault_injection().map_or(0, |c| c.fingerprint());
                let baseline = dir.join(format!(
                    "campaign-baseline-v{}-{fault_fp:016x}.txt",
                    vdbench_core::CACHE_SCHEMA_VERSION
                ));
                match std::fs::read_to_string(&baseline)
                    .ok()
                    .and_then(|text| text.trim().parse::<f64>().ok())
                {
                    Some(cold) => {
                        record.cold_millis = Some(cold);
                        record.warm_millis = Some(record.total_millis);
                    }
                    None => {
                        record.cold_millis = Some(record.total_millis);
                        let _ = std::fs::write(&baseline, format!("{:?}\n", record.total_millis));
                    }
                }
            }
            eprint!("{}", record.render());
            eprint!("{}", vdbench_telemetry::export::summary(&trace, &metrics));
            let path = "BENCH_campaign.json";
            match std::fs::write(path, record.to_json()) {
                Ok(()) => eprintln!("timing record written to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
            if let Some(dir) = &perf_history {
                if faults_on {
                    // Faulty campaigns time retries and degradation paths;
                    // their distribution is not comparable to clean runs.
                    eprintln!("perf history capture skipped under fault profile {fault_profile}");
                } else {
                    append_campaign_history(dir, &record);
                }
            }
        }
        if let Some(path) = trace_out {
            let json = vdbench_telemetry::export::chrome_trace_json(&trace);
            match std::fs::write(&path, json) {
                Ok(()) => eprintln!("chrome trace written to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    }

    if selfcheck {
        // Zero-overhead guard: a campaign that never enabled telemetry
        // must not have recorded a single span event.
        let events = vdbench_telemetry::events_recorded();
        if telemetry_on {
            eprintln!("telemetry self-check skipped: recording was explicitly enabled");
        } else if events == 0 {
            eprintln!("telemetry self-check passed: 0 events recorded while disabled");
        } else {
            eprintln!("telemetry self-check FAILED: {events} events recorded while disabled");
            std::process::exit(1);
        }
    }
}
