//! Regenerates every table and figure of the evaluation.
//! `cargo run -p vdbench-bench --release --bin run_all [-- --timings]`
//!
//! The 15 artifacts are evaluated concurrently on the worker pool and
//! printed buffered, in the original (serial) order — stdout is
//! byte-identical whether the campaign runs on one thread
//! (`RAYON_NUM_THREADS=1`) or many, and whether `--timings` is passed or
//! not. Expensive intermediates (scenario case studies, the attribute
//! assessment) are shared across artifacts through the process-wide
//! campaign cache, so each is computed exactly once per run.
//!
//! `--timings` prints a per-stage wall-clock + cache-counter breakdown to
//! **stderr** and writes the same record as JSON to `BENCH_campaign.json`.

use rayon::prelude::*;
use vdbench_bench::timing::{time_stage, CampaignTiming, StageTiming};
use vdbench_bench::{figures, tables, EXPERIMENT_SEED};

/// One campaign artifact: display name plus its renderer.
type Artifact = (&'static str, fn() -> String);

/// The campaign artifacts in output order.
fn artifacts() -> Vec<Artifact> {
    vec![
        ("preamble", tables::preamble as fn() -> String),
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("table9", tables::table9),
        ("fig1", figures::fig1),
        ("fig2", figures::fig2),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("fig5", figures::fig5),
        ("fig6", figures::fig6),
    ]
}

fn main() {
    let timings_requested = std::env::args().skip(1).any(|a| a == "--timings");
    let campaign_start = std::time::Instant::now();

    // Fan the artifacts out across the pool; `collect` preserves input
    // order, so the buffered output below matches the historical serial
    // transcript byte for byte.
    let staged: Vec<(String, StageTiming)> = artifacts()
        .par_iter()
        .map(|(name, f)| time_stage(name, f))
        .collect();

    let mut stages = Vec::with_capacity(staged.len());
    for (text, stage) in staged {
        println!("{text}");
        stages.push(stage);
    }

    if timings_requested {
        let record = CampaignTiming {
            seed: EXPERIMENT_SEED,
            threads: rayon::current_num_threads(),
            stages,
            total_millis: campaign_start.elapsed().as_secs_f64() * 1e3,
            cache: vdbench_core::cache::stats().into(),
        };
        eprint!("{}", record.render());
        let path = "BENCH_campaign.json";
        match std::fs::write(path, record.to_json()) {
            Ok(()) => eprintln!("timing record written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
