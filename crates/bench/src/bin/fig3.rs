//! Regenerates Figure 3. `cargo run -p vdbench-bench --release --bin fig3`
fn main() {
    println!("{}", vdbench_bench::figures::fig3());
}
