//! Regenerates Table 8 (extension study). `cargo run -p vdbench-bench --release --bin table8`
fn main() {
    println!("{}", vdbench_bench::tables::table8());
}
