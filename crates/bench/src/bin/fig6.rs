//! Regenerates Figure 6 (extension study). `cargo run -p vdbench-bench --release --bin fig6`
fn main() {
    println!("{}", vdbench_bench::figures::fig6());
}
