//! Regenerates Table 2. `cargo run -p vdbench-bench --release --bin table2`
fn main() {
    println!("{}", vdbench_bench::tables::table2());
}
