//! Regenerates Table 9 (extension study). `cargo run -p vdbench-bench --release --bin table9`
fn main() {
    println!("{}", vdbench_bench::tables::table9());
}
