//! Regenerates Figure 2. `cargo run -p vdbench-bench --release --bin fig2`
fn main() {
    println!("{}", vdbench_bench::figures::fig2());
}
