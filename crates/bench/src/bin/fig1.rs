//! Regenerates Figure 1. `cargo run -p vdbench-bench --release --bin fig1`
fn main() {
    println!("{}", vdbench_bench::figures::fig1());
}
