//! Regenerates Table 1. `cargo run -p vdbench-bench --release --bin table1`
fn main() {
    println!("{}", vdbench_bench::tables::table1());
}
