//! Wall-clock instrumentation for the campaign engine — a **derived view**
//! over the telemetry subsystem.
//!
//! `run_all --timings` enables span recording, runs the campaign, then
//! builds a [`CampaignTiming`] record *from the trace and the metrics
//! registry* ([`CampaignTiming::from_telemetry`]): per-artifact wall-clock
//! comes from the `bench/artifact` spans, the cache counters from the
//! `cache.*` registry counters, and the requested/realized worker counts
//! from the rayon shim. The record is printed human-readably to **stderr**
//! (stdout stays byte-identical with and without the flag) and serialized
//! to `BENCH_campaign.json` for machine consumption.
//!
//! The human-readable stage table is sorted by cost (milliseconds,
//! descending) and carries a cumulative-share column, so the hot
//! artifacts — the ones worth caching — are visible at a glance; the
//! serialized record keeps the stages in campaign order for stable
//! machine diffs.
//!
//! When `run_all`'s persistent disk cache is active, the record also
//! carries the cold/warm pair: `cold_millis` is the wall-clock of the
//! first campaign ever run against that cache directory (persisted as a
//! baseline file alongside the blobs), `warm_millis` the wall-clock of
//! the current run when it found a baseline — the ratio is the measured
//! speedup of serving the campaign from disk.
//!
//! There is deliberately no second, hand-rolled timing path: what the
//! breakdown reports is exactly what the Chrome trace
//! (`--trace-out trace.json`) visualizes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vdbench_telemetry::registry::MetricsSnapshot;
use vdbench_telemetry::span::Trace;

/// Wall-clock of one campaign stage (one table/figure artifact), derived
/// from its `bench/artifact` span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (artifact binary name: "table4", "fig3", …).
    pub name: String,
    /// Wall-clock milliseconds spent producing the artifact.
    pub millis: f64,
}

/// Campaign-cache counters in serializable form, read back from the
/// `cache.case_study.*` / `cache.assessment.*` / `cache.scan.*` /
/// `cache.disk.*` registry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheCounters {
    /// Case-study requests served from the memory tier.
    pub case_study_hits: u64,
    /// Case-study requests that missed the memory tier.
    pub case_study_misses: u64,
    /// Assessment requests served from the memory tier.
    pub assessment_hits: u64,
    /// Assessment requests that missed the memory tier.
    pub assessment_misses: u64,
    /// Tool-on-corpus scans served from the memory tier.
    pub scan_hits: u64,
    /// Tool-on-corpus scans that missed the memory tier.
    pub scan_misses: u64,
    /// Rendered artifacts replayed from the disk store.
    pub artifact_hits: u64,
    /// Rendered artifacts that had to be computed.
    pub artifact_misses: u64,
    /// Memory-tier misses answered by the persistent disk store.
    pub disk_hits: u64,
    /// Memory-tier misses the disk store could not answer (computed).
    pub disk_misses: u64,
    /// Blobs atomically published to the disk store.
    pub disk_writes: u64,
    /// Stale-schema blobs swept when the disk store was opened.
    pub disk_evictions: u64,
}

impl CacheCounters {
    /// Reads the cache counters out of a registry snapshot (0 for
    /// counters that were never touched).
    #[must_use]
    pub fn from_snapshot(metrics: &MetricsSnapshot) -> Self {
        let get = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
        CacheCounters {
            case_study_hits: get("cache.case_study.hits"),
            case_study_misses: get("cache.case_study.misses"),
            assessment_hits: get("cache.assessment.hits"),
            assessment_misses: get("cache.assessment.misses"),
            scan_hits: get("cache.scan.hits"),
            scan_misses: get("cache.scan.misses"),
            artifact_hits: get("cache.artifact.hits"),
            artifact_misses: get("cache.artifact.misses"),
            disk_hits: get("cache.disk.hits"),
            disk_misses: get("cache.disk.misses"),
            disk_writes: get("cache.disk.writes"),
            disk_evictions: get("cache.disk.evictions"),
        }
    }
}

impl From<vdbench_core::CacheStats> for CacheCounters {
    fn from(s: vdbench_core::CacheStats) -> Self {
        CacheCounters {
            case_study_hits: s.case_study_hits,
            case_study_misses: s.case_study_misses,
            assessment_hits: s.assessment_hits,
            assessment_misses: s.assessment_misses,
            scan_hits: s.scan_hits,
            scan_misses: s.scan_misses,
            artifact_hits: s.artifact_hits,
            artifact_misses: s.artifact_misses,
            disk_hits: s.disk_hits,
            disk_misses: s.disk_misses,
            disk_writes: s.disk_writes,
            disk_evictions: s.disk_evictions,
        }
    }
}

/// The full timing record of one `run_all` campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// The experiment seed.
    pub seed: u64,
    /// Worker threads a parallel call *requests* (`RAYON_NUM_THREADS` or
    /// the machine's available parallelism).
    pub threads_requested: usize,
    /// Worker threads any parallel call in this process *actually ran on*
    /// (the pool's high-water mark — small inputs use fewer workers than
    /// requested).
    pub threads_used: usize,
    /// Per-artifact wall-clock, in campaign order (the rendered view
    /// sorts by cost instead).
    pub stages: Vec<StageTiming>,
    /// End-to-end campaign wall-clock in milliseconds (less than the sum
    /// of the stages when they overlap on the pool).
    pub total_millis: f64,
    /// Wall-clock of the campaign that populated the active disk cache
    /// (this run, if it found the cache empty). `None` when the disk
    /// tier is off.
    pub cold_millis: Option<f64>,
    /// Wall-clock of this campaign when it ran against a populated disk
    /// cache. `None` when the disk tier is off or this run *was* the
    /// cold one.
    pub warm_millis: Option<f64>,
    /// Process peak RSS (`VmHWM`) at campaign end, in kB; 0 where procfs
    /// is unavailable.
    pub peak_rss_kb: u64,
    /// Shards consumed by streamed/sharded scans (`scan.shards`); 0 for
    /// campaigns that never took the streaming path.
    pub shard_count: u64,
    /// Campaign-cache hit/miss counters at campaign end (all tiers).
    pub cache: CacheCounters,
    /// Fault-injection and resilient-scan counters at campaign end
    /// (`fault.injected.*`, `scan.attempts` / `scan.retries` /
    /// `scan.failed`, `scan.sessions.deduped`). Only counters that fired
    /// appear; fault-free campaigns still report the scanner's session
    /// deduplication here.
    pub resilience: BTreeMap<String, u64>,
    /// Interpreter counters at campaign end (`interp.env.interned_slots`,
    /// `interp.vm.instructions`, `interp.vm.inline_cache.{hits,misses}`).
    /// Only counters that fired appear; a campaign that never compiles a
    /// unit reports an empty map.
    pub interp: BTreeMap<String, u64>,
}

impl CampaignTiming {
    /// Derives the campaign record from telemetry: stages from the
    /// `bench/artifact` spans (ordered by their `index` argument, i.e.
    /// campaign order), total wall-clock from the `bench/campaign` span,
    /// cache counters from the registry snapshot, and thread counts from
    /// the rayon shim (requested width vs. realized high-water mark).
    /// The cold/warm pair starts empty — `run_all` fills it in from the
    /// disk-cache baseline when the disk tier is active.
    #[must_use]
    pub fn from_telemetry(seed: u64, trace: &Trace, metrics: &MetricsSnapshot) -> Self {
        let spans = trace.complete_spans();
        let mut stages: Vec<(usize, StageTiming)> = spans
            .iter()
            .filter(|s| s.cat == "bench" && s.name == "artifact")
            .map(|s| {
                let index: usize = s.arg("index").and_then(|v| v.parse().ok()).unwrap_or(0);
                let name = s.arg("name").unwrap_or("?").to_string();
                (
                    index,
                    StageTiming {
                        name,
                        millis: s.millis(),
                    },
                )
            })
            .collect();
        stages.sort_by_key(|(index, _)| *index);
        let total_millis = spans
            .iter()
            .find(|s| s.cat == "bench" && s.name == "campaign")
            .map(vdbench_telemetry::span::CompleteSpan::millis)
            .unwrap_or_else(|| stages.iter().map(|(_, s)| s.millis).sum());
        CampaignTiming {
            seed,
            threads_requested: rayon::current_num_threads(),
            threads_used: rayon::max_threads_used().max(1),
            stages: stages.into_iter().map(|(_, s)| s).collect(),
            total_millis,
            cold_millis: None,
            warm_millis: None,
            peak_rss_kb: vdbench_telemetry::peak_rss_kb().unwrap_or(0),
            shard_count: metrics.counters.get("scan.shards").copied().unwrap_or(0),
            cache: CacheCounters::from_snapshot(metrics),
            resilience: {
                let mut r = metrics.counters_with_prefix("fault.");
                r.extend(metrics.counters_with_prefix("scan."));
                r
            },
            interp: metrics.counters_with_prefix("interp."),
        }
    }

    /// Renders the human-readable breakdown printed to stderr: stages
    /// sorted by wall-clock (descending) with per-stage share and
    /// cumulative share of the total stage work, so the hot artifacts
    /// head the table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign timings (seed {:#x}, {} worker thread{} requested, {} used):",
            self.seed,
            self.threads_requested,
            if self.threads_requested == 1 { "" } else { "s" },
            self.threads_used
        );
        // `+ 0.0` normalizes the empty-sum identity (-0.0) so an empty
        // stage table renders "0.0 ms", not "-0.0 ms".
        let busy: f64 = self.stages.iter().map(|s| s.millis).sum::<f64>() + 0.0;
        let mut by_cost: Vec<&StageTiming> = self.stages.iter().collect();
        by_cost.sort_by(|a, b| b.millis.total_cmp(&a.millis));
        let mut cumulative = 0.0;
        for s in by_cost {
            cumulative += s.millis;
            let (share, cum) = if busy > 0.0 {
                (100.0 * s.millis / busy, 100.0 * cumulative / busy)
            } else {
                (0.0, 0.0)
            };
            let _ = writeln!(
                out,
                "  {:<8} {:>9.1} ms {:>5.1}% {:>6.1}% cum",
                s.name, s.millis, share, cum
            );
        }
        let _ = writeln!(
            out,
            "  {:<8} {:>9.1} ms wall ({busy:.1} ms of stage work)",
            "total", self.total_millis
        );
        if let (Some(cold), Some(warm)) = (self.cold_millis, self.warm_millis) {
            let speedup = if warm > 0.0 { cold / warm } else { f64::NAN };
            let _ = writeln!(
                out,
                "  disk cache: cold {cold:.1} ms -> warm {warm:.1} ms ({speedup:.1}x)"
            );
        } else if let Some(cold) = self.cold_millis {
            let _ = writeln!(
                out,
                "  disk cache: cold run, {cold:.1} ms baseline recorded"
            );
        }
        let _ = writeln!(
            out,
            "campaign cache: case studies {} hit / {} miss, assessments {} hit / {} miss, \
             scans {} hit / {} miss, artifacts {} hit / {} miss",
            self.cache.case_study_hits,
            self.cache.case_study_misses,
            self.cache.assessment_hits,
            self.cache.assessment_misses,
            self.cache.scan_hits,
            self.cache.scan_misses,
            self.cache.artifact_hits,
            self.cache.artifact_misses,
        );
        if self.cache.disk_hits + self.cache.disk_misses + self.cache.disk_writes > 0 {
            let _ = writeln!(
                out,
                "disk cache: {} hit / {} miss, {} written, {} evicted",
                self.cache.disk_hits,
                self.cache.disk_misses,
                self.cache.disk_writes,
                self.cache.disk_evictions,
            );
        }
        if !self.resilience.is_empty() {
            let line: Vec<String> = self
                .resilience
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect();
            let _ = writeln!(out, "campaign resilience: {}", line.join(" "));
        }
        if !self.interp.is_empty() {
            let line: Vec<String> = self
                .interp
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect();
            let _ = writeln!(out, "interpreter: {}", line.join(" "));
        }
        out
    }

    /// Serializes the record as pretty JSON (the `BENCH_campaign.json`
    /// payload).
    ///
    /// # Panics
    ///
    /// Never: the record contains no non-serializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timing record serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use vdbench_telemetry::span;

    /// The telemetry buffers are process-global; tests that record must
    /// not interleave.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    fn sample_record() -> CampaignTiming {
        CampaignTiming {
            seed: 0xD5_2015,
            threads_requested: 4,
            threads_used: 3,
            stages: vec![
                StageTiming {
                    name: "table1".into(),
                    millis: 1.5,
                },
                StageTiming {
                    name: "fig6".into(),
                    millis: 250.0,
                },
                StageTiming {
                    name: "table4".into(),
                    millis: 248.5,
                },
            ],
            total_millis: 500.0,
            cold_millis: None,
            warm_millis: None,
            peak_rss_kb: 40_960,
            shard_count: 12,
            cache: CacheCounters {
                case_study_hits: 6,
                case_study_misses: 4,
                assessment_hits: 1,
                assessment_misses: 2,
                scan_hits: 3,
                scan_misses: 41,
                artifact_hits: 0,
                artifact_misses: 16,
                disk_hits: 0,
                disk_misses: 0,
                disk_writes: 0,
                disk_evictions: 0,
            },
            resilience: [
                ("fault.injected.crash".to_string(), 3u64),
                ("scan.failed".to_string(), 1u64),
                ("scan.sessions.deduped".to_string(), 120u64),
            ]
            .into_iter()
            .collect(),
            interp: [
                ("interp.env.interned_slots".to_string(), 180u64),
                ("interp.vm.instructions".to_string(), 90_000u64),
                ("interp.vm.inline_cache.hits".to_string(), 64u64),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn record_renders_and_serializes() {
        let record = sample_record();
        let text = record.render();
        assert!(text.contains("table1"));
        assert!(text.contains("6 hit / 4 miss"));
        assert!(text.contains("scans 3 hit / 41 miss, artifacts 0 hit / 16 miss"));
        assert!(
            text.contains(
                "campaign resilience: fault.injected.crash=3 scan.failed=1 \
                 scan.sessions.deduped=120"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "interpreter: interp.env.interned_slots=180 \
                 interp.vm.inline_cache.hits=64 interp.vm.instructions=90000"
            ),
            "{text}"
        );
        assert!(
            text.contains("4 worker threads requested, 3 used"),
            "{text}"
        );
        // Disk tier inactive: no disk line, no cold/warm line.
        assert!(!text.contains("disk cache:"), "{text}");
        let json = record.to_json();
        assert!(json.contains("\"case_study_hits\": 6"));
        assert!(json.contains("\"scan_misses\": 41"));
        assert!(json.contains("\"name\": \"fig6\""));
        assert!(json.contains("\"threads_requested\": 4"));
        assert!(json.contains("\"cold_millis\": null"));
        assert!(json.contains("\"peak_rss_kb\": 40960"));
        assert!(json.contains("\"shard_count\": 12"));
        // Valid JSON round-trip through the vendored parser.
        let parsed: CampaignTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn render_sorts_stages_by_cost_with_cumulative_share() {
        let record = sample_record();
        let text = record.render();
        let fig6 = text.find("fig6").expect("fig6 rendered");
        let table4 = text.find("table4").expect("table4 rendered");
        let table1 = text.find("table1").expect("table1 rendered");
        assert!(
            fig6 < table4 && table4 < table1,
            "stages must render hottest-first:\n{text}"
        );
        // fig6 is exactly half of the 500 ms stage work.
        assert!(
            text.contains("fig6         250.0 ms  50.0%   50.0% cum"),
            "{text}"
        );
        // The coldest stage closes the cumulative column at 100%.
        assert!(
            text.contains("table1         1.5 ms   0.3%  100.0% cum"),
            "{text}"
        );
        // The JSON view keeps campaign order (table1 first).
        let json = record.to_json();
        assert!(
            json.find("table1").unwrap() < json.find("fig6").unwrap(),
            "serialized stages stay in campaign order"
        );
    }

    #[test]
    fn render_reports_cold_warm_pair() {
        let mut record = sample_record();
        record.cold_millis = Some(2000.0);
        record.warm_millis = Some(250.0);
        let text = record.render();
        assert!(
            text.contains("disk cache: cold 2000.0 ms -> warm 250.0 ms (8.0x)"),
            "{text}"
        );
        record.warm_millis = None;
        let text = record.render();
        assert!(
            text.contains("disk cache: cold run, 2000.0 ms baseline recorded"),
            "{text}"
        );
        let parsed: CampaignTiming = serde_json::from_str(&record.to_json()).unwrap();
        assert_eq!(parsed.cold_millis, Some(2000.0));
        assert_eq!(parsed.warm_millis, None);
    }

    #[test]
    fn derives_stages_in_campaign_order_from_spans() {
        let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
        vdbench_telemetry::reset();
        vdbench_telemetry::enable();
        {
            let _campaign = span!("bench", "campaign");
            // Recorded out of campaign order on purpose.
            for (i, name) in [(1usize, "fig1"), (0usize, "table1")] {
                let _s = span!("bench", "artifact", name = name, index = i);
            }
        }
        let trace = vdbench_telemetry::take_trace();
        vdbench_telemetry::disable();
        let reg = vdbench_telemetry::registry::Registry::new();
        reg.counter("cache.case_study.hits").add(5);
        reg.counter("cache.scan.misses").add(7);
        reg.counter("cache.disk.hits").add(2);
        reg.counter("cache.artifact.hits").add(11);
        reg.counter("fault.injected.timeout").add(2);
        reg.counter("scan.retries").add(4);
        reg.counter("scan.sessions.deduped").add(9);
        reg.counter("scan.failed"); // zero: stays out of the section
        reg.counter("interp.vm.instructions").add(1234);
        reg.counter("interp.env.interned_slots").add(17);
        reg.counter("interp.vm.inline_cache.misses"); // zero: elided
        let record = CampaignTiming::from_telemetry(7, &trace, &reg.snapshot());
        let names: Vec<&str> = record.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["table1", "fig1"],
            "index arg restores campaign order"
        );
        assert_eq!(record.cache.case_study_hits, 5);
        assert_eq!(record.cache.assessment_misses, 0);
        assert_eq!(record.cache.scan_misses, 7);
        assert_eq!(record.cache.artifact_hits, 11);
        assert_eq!(record.cache.disk_hits, 2);
        assert_eq!(record.cold_millis, None);
        assert_eq!(record.warm_millis, None);
        assert_eq!(record.resilience.len(), 3, "zero counters elided");
        assert_eq!(record.resilience["fault.injected.timeout"], 2);
        assert_eq!(record.resilience["scan.retries"], 4);
        assert_eq!(record.resilience["scan.sessions.deduped"], 9);
        assert_eq!(record.interp.len(), 2, "zero interp counters elided");
        assert_eq!(record.interp["interp.vm.instructions"], 1234);
        assert_eq!(record.interp["interp.env.interned_slots"], 17);
        assert!(record.total_millis >= 0.0);
        assert!(record.threads_requested >= 1);
        assert!(record.threads_used >= 1);
        assert_eq!(record.shard_count, 0, "no streamed scans ran");
        if cfg!(target_os = "linux") {
            assert!(record.peak_rss_kb > 0, "procfs high-water mark captured");
        }
    }

    #[test]
    fn render_survives_empty_stage_table() {
        let mut record = sample_record();
        record.stages.clear();
        record.total_millis = 0.0;
        let text = record.render();
        // No stages means no busy time: the share columns must not divide
        // by zero, and the total line still closes the table.
        assert!(
            text.contains("total          0.0 ms wall (0.0 ms of stage work)"),
            "{text}"
        );
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("inf"), "{text}");
        let parsed: CampaignTiming = serde_json::from_str(&record.to_json()).unwrap();
        assert!(parsed.stages.is_empty());
    }

    #[test]
    fn counter_prefixes_are_dot_terminated() {
        let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
        vdbench_telemetry::reset();
        let trace = vdbench_telemetry::take_trace();
        let reg = vdbench_telemetry::registry::Registry::new();
        // `scandal.oops` shares the first four letters with the `scan.`
        // family; the trailing dot in the prefix must keep it out.
        reg.counter("scandal.oops").add(5);
        reg.counter("scan.retries").add(2);
        reg.counter("faulty.unit").add(3);
        reg.counter("fault.injected.flip").add(1);
        reg.counter("interpolate.x").add(4);
        reg.counter("interp.vm.instructions").add(6);
        let record = CampaignTiming::from_telemetry(1, &trace, &reg.snapshot());
        assert_eq!(
            record.resilience.keys().collect::<Vec<_>>(),
            ["fault.injected.flip", "scan.retries"],
            "lookalike counters must not leak into the resilience section"
        );
        assert_eq!(
            record.interp.keys().collect::<Vec<_>>(),
            ["interp.vm.instructions"],
            "`interpolate.*` is not an interpreter counter"
        );
        let text = record.render();
        assert!(!text.contains("scandal"), "{text}");
        assert!(!text.contains("interpolate"), "{text}");
    }

    #[test]
    fn missing_peak_rss_round_trips_as_zero() {
        // Platforms without procfs report 0; the record must carry it
        // through JSON unchanged rather than dropping or inventing a
        // value, so downstream consumers can tell "unknown" from small.
        let mut record = sample_record();
        record.peak_rss_kb = 0;
        let json = record.to_json();
        assert!(json.contains("\"peak_rss_kb\": 0"), "{json}");
        let parsed: CampaignTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.peak_rss_kb, 0);
        // The render never claims an RSS figure, so a zero high-water
        // mark cannot mislead: the breakdown stays purely wall-clock.
        let text = record.render();
        assert!(!text.contains("RSS"), "{text}");
        assert_eq!(text, sample_record().render(), "render ignores peak RSS");
    }

    #[test]
    fn cache_counters_convert_from_core_stats() {
        let stats = vdbench_core::CacheStats {
            case_study_hits: 1,
            case_study_misses: 2,
            assessment_hits: 3,
            assessment_misses: 4,
            scan_hits: 5,
            scan_misses: 6,
            artifact_hits: 11,
            artifact_misses: 12,
            disk_hits: 7,
            disk_misses: 8,
            disk_writes: 9,
            disk_evictions: 10,
        };
        let counters: CacheCounters = stats.into();
        assert_eq!(counters.case_study_misses, 2);
        assert_eq!(counters.assessment_misses, 4);
        assert_eq!(counters.scan_hits, 5);
        assert_eq!(counters.artifact_hits, 11);
        assert_eq!(counters.artifact_misses, 12);
        assert_eq!(counters.disk_writes, 9);
        assert_eq!(counters.disk_evictions, 10);
    }
}
