//! Wall-clock instrumentation for the campaign engine.
//!
//! `run_all --timings` records per-artifact wall-clock plus the campaign
//! cache counters, prints a human-readable breakdown to **stderr** (stdout
//! stays byte-identical with and without the flag) and serializes the
//! whole record to `BENCH_campaign.json` for machine consumption.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock of one campaign stage (one table/figure artifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (artifact binary name: "table4", "fig3", …).
    pub name: String,
    /// Wall-clock milliseconds spent producing the artifact.
    pub millis: f64,
}

/// Campaign-cache counters in serializable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Case-study requests served from the cache.
    pub case_study_hits: u64,
    /// Case-study requests that ran the benchmark.
    pub case_study_misses: u64,
    /// Assessment requests served from the cache.
    pub assessment_hits: u64,
    /// Assessment requests that ran the simulations.
    pub assessment_misses: u64,
}

impl From<vdbench_core::CacheStats> for CacheCounters {
    fn from(s: vdbench_core::CacheStats) -> Self {
        CacheCounters {
            case_study_hits: s.case_study_hits,
            case_study_misses: s.case_study_misses,
            assessment_hits: s.assessment_hits,
            assessment_misses: s.assessment_misses,
        }
    }
}

/// The full timing record of one `run_all` campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// The experiment seed.
    pub seed: u64,
    /// Worker threads a parallel call uses (`RAYON_NUM_THREADS` or the
    /// machine's available parallelism).
    pub threads: usize,
    /// Per-artifact wall-clock, in campaign order.
    pub stages: Vec<StageTiming>,
    /// End-to-end campaign wall-clock in milliseconds (less than the sum
    /// of the stages when they overlap on the pool).
    pub total_millis: f64,
    /// Campaign-cache hit/miss counters at campaign end.
    pub cache: CacheCounters,
}

impl CampaignTiming {
    /// Renders the human-readable breakdown printed to stderr.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign timings (seed {:#x}, {} worker thread{}):",
            self.seed,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        );
        for s in &self.stages {
            let _ = writeln!(out, "  {:<8} {:>9.1} ms", s.name, s.millis);
        }
        let busy: f64 = self.stages.iter().map(|s| s.millis).sum();
        let _ = writeln!(
            out,
            "  {:<8} {:>9.1} ms wall ({busy:.1} ms of stage work)",
            "total", self.total_millis
        );
        let _ = writeln!(
            out,
            "campaign cache: case studies {} hit / {} miss, assessments {} hit / {} miss",
            self.cache.case_study_hits,
            self.cache.case_study_misses,
            self.cache.assessment_hits,
            self.cache.assessment_misses
        );
        out
    }

    /// Serializes the record as pretty JSON (the `BENCH_campaign.json`
    /// payload).
    ///
    /// # Panics
    ///
    /// Never: the record contains no non-serializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timing record serializes")
    }
}

/// Runs `f`, returning its output together with the elapsed wall-clock.
pub fn time_stage<T>(name: &str, f: impl FnOnce() -> T) -> (T, StageTiming) {
    let start = Instant::now();
    let out = f();
    let timing = StageTiming {
        name: name.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
    };
    (out, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_measures_and_returns() {
        let (value, t) = time_stage("demo", || 6 * 7);
        assert_eq!(value, 42);
        assert_eq!(t.name, "demo");
        assert!(t.millis >= 0.0);
    }

    #[test]
    fn record_renders_and_serializes() {
        let record = CampaignTiming {
            seed: 0xD5_2015,
            threads: 4,
            stages: vec![
                StageTiming {
                    name: "table1".into(),
                    millis: 1.5,
                },
                StageTiming {
                    name: "fig6".into(),
                    millis: 250.0,
                },
            ],
            total_millis: 251.5,
            cache: CacheCounters {
                case_study_hits: 6,
                case_study_misses: 4,
                assessment_hits: 1,
                assessment_misses: 2,
            },
        };
        let text = record.render();
        assert!(text.contains("table1"));
        assert!(text.contains("6 hit / 4 miss"));
        let json = record.to_json();
        assert!(json.contains("\"case_study_hits\": 6"));
        assert!(json.contains("\"name\": \"fig6\""));
        // Valid JSON round-trip through the vendored parser.
        let parsed: CampaignTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, record);
    }
}
