//! Wall-clock instrumentation for the campaign engine — a **derived view**
//! over the telemetry subsystem.
//!
//! `run_all --timings` enables span recording, runs the campaign, then
//! builds a [`CampaignTiming`] record *from the trace and the metrics
//! registry* ([`CampaignTiming::from_telemetry`]): per-artifact wall-clock
//! comes from the `bench/artifact` spans, the cache counters from the
//! `cache.*` registry counters, and the requested/realized worker counts
//! from the rayon shim. The record is printed human-readably to **stderr**
//! (stdout stays byte-identical with and without the flag) and serialized
//! to `BENCH_campaign.json` for machine consumption.
//!
//! There is deliberately no second, hand-rolled timing path: what the
//! breakdown reports is exactly what the Chrome trace
//! (`--trace-out trace.json`) visualizes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vdbench_telemetry::registry::MetricsSnapshot;
use vdbench_telemetry::span::Trace;

/// Wall-clock of one campaign stage (one table/figure artifact), derived
/// from its `bench/artifact` span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (artifact binary name: "table4", "fig3", …).
    pub name: String,
    /// Wall-clock milliseconds spent producing the artifact.
    pub millis: f64,
}

/// Campaign-cache counters in serializable form, read back from the
/// `cache.case_study.*` / `cache.assessment.*` registry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheCounters {
    /// Case-study requests served from the cache.
    pub case_study_hits: u64,
    /// Case-study requests that ran the benchmark.
    pub case_study_misses: u64,
    /// Assessment requests served from the cache.
    pub assessment_hits: u64,
    /// Assessment requests that ran the simulations.
    pub assessment_misses: u64,
}

impl CacheCounters {
    /// Reads the four cache counters out of a registry snapshot (0 for
    /// counters that were never touched).
    #[must_use]
    pub fn from_snapshot(metrics: &MetricsSnapshot) -> Self {
        let get = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
        CacheCounters {
            case_study_hits: get("cache.case_study.hits"),
            case_study_misses: get("cache.case_study.misses"),
            assessment_hits: get("cache.assessment.hits"),
            assessment_misses: get("cache.assessment.misses"),
        }
    }
}

impl From<vdbench_core::CacheStats> for CacheCounters {
    fn from(s: vdbench_core::CacheStats) -> Self {
        CacheCounters {
            case_study_hits: s.case_study_hits,
            case_study_misses: s.case_study_misses,
            assessment_hits: s.assessment_hits,
            assessment_misses: s.assessment_misses,
        }
    }
}

/// The full timing record of one `run_all` campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// The experiment seed.
    pub seed: u64,
    /// Worker threads a parallel call *requests* (`RAYON_NUM_THREADS` or
    /// the machine's available parallelism).
    pub threads_requested: usize,
    /// Worker threads any parallel call in this process *actually ran on*
    /// (the pool's high-water mark — small inputs use fewer workers than
    /// requested).
    pub threads_used: usize,
    /// Per-artifact wall-clock, in campaign order.
    pub stages: Vec<StageTiming>,
    /// End-to-end campaign wall-clock in milliseconds (less than the sum
    /// of the stages when they overlap on the pool).
    pub total_millis: f64,
    /// Campaign-cache hit/miss counters at campaign end.
    pub cache: CacheCounters,
    /// Fault-injection and resilient-scan counters at campaign end
    /// (`fault.injected.*`, `scan.attempts` / `scan.retries` /
    /// `scan.failed`). Empty in fault-free runs: the counters only exist
    /// when the fault layer or the resilient engine fired.
    pub resilience: BTreeMap<String, u64>,
}

impl CampaignTiming {
    /// Derives the campaign record from telemetry: stages from the
    /// `bench/artifact` spans (ordered by their `index` argument, i.e.
    /// campaign order), total wall-clock from the `bench/campaign` span,
    /// cache counters from the registry snapshot, and thread counts from
    /// the rayon shim (requested width vs. realized high-water mark).
    #[must_use]
    pub fn from_telemetry(seed: u64, trace: &Trace, metrics: &MetricsSnapshot) -> Self {
        let spans = trace.complete_spans();
        let mut stages: Vec<(usize, StageTiming)> = spans
            .iter()
            .filter(|s| s.cat == "bench" && s.name == "artifact")
            .map(|s| {
                let index: usize = s.arg("index").and_then(|v| v.parse().ok()).unwrap_or(0);
                let name = s.arg("name").unwrap_or("?").to_string();
                (
                    index,
                    StageTiming {
                        name,
                        millis: s.millis(),
                    },
                )
            })
            .collect();
        stages.sort_by_key(|(index, _)| *index);
        let total_millis = spans
            .iter()
            .find(|s| s.cat == "bench" && s.name == "campaign")
            .map(vdbench_telemetry::span::CompleteSpan::millis)
            .unwrap_or_else(|| stages.iter().map(|(_, s)| s.millis).sum());
        CampaignTiming {
            seed,
            threads_requested: rayon::current_num_threads(),
            threads_used: rayon::max_threads_used().max(1),
            stages: stages.into_iter().map(|(_, s)| s).collect(),
            total_millis,
            cache: CacheCounters::from_snapshot(metrics),
            resilience: {
                let mut r = metrics.counters_with_prefix("fault.");
                r.extend(metrics.counters_with_prefix("scan."));
                r
            },
        }
    }

    /// Renders the human-readable breakdown printed to stderr.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign timings (seed {:#x}, {} worker thread{} requested, {} used):",
            self.seed,
            self.threads_requested,
            if self.threads_requested == 1 { "" } else { "s" },
            self.threads_used
        );
        for s in &self.stages {
            let _ = writeln!(out, "  {:<8} {:>9.1} ms", s.name, s.millis);
        }
        let busy: f64 = self.stages.iter().map(|s| s.millis).sum();
        let _ = writeln!(
            out,
            "  {:<8} {:>9.1} ms wall ({busy:.1} ms of stage work)",
            "total", self.total_millis
        );
        let _ = writeln!(
            out,
            "campaign cache: case studies {} hit / {} miss, assessments {} hit / {} miss",
            self.cache.case_study_hits,
            self.cache.case_study_misses,
            self.cache.assessment_hits,
            self.cache.assessment_misses
        );
        if !self.resilience.is_empty() {
            let line: Vec<String> = self
                .resilience
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect();
            let _ = writeln!(out, "campaign resilience: {}", line.join(" "));
        }
        out
    }

    /// Serializes the record as pretty JSON (the `BENCH_campaign.json`
    /// payload).
    ///
    /// # Panics
    ///
    /// Never: the record contains no non-serializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timing record serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use vdbench_telemetry::span;

    /// The telemetry buffers are process-global; tests that record must
    /// not interleave.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    #[test]
    fn record_renders_and_serializes() {
        let record = CampaignTiming {
            seed: 0xD5_2015,
            threads_requested: 4,
            threads_used: 3,
            stages: vec![
                StageTiming {
                    name: "table1".into(),
                    millis: 1.5,
                },
                StageTiming {
                    name: "fig6".into(),
                    millis: 250.0,
                },
            ],
            total_millis: 251.5,
            cache: CacheCounters {
                case_study_hits: 6,
                case_study_misses: 4,
                assessment_hits: 1,
                assessment_misses: 2,
            },
            resilience: [
                ("fault.injected.crash".to_string(), 3u64),
                ("scan.failed".to_string(), 1u64),
            ]
            .into_iter()
            .collect(),
        };
        let text = record.render();
        assert!(text.contains("table1"));
        assert!(text.contains("6 hit / 4 miss"));
        assert!(
            text.contains("campaign resilience: fault.injected.crash=3 scan.failed=1"),
            "{text}"
        );
        assert!(
            text.contains("4 worker threads requested, 3 used"),
            "{text}"
        );
        let json = record.to_json();
        assert!(json.contains("\"case_study_hits\": 6"));
        assert!(json.contains("\"name\": \"fig6\""));
        assert!(json.contains("\"threads_requested\": 4"));
        // Valid JSON round-trip through the vendored parser.
        let parsed: CampaignTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn derives_stages_in_campaign_order_from_spans() {
        let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
        vdbench_telemetry::reset();
        vdbench_telemetry::enable();
        {
            let _campaign = span!("bench", "campaign");
            // Recorded out of campaign order on purpose.
            for (i, name) in [(1usize, "fig1"), (0usize, "table1")] {
                let _s = span!("bench", "artifact", name = name, index = i);
            }
        }
        let trace = vdbench_telemetry::take_trace();
        vdbench_telemetry::disable();
        let reg = vdbench_telemetry::registry::Registry::new();
        reg.counter("cache.case_study.hits").add(5);
        reg.counter("fault.injected.timeout").add(2);
        reg.counter("scan.retries").add(4);
        reg.counter("scan.failed"); // zero: stays out of the section
        let record = CampaignTiming::from_telemetry(7, &trace, &reg.snapshot());
        let names: Vec<&str> = record.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["table1", "fig1"],
            "index arg restores campaign order"
        );
        assert_eq!(record.cache.case_study_hits, 5);
        assert_eq!(record.cache.assessment_misses, 0);
        assert_eq!(record.resilience.len(), 2, "zero counters elided");
        assert_eq!(record.resilience["fault.injected.timeout"], 2);
        assert_eq!(record.resilience["scan.retries"], 4);
        assert!(record.total_millis >= 0.0);
        assert!(record.threads_requested >= 1);
        assert!(record.threads_used >= 1);
    }

    #[test]
    fn cache_counters_convert_from_core_stats() {
        let stats = vdbench_core::CacheStats {
            case_study_hits: 1,
            case_study_misses: 2,
            assessment_hits: 3,
            assessment_misses: 4,
        };
        let counters: CacheCounters = stats.into();
        assert_eq!(counters.case_study_misses, 2);
        assert_eq!(counters.assessment_misses, 4);
    }
}
