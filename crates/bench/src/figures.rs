//! The four evaluation figures (ASCII rendering + CSV data).

use crate::{experiment_config, EXPERIMENT_SEED};
use std::fmt::Write as _;
use vdbench_core::attributes::discrimination::separation_probability;
use vdbench_core::attributes::prevalence::{sweep, DENSITY_GRID};
use vdbench_core::cache::cached_case_study;
use vdbench_core::ranking::subsample_stability;
use vdbench_core::scenario::standard_scenarios;
use vdbench_core::selection::{default_candidates, MetricSelector};
use vdbench_core::validation::noise_robustness;
use vdbench_metrics::basic::{Accuracy, Npv, Precision, Recall};
use vdbench_metrics::composite::{FMeasure, Informedness, Mcc};
use vdbench_metrics::metric::Metric;
use vdbench_report::{csv, AsciiChart, Series};
use vdbench_stats::SeededRng;

fn figure_metrics() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(Precision),
        Box::new(Recall),
        Box::new(Npv),
        Box::new(Accuracy),
        Box::new(FMeasure::f1()),
        Box::new(Informedness),
        Box::new(Mcc),
    ]
}

/// **Figure 1** — metric value vs workload vulnerability density at a
/// fixed tool (TPR 0.8 / FPR 0.1). Prevalence-invariant metrics trace flat
/// lines; precision, NPV and F1 bend hard.
pub fn fig1() -> String {
    let cfg = experiment_config();
    let series: Vec<Series> = figure_metrics()
        .iter()
        .map(|m| {
            Series::from_points(
                m.abbrev(),
                sweep(m.as_ref(), &cfg)
                    .into_iter()
                    .filter(|(_, v)| v.is_finite())
                    .collect(),
            )
        })
        .collect();
    let chart = AsciiChart::new(64, 18)
        .with_title(format!(
            "Fig. 1: metric value vs vulnerability density (fixed tool TPR 0.8 / FPR 0.1; \
             densities {:?})",
            DENSITY_GRID
        ))
        .with_y_bounds(-1.0, 1.0);
    let mut out = chart.render(&series).expect("non-empty sweep");
    out.push_str("\nCSV (long format):\n");
    out.push_str(&csv::series_long(&series));
    out
}

/// **Figure 2** — discriminative power: probability of correctly ordering
/// two tools five points of recall apart, vs workload size.
pub fn fig2() -> String {
    let sizes: [u64; 7] = [25, 50, 100, 200, 400, 800, 1600];
    let prevalence = 0.2;
    let replicates = 400;
    let series: Vec<Series> = figure_metrics()
        .iter()
        .map(|m| {
            let mut rng = SeededRng::new(EXPERIMENT_SEED ^ 0xF162);
            let pts = sizes
                .iter()
                .map(|&n| {
                    let p = separation_probability(m.as_ref(), n, prevalence, replicates, &mut rng);
                    (n as f64, p)
                })
                .collect();
            Series::from_points(m.abbrev(), pts)
        })
        .collect();
    let chart = AsciiChart::new(64, 18)
        .with_title(
            "Fig. 2: P(correctly ordering two tools, ΔTPR = 0.05) vs workload size \
             (20% prevalence, 400 realizations)",
        )
        .with_y_bounds(0.0, 1.0);
    let mut out = chart.render(&series).expect("non-empty");
    out.push_str("\nCSV (wide format):\n");
    out.push_str(&csv::series_wide(&series));
    out
}

/// **Figure 3** — ranking stability: mean Kendall τ between the
/// full-workload tool ranking and subsampled rankings, vs subsample
/// fraction, per metric (S3 case study).
pub fn fig3() -> String {
    let scenario = standard_scenarios()
        .into_iter()
        .find(|s| s.id == vdbench_core::ScenarioId::S3Procurement)
        .expect("S3 exists");
    let report = cached_case_study(&scenario, EXPERIMENT_SEED).expect("standard roster");
    let fractions = [0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let replicates = 80;
    let series: Vec<Series> = default_candidates()
        .iter()
        .map(|m| {
            let mut rng = SeededRng::new(EXPERIMENT_SEED ^ 0xF163);
            let pts = fractions
                .iter()
                .map(|&f| {
                    let tau =
                        subsample_stability(report.outcomes(), m.as_ref(), f, replicates, &mut rng)
                            .unwrap_or(f64::NAN);
                    (f, tau)
                })
                .collect();
            Series::from_points(m.abbrev(), pts)
        })
        .collect();
    let chart = AsciiChart::new(64, 18)
        .with_title(
            "Fig. 3: tool-ranking stability under workload subsampling (S3 case study, \
             mean Kendall τ to the full-workload ranking, 80 subsamples/point)",
        )
        .with_y_bounds(0.0, 1.0);
    let mut out = chart.render(&series).expect("non-empty");
    out.push_str("\nCSV (wide format):\n");
    out.push_str(&csv::series_wide(&series));
    out
}

/// **Figure 4** — MCDA robustness to expert noise: agreement between the
/// panel's AHP metric ranking and the analytical selection (mean Kendall
/// τ), per scenario, as elicitation noise grows. Winner persistence is
/// also recorded in the CSV.
pub fn fig4() -> String {
    let cfg = experiment_config();
    let selector = MetricSelector::new(default_candidates(), cfg).expect("candidates");
    let noise_grid = [0.0, 0.2, 0.5, 1.0, 1.5, 2.5];
    let panels_per_point = 24;
    let mut series = Vec::new();
    let mut csv_rows = String::from("scenario,noise,top1_persistence,mean_tau\n");
    for scenario in standard_scenarios() {
        let points = noise_robustness(
            &selector,
            &scenario,
            &noise_grid,
            panels_per_point,
            7,
            EXPERIMENT_SEED ^ u64::from(scenario.id.label().as_bytes()[1]),
        )
        .expect("selection");
        // Plot the mean rank agreement: the top-1 winner can be a
        // photo-finish (S1's PPV vs ACC differ by <2% of the score), so
        // whole-ranking τ is the robust signal; both series go to CSV.
        let pts: Vec<(f64, f64)> = points.iter().map(|p| (p.noise, p.mean_tau)).collect();
        for p in &points {
            let _ = writeln!(
                csv_rows,
                "{},{},{},{}",
                scenario.id, p.noise, p.top1_persistence, p.mean_tau
            );
        }
        series.push(Series::from_points(scenario.id.label(), pts));
    }
    let chart = AsciiChart::new(64, 16)
        .with_title(format!(
            "Fig. 4: agreement between MCDA and analytical metric rankings \
             (mean Kendall τ) vs expert noise σ ({panels_per_point} panels/point, \
             7 experts each)"
        ))
        .with_y_bounds(0.0, 1.0);
    let mut out = chart.render(&series).expect("non-empty");
    out.push_str("\nCSV:\n");
    out.push_str(&csv_rows);
    out
}

/// **Figure 5** (extension) — the pentest ROI curve: dynamic-scanner
/// recall vs per-unit request budget, with and without the gate
/// dictionary. Coverage saturates once the guessable gates are exhausted;
/// obscure gates and stored flows bound the single-request ceiling.
pub fn fig5() -> String {
    use vdbench_core::cache::cached_scan;
    use vdbench_corpus::CorpusBuilder;
    use vdbench_detectors::DynamicScanner;

    // A gate-heavy workload makes the budget trade-off visible: most
    // vulnerable flows hide behind input gates, two-thirds of them
    // guessable.
    let corpus = CorpusBuilder::new()
        .units(400)
        .vulnerability_density(0.4)
        .gate_rate(0.6)
        .gate_obscurity(0.33)
        .disguise_rate(0.1)
        .stored_rate(0.05)
        .seed(EXPERIMENT_SEED ^ 0xF165)
        .build();
    let budgets = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let mut with_dict = Series::new("with gate dictionary");
    let mut without_dict = Series::new("sprays only");
    for &budget in &budgets {
        let yes = cached_scan(&DynamicScanner::with_budget(budget, true), &corpus)
            .confusion()
            .tpr();
        let no = cached_scan(&DynamicScanner::with_budget(budget, false), &corpus)
            .confusion()
            .tpr();
        with_dict.push(budget as f64, yes);
        without_dict.push(budget as f64, no);
    }
    let series = vec![with_dict, without_dict];
    let chart = AsciiChart::new(64, 16)
        .with_title(
            "Fig. 5 (extension): dynamic-scanner recall vs request budget \
             (400-case workload, single-request sessions)",
        )
        .with_y_bounds(0.0, 1.0);
    let mut out = chart.render(&series).expect("non-empty");
    out.push_str("\nCSV (wide format):\n");
    out.push_str(&csv::series_wide(&series));
    out.push_str(
        "\nReading guide: sprays alone saturate immediately (everything reachable \
         without a gate\nis reached by the first four requests); the dictionary \
         keeps buying recall until the\nguessable gates are exhausted. The plateau \
         below 1.0 is structural: obscure gates,\nsecond-order flows and \
         pattern-class defects are invisible to any single-request budget.\n",
    );
    out
}

/// **Figure 6** (extension) — corpus-design ablation: the two generator
/// knobs that manufacture tool errors, swept one at a time.
///
/// Left: tool recall vs the disguise rate (wrong/partial sanitizers) —
/// pattern matching collapses, execution and sink-aware dataflow don't.
/// Right: tool false-positive rate vs the dead-guard decoy rate —
/// path-insensitive static analysis pays linearly, dynamic analysis never
/// does. Together they demonstrate that the corpus knobs control exactly
/// the error mechanisms they claim to.
pub fn fig6() -> String {
    use vdbench_core::cache::cached_scan;
    use vdbench_corpus::{CorpusBuilder, VulnClass};
    use vdbench_detectors::{Detector, DynamicScanner, PatternScanner, TaintAnalyzer};
    let tools: Vec<Box<dyn Detector>> = vec![
        Box::new(PatternScanner::aggressive()),
        Box::new(TaintAnalyzer::precise()),
        Box::new(DynamicScanner::thorough()),
    ];
    let rates = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let taint_classes = vec![
        VulnClass::SqlInjection,
        VulnClass::Xss,
        VulnClass::CommandInjection,
        VulnClass::PathTraversal,
    ];

    // Sweep 1: recall vs disguise rate (fully vulnerable workload so TPR
    // is measured on every case).
    let mut recall_series: Vec<Series> = tools.iter().map(|t| Series::new(t.name())).collect();
    for &rate in &rates {
        let corpus = CorpusBuilder::new()
            .units(250)
            .vulnerability_density(1.0)
            .disguise_rate(rate)
            .stored_rate(0.0)
            .gate_rate(0.0)
            .classes(taint_classes.clone())
            .seed(EXPERIMENT_SEED ^ 0xF166)
            .build();
        for (tool, series) in tools.iter().zip(&mut recall_series) {
            let tpr = cached_scan(tool.as_ref(), &corpus).confusion().tpr();
            series.push(rate, tpr);
        }
    }
    let recall_chart = AsciiChart::new(64, 14)
        .with_title(
            "Fig. 6a: tool recall vs disguise rate (wrong/partial sanitizers; \
             250 vulnerable cases)",
        )
        .with_y_bounds(0.0, 1.0)
        .render(&recall_series)
        .expect("non-empty");

    // Sweep 2: FPR vs decoy rate (fully safe workload so FPR is measured
    // on every case).
    let mut fpr_series: Vec<Series> = tools.iter().map(|t| Series::new(t.name())).collect();
    for &rate in &rates {
        let corpus = CorpusBuilder::new()
            .units(250)
            .vulnerability_density(0.0)
            .decoy_rate(rate)
            .stored_rate(0.0)
            .classes(taint_classes.clone())
            .seed(EXPERIMENT_SEED ^ 0xF167)
            .build();
        for (tool, series) in tools.iter().zip(&mut fpr_series) {
            let fpr = cached_scan(tool.as_ref(), &corpus).confusion().fpr();
            series.push(rate, fpr);
        }
    }
    let fpr_chart = AsciiChart::new(64, 14)
        .with_title(
            "Fig. 6b: tool false-positive rate vs dead-guard decoy rate \
             (250 safe cases)",
        )
        .with_y_bounds(0.0, 1.0)
        .render(&fpr_series)
        .expect("non-empty");

    let mut out = recall_chart;
    out.push('\n');
    out.push_str(&fpr_chart);
    out.push_str("\nCSV (recall sweep, wide):\n");
    out.push_str(&csv::series_wide(&recall_series));
    out.push_str("\nCSV (FPR sweep, wide):\n");
    out.push_str(&csv::series_wide(&fpr_series));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_knobs_control_their_mechanisms() {
        let f = fig6();
        let parse_block = |marker: &str| -> Vec<Vec<f64>> {
            let start = f.find(marker).expect("block present");
            f[start..]
                .lines()
                .skip(2) // marker line + header
                .take_while(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
                .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
                .collect()
        };
        let recall = parse_block("CSV (recall sweep");
        assert!(recall.len() >= 5);
        // Columns: rate, pattern-aggr, taint-d3-precise, pentest-96-dict.
        let first = recall.first().unwrap();
        let last = recall.last().unwrap();
        assert!(
            first[1] - last[1] > 0.5,
            "pattern recall must collapse with disguises: {} -> {}",
            first[1],
            last[1]
        );
        assert!(last[2] > 0.99, "sink-aware taint is immune: {}", last[2]);
        assert!(last[3] > 0.9, "execution is immune: {}", last[3]);

        let fpr = parse_block("CSV (FPR sweep");
        let first = fpr.first().unwrap();
        let last = fpr.last().unwrap();
        assert!(first[2] < 0.01, "no decoys, no taint FPs: {}", first[2]);
        assert!(
            last[2] > 0.9,
            "full decoys, path-insensitive FPs everywhere: {}",
            last[2]
        );
        assert!(
            last[3] < 0.01,
            "dynamic analysis never flags dead code: {}",
            last[3]
        );
    }

    #[test]
    fn fig5_budget_curve_is_monotone() {
        let f = fig5();
        let csv_start = f.find("x,").expect("wide CSV");
        let rows: Vec<Vec<f64>> = f[csv_start..]
            .lines()
            .skip(1)
            .take_while(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        assert!(rows.len() >= 6);
        // Recall never decreases with budget, and the dictionary column
        // ends strictly above the spray-only column.
        for w in rows.windows(2) {
            assert!(w[1][1] >= w[0][1] - 1e-12, "dict column not monotone");
            assert!(w[1][2] >= w[0][2] - 1e-12, "spray column not monotone");
        }
        let last = rows.last().unwrap();
        assert!(last[1] > last[2], "dictionary must add recall: {last:?}");
        assert!(last[1] < 1.0, "structural ceiling below 1.0");
    }

    #[test]
    fn figure_metric_set_is_diverse() {
        let metrics = figure_metrics();
        assert!(metrics.len() >= 6);
        let invariant = metrics
            .iter()
            .filter(|m| m.properties().prevalence_invariant)
            .count();
        assert!(invariant >= 2, "need flat lines for contrast");
        assert!(invariant < metrics.len(), "need bending lines too");
    }
}
