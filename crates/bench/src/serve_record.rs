//! The `BENCH_serve.json` record: what one load-generator run measured
//! against a `vdbench serve` instance.
//!
//! Like [`crate::timing`], this is a **derived view**: the load generator
//! measures client-side latency itself (exact percentiles over its own
//! sample vector, not histogram bucket bounds) and reads the server-side
//! tier counters back over `GET /v1/stats`, so the record pairs what the
//! client experienced with what the service actually did.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of the seeding pass: every connection walks the whole request
/// pool once, cold keys get computed and committed, and the deliberate
/// key collisions between connections exercise the single-flight path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SeedPassRecord {
    /// Requests issued.
    pub requests: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Wall-clock seconds of the pass.
    pub duration_secs: f64,
    /// `server.cold_misses` delta over the pass (computations performed).
    pub cold_misses: u64,
    /// `server.coalesced` delta over the pass (herd arrivals that reused
    /// an in-flight computation instead of starting their own).
    pub coalesced: u64,
}

/// The full record of one load-generator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Server address driven.
    pub addr: String,
    /// Pool-shuffling seed (fixed seed ⇒ identical request sequence).
    pub seed: u64,
    /// Concurrent client connections.
    pub connections: u64,
    /// Distinct requests in the pool.
    pub pool_size: u64,
    /// Seeding-pass summary (the cold, deduplicating phase).
    pub seed_pass: SeedPassRecord,
    /// Measured-phase wall-clock seconds.
    pub duration_secs: f64,
    /// Measured-phase requests completed.
    pub requests: u64,
    /// Measured-phase non-200 responses.
    pub errors: u64,
    /// Measured-phase requests per second.
    pub throughput_rps: f64,
    /// Exact client-side median latency, microseconds.
    pub p50_us: u64,
    /// Exact client-side 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// `server.warm_hits` / `server.accepted` deltas over the measured
    /// phase — the fraction of traffic served straight off the blob store.
    pub warm_hit_ratio: f64,
    /// Final `server.*` counters (whole server lifetime, not deltas).
    pub server: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = ServeRecord {
            addr: "127.0.0.1:7071".into(),
            seed: 2015,
            connections: 8,
            pool_size: 68,
            seed_pass: SeedPassRecord {
                requests: 544,
                errors: 0,
                duration_secs: 1.25,
                cold_misses: 68,
                coalesced: 476,
            },
            duration_secs: 3.0,
            requests: 45_000,
            errors: 0,
            throughput_rps: 15_000.0,
            p50_us: 180,
            p99_us: 900,
            warm_hit_ratio: 1.0,
            server: BTreeMap::from([("server.accepted".to_string(), 45_544u64)]),
        };
        let json = serde_json::to_string_pretty(&record).unwrap();
        let back: ServeRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
