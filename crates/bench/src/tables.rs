//! The six evaluation tables.
//!
//! Reconstructed from the paper's three-stage methodology (the full text is
//! unavailable — see DESIGN.md): catalog, attribute assessment, scenario
//! definitions, case-study confusion matrices, metric-induced tool rankings
//! with disagreement, and the MCDA-validated selection.

use crate::{experiment_config, EXPERIMENT_SEED};
use std::fmt::Write as _;
use vdbench_core::attributes::MetricAttribute;
use vdbench_core::cache::{cached_assessment, cached_case_study};
use vdbench_core::campaign::standard_tools;
use vdbench_core::ranking::{rank_by_metric, ranking_disagreement};
use vdbench_core::scenario::{standard_scenarios, Scenario};
use vdbench_core::selection::{default_candidates, MetricSelector};
use vdbench_core::validation::{method_ablation, validate_all_scenarios};
use vdbench_experts::Panel;
use vdbench_metrics::properties::Monotonicity;
use vdbench_metrics::standard_catalog;
use vdbench_report::format;
use vdbench_report::Table;

fn mono(m: Monotonicity) -> &'static str {
    match m {
        Monotonicity::Increasing => "+",
        Monotonicity::Decreasing => "-",
        Monotonicity::Mixed => "±",
        Monotonicity::Independent => "0",
    }
}

/// **Table 1** — the gathered metric catalog with analytical properties.
pub fn table1() -> String {
    let mut table = Table::new(vec![
        "abbrev",
        "name",
        "range",
        "dir",
        "∂TPR",
        "∂FPR",
        "chance-corr",
        "prev-inv",
        "total",
        "both-errors",
        "simplicity",
        "params",
    ])
    .with_title("Table 1: gathered metrics and their analytical properties");
    for m in standard_catalog() {
        let p = m.properties();
        let range = if p.range.max.is_infinite() {
            format!("[{}, ∞)", p.range.min)
        } else {
            format!("[{}, {}]", p.range.min, p.range.max)
        };
        table
            .push_row(vec![
                m.abbrev().to_string(),
                m.name().to_string(),
                range,
                if m.higher_is_better() { "↑" } else { "↓" }.to_string(),
                mono(p.monotone_tpr).to_string(),
                mono(p.monotone_fpr).to_string(),
                yn(p.chance_corrected),
                yn(p.prevalence_invariant),
                yn(p.defined_everywhere),
                yn(p.uses_both_error_types),
                format!("{}/5", p.simplicity),
                yn(p.needs_parameters),
            ])
            .expect("row width");
    }
    table.render_ascii()
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "no" }.to_string()
}

/// **Table 2** — empirical attribute assessment of the full catalog.
pub fn table2() -> String {
    let catalog = standard_catalog();
    let cfg = experiment_config();
    let sheets = cached_assessment(&catalog, &cfg);
    let mut header = vec!["metric".to_string()];
    header.extend(
        MetricAttribute::all()
            .iter()
            .filter(|a| **a != MetricAttribute::CostAlignment)
            .map(|a| a.label().to_string()),
    );
    let mut table = Table::new(header).with_title(
        "Table 2: empirical good-metric attribute scores (0–1, higher is better; \
         cost alignment is scenario-specific and reported in Table 6)",
    );
    for (m, sheet) in catalog.iter().zip(sheets.iter()) {
        let mut row = vec![m.abbrev().to_string()];
        for attr in MetricAttribute::all() {
            if *attr == MetricAttribute::CostAlignment {
                continue;
            }
            row.push(format::metric(sheet.score(*attr)));
        }
        table.push_row(row).expect("row width");
    }
    table.render_ascii()
}

/// **Table 3** — the four usage scenarios.
pub fn table3() -> String {
    let mut table = Table::new(vec![
        "id",
        "name",
        "c(FP)",
        "c(FN)",
        "prevalence",
        "workload",
        "top requirements",
    ])
    .with_title("Table 3: usage scenarios, cost models and requirement profiles");
    for s in standard_scenarios() {
        let mut reqs: Vec<(&MetricAttribute, &f64)> = s.attribute_weights.iter().collect();
        reqs.sort_by(|a, b| b.1.total_cmp(a.1));
        let top: Vec<String> = reqs
            .iter()
            .take(3)
            .map(|(a, w)| format!("{} ({w:.0})", a.label()))
            .collect();
        table
            .push_row(vec![
                s.id.to_string(),
                s.name.to_string(),
                format!("{}", s.fp_cost),
                format!("{}", s.fn_cost),
                format::percent(s.typical_prevalence),
                s.workload_units.to_string(),
                top.join(", "),
            ])
            .expect("row width");
    }
    let mut out = table.render_ascii();
    for s in standard_scenarios() {
        let _ = writeln!(out, "\n{}: {}", s.id, s.description);
    }
    out
}

/// **Table 4** — case-study confusion matrices: every standard tool on
/// every scenario workload.
pub fn table4() -> String {
    let mut out = String::new();
    for scenario in standard_scenarios() {
        let report = cached_case_study(&scenario, EXPERIMENT_SEED).expect("standard roster");
        // Workload stats (case count, prevalence) are corpus properties
        // shared by every outcome — but in a degraded run a failed tool's
        // outcome is empty, so read them from the largest record set
        // instead of blindly trusting tool 0 (guards the 0/0 division).
        let records = report
            .outcomes()
            .iter()
            .map(vdbench_detectors::DetectionOutcome::records)
            .max_by_key(|r| r.len())
            .unwrap_or(&[]);
        let corpus_prev = if records.is_empty() {
            f64::NAN
        } else {
            records.iter().filter(|r| r.vulnerable).count() as f64 / records.len() as f64
        };
        let mut table = Table::new(vec!["tool", "TP", "FP", "FN", "TN", "TPR", "FPR", "PPV"])
            .with_title(format!(
                "Table 4 ({}): tool outcomes on the {} workload ({} cases, {} prevalence)",
                scenario.id,
                scenario.name,
                records.len(),
                format::percent(corpus_prev),
            ));
        for outcome in report.outcomes() {
            let cm = outcome.confusion();
            table
                .push_row(vec![
                    outcome.tool().to_string(),
                    cm.tp.to_string(),
                    cm.fp.to_string(),
                    cm.fn_.to_string(),
                    cm.tn.to_string(),
                    format::metric(cm.tpr()),
                    format::metric(cm.fpr()),
                    format::metric(cm.ppv()),
                ])
                .expect("row width");
        }
        out.push_str(&table.render_ascii());
        out.push('\n');
    }
    out
}

/// **Table 5** — metric values per tool per scenario, the winner under
/// each metric, and the ranking-disagreement matrix.
pub fn table5() -> String {
    let candidates = default_candidates();
    let mut out = String::new();
    for scenario in standard_scenarios() {
        let report = cached_case_study(&scenario, EXPERIMENT_SEED).expect("standard roster");
        out.push_str(
            &report
                .to_table(&format!(
                    "Table 5 ({}): metric values per tool",
                    scenario.id
                ))
                .render_ascii(),
        );
        // Winner per metric.
        let mut winners = Table::new(vec!["metric", "winner"]).with_title(format!(
            "Table 5 ({}): tool ranked first, per metric",
            scenario.id
        ));
        for metric in &candidates {
            let ranking =
                rank_by_metric(report.outcomes(), metric.as_ref()).expect("outcomes non-empty");
            winners
                .push_row(vec![
                    metric.abbrev().to_string(),
                    ranking.winner().to_string(),
                ])
                .expect("row width");
        }
        out.push_str(&winners.render_ascii());
        out.push('\n');
    }

    // Disagreement matrix on the procurement scenario (the cross-workload
    // comparison case).
    let scenario = standard_scenarios()
        .into_iter()
        .find(|s| s.id == vdbench_core::ScenarioId::S3Procurement)
        .expect("S3 exists");
    let report = cached_case_study(&scenario, EXPERIMENT_SEED).expect("standard roster");
    let matrix = ranking_disagreement(report.outcomes(), &candidates).expect("≥2 tools");
    let mut header = vec!["τ".to_string()];
    header.extend(candidates.iter().map(|m| m.abbrev().to_string()));
    let mut table = Table::new(header).with_title(
        "Table 5 (S3): Kendall τ between metric-induced tool rankings \
         (1 = identical ranking, −1 = reversed)",
    );
    for (i, metric) in candidates.iter().enumerate() {
        let mut row = vec![metric.abbrev().to_string()];
        row.extend(matrix[i].iter().map(|v| format::metric(*v)));
        table.push_row(row).expect("row width");
    }
    out.push_str(&table.render_ascii());
    out
}

/// **Table 6** — analytical vs MCDA-validated metric selection per
/// scenario, with the AHP diagnostics and the method ablation.
pub fn table6() -> String {
    let cfg = experiment_config();
    let selector = MetricSelector::new(default_candidates(), cfg).expect("candidates");
    let outcomes = validate_all_scenarios(&selector, 7, 0.25, EXPERIMENT_SEED).expect("selection");

    let names: Vec<String> = selector
        .candidates()
        .iter()
        .map(|m| m.abbrev().to_string())
        .collect();
    let top3 = |ranking: &[usize]| -> String {
        ranking
            .iter()
            .take(3)
            .map(|&i| names[i].clone())
            .collect::<Vec<_>>()
            .join(" > ")
    };

    let mut table = Table::new(vec![
        "scenario",
        "analytical top-3",
        "MCDA top-3",
        "τ",
        "top-1 agree",
        "CR",
    ])
    .with_title(
        "Table 6: analytical metric selection vs MCDA + expert judgment \
         (7-expert panels, elicitation noise 0.25)",
    );
    for o in &outcomes {
        table
            .push_row(vec![
                o.scenario.to_string(),
                top3(&o.analytical_ranking),
                top3(&o.mcda_ranking),
                format::metric(o.agreement_tau),
                yn(o.top1_agree),
                o.consistency_ratio
                    .map(format::metric)
                    .unwrap_or_else(|| "—".into()),
            ])
            .expect("row width");
    }
    let mut out = table.render_ascii();

    // MCDA-method ablation on each scenario.
    let mut ablation_table = Table::new(vec![
        "scenario",
        "AHP winner",
        "SAW winner",
        "TOPSIS winner",
        "τ(AHP,SAW)",
        "τ(AHP,TOPSIS)",
    ])
    .with_title("Table 6 (ablation): the winner is not an artifact of the MCDA method");
    for scenario in standard_scenarios() {
        let panel = Panel::homogeneous(
            &scenario.weight_vector(),
            7,
            0.25,
            EXPERIMENT_SEED ^ 0xAB1A ^ scenario.workload_units as u64,
        );
        let ab = method_ablation(&selector, &scenario, &panel).expect("ablation");
        ablation_table
            .push_row(vec![
                scenario.id.to_string(),
                names[ab.ahp[0]].clone(),
                names[ab.saw[0]].clone(),
                names[ab.topsis[0]].clone(),
                format::metric(ab.tau_ahp_saw),
                format::metric(ab.tau_ahp_topsis),
            ])
            .expect("row width");
    }
    out.push_str(&ablation_table.render_ascii());

    // Weight-sensitivity of each scenario's decision: the smallest
    // relative criteria-weight change that would flip the winner.
    let mut sens_table = Table::new(vec![
        "scenario",
        "winner",
        "runner-up",
        "min relative weight change to flip",
        "most sensitive criterion",
    ])
    .with_title(
        "Table 6 (sensitivity): robustness of each selection — small values \
         are photo-finishes",
    );
    for (scenario, outcome) in standard_scenarios().iter().zip(&outcomes) {
        let ratings = selector.ratings_for(scenario);
        let sens =
            vdbench_mcda::sensitivity::top_pair_sensitivity(&outcome.criteria_weights, &ratings)
                .expect("valid ratings");
        let min = vdbench_mcda::sensitivity::min_relative_flip(&sens);
        let most_sensitive = sens
            .iter()
            .filter(|s| s.relative_flip().is_some())
            .min_by(|a, b| {
                a.relative_flip()
                    .unwrap()
                    .total_cmp(&b.relative_flip().unwrap())
            })
            .map(|s| MetricAttribute::all()[s.criterion].label())
            .unwrap_or("—");
        sens_table
            .push_row(vec![
                outcome.scenario.to_string(),
                names[outcome.mcda_ranking[0]].clone(),
                names[outcome.mcda_ranking[1]].clone(),
                min.map(format::percent).unwrap_or_else(|| "∞".into()),
                most_sensitive.to_string(),
            ])
            .expect("row width");
    }
    out.push_str(&sens_table.render_ascii());
    out
}

/// **Table 7** (extension) — cross-workload ranking consistency: Kendall W
/// of each metric's tool ranking across a density sweep, plus the Friedman
/// test on its scores. Quantifies the S3 requirement directly.
pub fn table7() -> String {
    use vdbench_core::consistency::{cross_workload_consistency, ConsistencyConfig};
    let cfg = ConsistencyConfig {
        seed: EXPERIMENT_SEED,
        ..ConsistencyConfig::default()
    };
    let tools = standard_tools(EXPERIMENT_SEED);
    let metrics = default_candidates();
    let results = cross_workload_consistency(&tools, &metrics, &cfg).expect("standard config");
    let mut table = Table::new(vec![
        "metric",
        "Kendall W",
        "Friedman p",
        "workloads defined",
    ])
    .with_title(format!(
        "Table 7 (extension): tool-ranking consistency across {} workloads \
         (densities {:?}, {} cases each)",
        cfg.densities.len(),
        cfg.densities,
        cfg.units
    ));
    for r in &results {
        table
            .push_row(vec![
                r.metric.to_string(),
                format::metric(r.kendall_w),
                format::metric(r.friedman_p),
                format!("{}/{}", r.defined_workloads, cfg.densities.len()),
            ])
            .expect("row width");
    }
    let mut out = table.render_ascii();
    out.push_str(
        "\nReading guide: W measures whether a metric keeps ranking the *same tool \
         roster* the same\nway as density shifts — a weaker requirement than value \
         invariance (Fig. 1), which is what\nmatters when scores from different \
         workloads are compared directly. A metric can be\nrank-consistent yet \
         value-distorted (PPV here) or value-invariant yet rank-jittery among\nnear-tied \
         tools.\n",
    );
    out
}

/// **Table 8** (extension) — the second-order (stored) injection study:
/// how each tool family handles flows that cross a persistence boundary.
pub fn table8() -> String {
    use vdbench_core::cache::cached_scan;
    use vdbench_corpus::{CorpusBuilder, FlowShape, VulnClass};
    use vdbench_detectors::{Detector, DynamicScanner, PatternScanner, TaintAnalyzer};
    let corpus = CorpusBuilder::new()
        .units(500)
        .vulnerability_density(0.4)
        .stored_rate(0.5)
        .classes(vec![VulnClass::SqlInjection, VulnClass::Xss])
        .seed(EXPERIMENT_SEED ^ 0x5708ED)
        .build();
    let stats = corpus.stats();
    let stored_total = stats.by_shape.get(&FlowShape::Stored).copied().unwrap_or(0);
    let tools: Vec<Box<dyn Detector>> = vec![
        Box::new(PatternScanner::aggressive()),
        Box::new(PatternScanner::conservative()),
        Box::new(TaintAnalyzer::precise()),
        Box::new(TaintAnalyzer::precise().track_store(false)),
        Box::new(TaintAnalyzer::shallow()),
        Box::new(DynamicScanner::thorough()),
        Box::new(DynamicScanner::stateful()),
    ];
    let mut table = Table::new(vec![
        "tool",
        "overall TPR",
        "overall FPR",
        "stored TPR",
        "stored-literal FPR",
    ])
    .with_title(format!(
        "Table 8 (extension): second-order injection case study \
         ({} cases, {} of them stored flows)",
        corpus.site_count(),
        stored_total
    ));
    for tool in &tools {
        let outcome = cached_scan(tool.as_ref(), &corpus);
        let cm = outcome.confusion();
        let stored = outcome.confusion_for_shape(FlowShape::Stored);
        let literal = outcome.confusion_for_shape(FlowShape::StoredLiteral);
        table
            .push_row(vec![
                tool.name(),
                format::metric(cm.tpr()),
                format::metric(cm.fpr()),
                format::metric(stored.tpr()),
                format::metric(literal.fpr()),
            ])
            .expect("row width");
    }
    let mut out = table.render_ascii();
    out.push_str(
        "\nReading guide: single-request dynamic scanning is structurally blind to \
         stored flows\n(write and trigger cannot share a request); the stateful \
         scanner replays a trigger request\nper attack; the taint analyzer needs its \
         heap abstraction; the aggressive pattern scanner\ndistrusts every store read \
         and pays with stored-literal false alarms.\n",
    );
    out
}

/// **Table 9** (extension) — tool specialization by vulnerability class:
/// per-class recall for every tool on a balanced multi-class workload,
/// with the per-class best tool. Shows that "which tool is best" depends
/// not only on the metric and the cost model but on the *class mix* —
/// pattern matching owns the configuration classes, execution owns the
/// disguised injections.
pub fn table9() -> String {
    use vdbench_core::cache::cached_scan;
    use vdbench_corpus::{CorpusBuilder, VulnClass};
    let corpus = CorpusBuilder::new()
        .units(900)
        .vulnerability_density(0.5)
        .seed(EXPERIMENT_SEED ^ 0x7AB9)
        .build();
    let tools = standard_tools(EXPERIMENT_SEED);
    let outcomes: Vec<_> = tools
        .iter()
        .map(|t| cached_scan(t.as_ref(), &corpus))
        .collect();

    let mut header = vec!["class".to_string()];
    header.extend(tools.iter().map(|t| t.name()));
    header.push("best (by class INF)".into());
    let mut table = Table::new(header).with_title(
        "Table 9 (extension): per-class recall on a balanced 900-case workload; the \
         winner column ranks by per-class informedness (recall alone would crown the \
         complete-by-design taint analyzer everywhere, ignoring its false alarms)",
    );
    use vdbench_metrics::composite::Informedness;
    use vdbench_metrics::metric::MetricExt;
    for &class in VulnClass::all() {
        let recalls: Vec<f64> = outcomes
            .iter()
            .map(|o| o.confusion_for_class(class).tpr())
            .collect();
        let informedness: Vec<f64> = outcomes
            .iter()
            .map(|o| Informedness.compute_or_nan(&o.confusion_for_class(class)))
            .collect();
        let best = informedness
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| tools[i].name())
            .unwrap_or_else(|| "—".into());
        let mut row = vec![format!("{class}")];
        row.extend(recalls.iter().map(|v| format::metric(*v)));
        row.push(best);
        table.push_row(row).expect("row width");
    }
    // Footer row: detection is not identification — report each tool's
    // class-diagnosis accuracy over its true positives.
    let mut diag_row = vec!["class diagnosis accuracy".to_string()];
    for outcome in &outcomes {
        diag_row.push(
            outcome
                .diagnosis_accuracy()
                .map(format::metric)
                .unwrap_or_else(|| "—".into()),
        );
    }
    diag_row.push("".into());
    table.push_row(diag_row).expect("row width");
    let mut out = table.render_ascii();
    out.push_str(
        "\nReading guide: the dynamic scanners cannot see the configuration classes \
         (credentials,\nweak hashes) at runtime; the naive taint analyzer has no \
         pattern rules; under class\ninformedness the lead splits between the \
         chance-free dynamic scanner (injection classes)\nand the pattern/taint \
         tools (configuration classes), with the precise taint analyzer's\ndead-guard \
         false alarms costing it the overall crown it would win on recall alone.\n\
         The final row separates *detection* from *identification*: the fraction of \
         each tool's\ntrue positives filed under the correct CWE class.\n",
    );
    out
}

/// Sanity header shared by `run_all`: the tool roster and seed in use.
pub fn preamble() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "vdbench experiment suite — seed {EXPERIMENT_SEED:#x}, tools: {}",
        standard_tools(EXPERIMENT_SEED)
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

/// Re-exports scenario list for binaries needing iteration.
pub fn scenarios() -> Vec<Scenario> {
    standard_scenarios()
}

/// **Availability** — per-scenario resilient-scan outcomes under the
/// ambient fault-injection configuration: status, attempts, recorded
/// backoff and terminal error per tool, plus the campaign-level roll-up.
///
/// `run_all` appends this artifact only when a fault profile is active
/// (`--fault-profile flaky|hostile`), keeping the fault-free transcript
/// byte-identical to the historical sixteen-artifact output.
pub fn availability() -> String {
    let mut out = String::new();
    let mut total = vdbench_metrics::Availability::new();
    for scenario in standard_scenarios() {
        let report = cached_case_study(&scenario, EXPERIMENT_SEED).expect("standard roster");
        total.merge(report.availability_stats());
        out.push_str(
            &report
                .to_availability_table(&format!(
                    "Availability ({}): resilient scan outcomes",
                    scenario.id
                ))
                .render_ascii(),
        );
        out.push('\n');
    }
    let profile = vdbench_core::fault_injection().map_or_else(
        || "none".to_string(),
        |c| format!("{} (fault seed {:#x})", c.profile, c.seed),
    );
    let _ = writeln!(
        out,
        "campaign availability: {total} under fault profile {profile}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The table functions are exercised end-to-end by integration tests at
    // the workspace root; here we keep fast shape checks.

    #[test]
    fn table1_lists_whole_catalog() {
        let t = table1();
        assert!(t.contains("PPV"));
        assert!(t.contains("MCC"));
        assert!(t.contains("NEC-fn"));
        assert!(t.lines().count() > 25);
    }

    #[test]
    fn table3_lists_scenarios() {
        let t = table3();
        for s in ["S1", "S2", "S3", "S4"] {
            assert!(t.contains(s), "{s} missing");
        }
        assert!(t.contains("requirement"));
    }

    #[test]
    fn preamble_names_tools() {
        let p = preamble();
        assert!(p.contains("taint-d3-precise"));
        assert!(p.contains("pentest-96-dict"));
    }
}
