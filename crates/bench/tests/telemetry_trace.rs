//! End-to-end telemetry: one small campaign slice records spans from every
//! instrumented crate, and the trace exports to valid Chrome JSON.
//!
//! This is the acceptance test for the observability subsystem: the trace
//! of a campaign must carry spans from at least the four pipeline layers
//! (`core`, `detectors`, `stats`, `mcda`), and the Chrome `trace_event`
//! export must round-trip through the vendored `serde_json`.

use vdbench_core::scenario::{Scenario, ScenarioId};
use vdbench_mcda::{Ahp, Direction, PairwiseMatrix};
use vdbench_stats::intervals::{wilson, Confidence};
use vdbench_stats::{Bootstrap, SeededRng};
use vdbench_telemetry::export::{chrome_trace_json, RawValue};

#[test]
fn campaign_slice_traces_four_crates_and_exports_chrome_json() {
    vdbench_telemetry::reset();
    vdbench_telemetry::enable();

    // core + detectors: a small standard case study (the benchmark scans
    // the corpus with every roster tool).
    let mut scenario = Scenario::standard(ScenarioId::S1Audit);
    scenario.workload_units = 30;
    let report = vdbench_core::campaign::run_case_study(&scenario, 11).expect("standard roster");
    assert_eq!(report.tool_names().len(), 8);

    // stats: a Wilson interval and a bootstrap resampling run.
    let _ = wilson(8, 10, Confidence::P95).expect("valid counts");
    let data: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
    let mut rng = SeededRng::new(3);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let _ = Bootstrap::new(50)
        .replicate_distribution(&data, mean, &mut rng)
        .expect("non-empty data");

    // mcda: a tiny ratings-mode AHP solve.
    let ahp = Ahp::with_ratings(
        vec!["c1".into(), "c2".into()],
        PairwiseMatrix::identity(2),
        vec!["a".into(), "b".into()],
        vec![vec![0.9, 0.2], vec![0.4, 0.8]],
        vec![Direction::Benefit, Direction::Benefit],
    )
    .expect("well-formed hierarchy");
    let _ = ahp.solve().expect("consistent identity matrix");

    let trace = vdbench_telemetry::take_trace();
    vdbench_telemetry::disable();

    let cats = trace.categories();
    for cat in ["core", "detectors", "stats", "mcda"] {
        assert!(cats.contains(cat), "missing category {cat:?} in {cats:?}");
    }
    assert!(
        trace.complete_spans().len() >= 4,
        "at least one span per instrumented crate"
    );
    // The per-unit detector spans run on the worker pool.
    let unit_scans = trace
        .complete_spans()
        .iter()
        .filter(|s| s.name == "scan_unit")
        .count();
    assert_eq!(
        unit_scans,
        8 * scenario.workload_units,
        "each roster tool scans every unit"
    );

    // The Chrome export round-trips through the vendored serde_json and
    // carries every event.
    let json = chrome_trace_json(&trace);
    let RawValue(doc) = serde_json::from_str(&json).expect("valid Chrome trace JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.len());

    // The bootstrap run landed on the registry histogram as well.
    let metrics = vdbench_telemetry::registry::global().snapshot();
    let hist = metrics
        .histograms
        .get("stats.bootstrap.replicates")
        .expect("bootstrap histogram registered");
    assert!(hist.count >= 1);
    assert!(hist.sum >= 50);
}
