//! Zero-overhead regression guard: with telemetry disabled (the default),
//! a full campaign slice must not record a single span event.
//!
//! This test runs in its own test binary (its own process) so no sibling
//! test can flip the process-global recording switch underneath it.

use vdbench_core::scenario::{Scenario, ScenarioId};

#[test]
fn disabled_telemetry_records_nothing() {
    assert!(
        !vdbench_telemetry::is_enabled(),
        "telemetry must be off by default"
    );

    // Exercise every instrumented layer: case study (core + detectors),
    // intervals and bootstrap (stats), attribute assessment (core again).
    let mut scenario = Scenario::standard(ScenarioId::S1Audit);
    scenario.workload_units = 30;
    let _ = vdbench_core::campaign::run_case_study(&scenario, 5).expect("standard roster");
    let _ = vdbench_stats::intervals::wilson(3, 9, vdbench_stats::Confidence::P95);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let mut rng = vdbench_stats::SeededRng::new(1);
    let _ =
        vdbench_stats::Bootstrap::new(20).replicate_distribution(&[1.0, 2.0, 3.0], mean, &mut rng);

    assert_eq!(
        vdbench_telemetry::events_recorded(),
        0,
        "disabled spans must not record events"
    );
    assert!(vdbench_telemetry::take_trace().is_empty());

    // Registry metrics are always-on by design: the cache counters moved
    // there and must keep counting even with span recording off.
    let metrics = vdbench_telemetry::registry::global().snapshot();
    assert!(
        metrics
            .histograms
            .contains_key("stats.bootstrap.replicates"),
        "always-on registry metrics keep working while spans are off"
    );
}
