//! Integration tests over the experiment outputs: every table and figure
//! regenerates, and the rendered results carry the paper's qualitative
//! conclusions.

use vdbench_bench::{figures, tables};

#[test]
fn table1_catalog_properties() {
    let t = tables::table1();
    // The traditional metrics and the "seldom used" alternatives are all
    // gathered.
    for abbrev in [
        "PPV", "TPR", "ACC", "F1", "INF", "MRK", "MCC", "NEC-fn", "DOR", "κ",
    ] {
        assert!(t.contains(abbrev), "{abbrev} missing from Table 1");
    }
    // Informedness is marked chance-corrected and prevalence-invariant.
    let inf_row = t.lines().find(|l| l.contains("INF")).unwrap();
    assert!(inf_row.matches("yes").count() >= 2, "{inf_row}");
}

#[test]
fn table2_attribute_scores_are_unit_bounded() {
    let t = tables::table2();
    // All numeric cells in [0, 1]: spot-check by parsing every float.
    let mut floats = 0;
    for token in t.split(|c: char| c.is_whitespace() || c == '|') {
        // Only numeric-looking tokens: Rust's f64 parser would happily
        // read the metric label "INF" as infinity.
        if !token.chars().all(|c| c.is_ascii_digit() || c == '.') || token.is_empty() {
            continue;
        }
        if let Ok(v) = token.parse::<f64>() {
            assert!((0.0..=1.0).contains(&v), "score {v} out of range");
            floats += 1;
        }
    }
    assert!(
        floats > 100,
        "expected a dense score table, saw {floats} values"
    );
}

#[test]
fn table4_shows_the_tool_family_profiles() {
    let t = tables::table4();
    // The dynamic scanners never raise a false alarm on any scenario.
    for line in t.lines().filter(|l| l.contains("pentest-")) {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // cells: ["", tool, TP, FP, FN, TN, ...]
        let fp: u64 = cells[3].parse().expect("FP cell");
        assert_eq!(fp, 0, "pentest produced false positives: {line}");
    }
    // The precise taint analyzer misses nothing.
    for line in t.lines().filter(|l| l.contains("taint-d3-precise")) {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        let fn_: u64 = cells[4].parse().expect("FN cell");
        assert_eq!(fn_, 0, "precise taint missed vulnerabilities: {line}");
    }
}

#[test]
fn table5_contains_disagreement_matrix() {
    let t = tables::table5();
    assert!(t.contains("Kendall τ"));
    assert!(t.contains("tool ranked first"));
    // Metric values rendered for every scenario.
    for s in ["S1", "S2", "S3", "S4"] {
        assert!(t.contains(&format!("({s})")), "{s} missing");
    }
}

#[test]
fn table6_reproduces_the_headline_result() {
    let t = tables::table6();
    // S2 selects a cost-based (seldom used) metric, S3 selects
    // informedness — the abstract's conclusion in one table.
    let s2 = t.lines().find(|l| l.starts_with("| S2")).unwrap();
    assert!(
        s2.contains("NEC-fn") || s2.contains("TPR") || s2.contains("F2"),
        "S2 row: {s2}"
    );
    let s3 = t.lines().find(|l| l.starts_with("| S3")).unwrap();
    assert!(s3.contains("INF") || s3.contains("MCC"), "S3 row: {s3}");
    // Consistency ratios are reported and the ablation section exists.
    assert!(t.contains("CR"));
    assert!(t.contains("ablation"));
}

#[test]
fn fig1_shows_invariant_and_bending_metrics() {
    let f = figures::fig1();
    assert!(f.contains("Fig. 1"));
    // CSV section: recall is flat (same value at min and max density),
    // precision is not.
    let csv: Vec<&str> = f.lines().filter(|l| l.starts_with("TPR,")).collect();
    assert!(!csv.is_empty());
    let first: f64 = csv
        .first()
        .unwrap()
        .split(',')
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    let last: f64 = csv
        .last()
        .unwrap()
        .split(',')
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (first - last).abs() < 1e-9,
        "recall must be flat: {first} vs {last}"
    );
    let ppv: Vec<&str> = f.lines().filter(|l| l.starts_with("PPV,")).collect();
    let first: f64 = ppv
        .first()
        .unwrap()
        .split(',')
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    let last: f64 = ppv
        .last()
        .unwrap()
        .split(',')
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    assert!(last - first > 0.3, "precision must bend: {first} → {last}");
}

#[test]
fn fig2_probability_grows_with_workload() {
    let f = figures::fig2();
    // Wide CSV: x,TPR-col...; find the INF column and check monotone-ish
    // growth from the smallest to the largest workload.
    let csv_start = f.find("x,").expect("wide CSV present");
    let csv = &f[csv_start..];
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let inf_col = header.iter().position(|h| *h == "INF").expect("INF series");
    let rows: Vec<Vec<f64>> = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.split(',')
                .map(|c| c.parse().unwrap_or(f64::NAN))
                .collect()
        })
        .collect();
    let first = rows.first().unwrap()[inf_col];
    let last = rows.last().unwrap()[inf_col];
    assert!(
        last > first + 0.1,
        "separation must improve with workload size: {first} → {last}"
    );
    assert!(last > 0.85, "large workloads separate reliably: {last}");
}

#[test]
fn fig4_low_noise_panels_agree() {
    let f = figures::fig4();
    // CSV rows: scenario,noise,persistence,tau — at the lowest noise level
    // every scenario's whole-ranking agreement is high, and the clear-cut
    // scenarios (S2–S4) also reproduce the exact winner.
    let mut checked = 0;
    for line in f
        .lines()
        .filter(|l| l.starts_with('S') && l.contains(",0,"))
    {
        let cells: Vec<&str> = line.split(',').collect();
        if cells[1] != "0" {
            continue;
        }
        let persistence: f64 = cells[2].parse().unwrap();
        let tau: f64 = cells[3].parse().unwrap();
        assert!(tau >= 0.85, "{}: zero-noise τ {tau}", cells[0]);
        if cells[0] != "S1" {
            assert!(
                persistence >= 0.9,
                "{}: zero-noise persistence {persistence}",
                cells[0]
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 4, "expected all four scenarios at σ = 0");
}

#[test]
fn experiments_are_deterministic() {
    assert_eq!(tables::table3(), tables::table3());
    assert_eq!(figures::fig1(), figures::fig1());
}
