//! The metrics registry: named counters, gauges and log₂-bucketed
//! histograms.
//!
//! Handles are `Arc`-shared atomics: looking one up takes the registry
//! mutex once (callers cache the `Arc` in a `OnceLock`), after which every
//! update is a single atomic RMW — always live, independent of the span
//! recording switch. The campaign cache's hit/miss counters live here
//! (`campaign.case_study.hits`, …), which is what lets
//! `run_all --timings` and `BENCH_campaign.json` be derived views over
//! this registry instead of a parallel hand-rolled counter path.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and between-pass isolation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge storing an `f64` (bit-cast into an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at 0.0.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets to 0.0.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i)`, bucket 64 holds
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log₂-bucketed histogram of `u64` samples (durations in
/// nanoseconds, replicate counts, …). Recording is one atomic RMW per
/// sample; the bucket layout never reallocates.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: 0 for 0, otherwise
    /// `⌊log₂ value⌋ + 1`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Half-open value range `[lo, hi)` of a bucket (`hi = None` for the
    /// last bucket, which is closed at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics when `index >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, Option<u64>) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        match index {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            i => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable snapshot (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: buckets.iter().map(|(_, n)| n).sum(),
            sum: self.sum(),
            buckets,
        }
    }

    /// Resets all buckets and the sum.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Serializable snapshot of one histogram: total count, sample sum, and
/// the non-empty `(bucket index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Upper bound of the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the inclusive
    /// top of the first bucket whose cumulative count reaches `⌈q·n⌉`.
    /// With log₂ buckets the bound is within 2× of the true quantile —
    /// good enough for the service latency summary (`server.latency_us`
    /// p50/p99); exact client-side percentiles come from the load
    /// generator's own sample vector. `None` on an empty histogram.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                let (lo, hi) = Histogram::bucket_bounds(index as usize);
                return Some(hi.map_or(u64::MAX, |h| h - 1).max(lo));
            }
        }
        // Unreachable when `count` equals the bucket total, but a
        // hand-built snapshot may disagree; answer with the top bucket.
        self.buckets.last().map(|&(index, _)| {
            Histogram::bucket_bounds(index as usize)
                .1
                .map_or(u64::MAX, |h| h - 1)
        })
    }
}

/// Serializable snapshot of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// All **non-zero** counters whose names start with `prefix`, in name
    /// order — the extraction primitive behind the `BENCH_campaign.json`
    /// resilience section (`fault.injected.*`, `scan.*`).
    #[must_use]
    pub fn counters_with_prefix(&self, prefix: &str) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(name, value)| name.starts_with(prefix) && **value > 0)
            .map(|(name, value)| (name.clone(), *value))
            .collect()
    }
}

/// A named collection of metrics. Use [`global`] for the process-wide
/// instance; fresh registries are only for tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, created at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (names stay registered).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("requests").get(), 5, "same handle by name");
        let g = reg.gauge("threads");
        g.set(7.5);
        assert_eq!(reg.gauge("threads").get(), 7.5);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_bucket_edges() {
        // Bucket 0 is exactly {0}.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i covers [2^(i-1), 2^i): both edges land correctly.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for i in 1..=63usize {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(lo - (lo > 1) as u64),
                i - usize::from(lo > 1),
                "value below bucket {i} lands one bucket down"
            );
            if let Some(hi) = hi {
                assert_eq!(
                    Histogram::bucket_index(hi - 1),
                    i,
                    "inclusive upper edge of bucket {i}"
                );
                assert_eq!(Histogram::bucket_index(hi), i + 1, "exclusive upper edge");
            }
        }
        // The top bucket is closed at u64::MAX.
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, None));
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1029);
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1029);
        // 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 1024 → bucket 11.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (2, 1), (11, 1)]);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().buckets, Vec::new());
    }

    #[test]
    fn histogram_quantile_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), None, "empty");
        // 90 samples in bucket 1 ([1,2)), 10 in bucket 11 ([1024,2048)).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_bound(0.5), Some(1));
        assert_eq!(snap.quantile_upper_bound(0.9), Some(1));
        assert_eq!(snap.quantile_upper_bound(0.99), Some(2047));
        assert_eq!(snap.quantile_upper_bound(1.0), Some(2047));
        assert_eq!(
            snap.quantile_upper_bound(0.0),
            Some(1),
            "q=0 is the min bucket"
        );
    }

    #[test]
    fn prefix_extraction_keeps_nonzero_matching_counters() {
        let reg = Registry::new();
        reg.counter("fault.injected.crash").add(2);
        reg.counter("fault.injected.flip").add(9);
        reg.counter("fault.injected.timeout"); // registered but zero
        reg.counter("scan.failed").add(1);
        let snap = reg.snapshot();
        let faults = snap.counters_with_prefix("fault.");
        assert_eq!(faults.len(), 2, "zero counters are elided");
        assert_eq!(faults["fault.injected.crash"], 2);
        assert_eq!(faults["fault.injected.flip"], 9);
        assert_eq!(snap.counters_with_prefix("scan.")["scan.failed"], 1);
        assert!(snap.counters_with_prefix("nope.").is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("cache.hits").add(3);
        reg.gauge("pool.threads").set(8.0);
        reg.histogram("latency").record(250);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
