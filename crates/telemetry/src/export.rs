//! Trace and metrics exporters: human-readable summary, structured JSON
//! and the Chrome `trace_event` format.
//!
//! The Chrome export emits duration events (`"ph": "B"` / `"ph": "E"`)
//! with microsecond timestamps — one balanced pair per span, on the
//! recording thread's track — wrapped in the object form
//! `{"traceEvents": […], "displayTimeUnit": "ms"}`. Load the file in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the worker
//! schedule as the hardware ran it.

use crate::registry::MetricsSnapshot;
use crate::span::{Phase, Trace};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Wrapper making a raw [`Value`] tree usable with the vendored
/// `serde_json` entry points (which take `Serialize`/`Deserialize`
/// implementors, not `Value` directly).
#[derive(Debug, Clone, PartialEq)]
pub struct RawValue(pub Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for RawValue {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(RawValue(value.clone()))
    }
}

/// The Chrome `trace_event` document for a trace, as a [`Value`] tree.
pub fn chrome_trace_value(trace: &Trace) -> Value {
    let pid = u64::from(std::process::id());
    let events: Vec<Value> = trace
        .events
        .iter()
        .map(|e| {
            let mut fields: Vec<(String, Value)> = vec![
                ("name".into(), Value::Str(e.name.to_string())),
                ("cat".into(), Value::Str(e.cat.to_string())),
                (
                    "ph".into(),
                    Value::Str(match e.phase {
                        Phase::Begin => "B".to_string(),
                        Phase::End => "E".to_string(),
                    }),
                ),
                ("ts".into(), Value::Float(e.ts_nanos as f64 / 1e3)),
                ("pid".into(), Value::UInt(pid)),
                ("tid".into(), Value::UInt(u64::from(e.tid))),
            ];
            if e.phase == Phase::Begin && !e.args.is_empty() {
                fields.push((
                    "args".into(),
                    Value::Object(
                        e.args
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
}

/// Renders a trace as compact Chrome `trace_event` JSON.
///
/// # Panics
///
/// Never: the tree contains no non-serializable values.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    serde_json::to_string(&RawValue(chrome_trace_value(trace))).expect("trace tree serializes")
}

/// Renders the structured JSON report: event count, per-span aggregates
/// and the metrics snapshot.
///
/// # Panics
///
/// Never: the tree contains no non-serializable values.
#[must_use]
pub fn json_report(trace: &Trace, metrics: &MetricsSnapshot) -> String {
    let spans: Vec<Value> = trace
        .summaries()
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("cat".into(), Value::Str(s.cat.to_string())),
                ("name".into(), Value::Str(s.name.to_string())),
                ("count".into(), Value::UInt(s.count)),
                ("total_ms".into(), Value::Float(s.total_nanos as f64 / 1e6)),
                ("max_ms".into(), Value::Float(s.max_nanos as f64 / 1e6)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("events".into(), Value::UInt(trace.len() as u64)),
        (
            "threads".into(),
            Value::UInt(trace.thread_ids().len() as u64),
        ),
        ("spans".into(), Value::Array(spans)),
        ("metrics".into(), metrics.to_value()),
    ]);
    serde_json::to_string_pretty(&RawValue(doc)).expect("report tree serializes")
}

/// Renders the human-readable summary printed to stderr by
/// `run_all --timings`: span aggregates (descending total time), then
/// every registered counter, gauge and histogram.
#[must_use]
pub fn summary(trace: &Trace, metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry: {} span events on {} thread{}",
        trace.len(),
        trace.thread_ids().len(),
        if trace.thread_ids().len() == 1 {
            ""
        } else {
            "s"
        }
    );
    if !trace.is_empty() {
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>12} {:>12}",
            "span", "count", "total ms", "max ms"
        );
        for s in trace.summaries() {
            let _ = writeln!(
                out,
                "  {:<28} {:>7} {:>12.2} {:>12.2}",
                format!("{}/{}", s.cat, s.name),
                s.count,
                s.total_nanos as f64 / 1e6,
                s.max_nanos as f64 / 1e6
            );
        }
    }
    for (name, value) in &metrics.counters {
        let _ = writeln!(out, "  counter {name} = {value}");
    }
    for (name, value) in &metrics.gauges {
        let _ = writeln!(out, "  gauge   {name} = {value}");
    }
    for (name, h) in &metrics.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(i, n)| {
                let (lo, hi) = crate::registry::Histogram::bucket_bounds(*i as usize);
                match hi {
                    Some(hi) => format!("[{lo},{hi}):{n}"),
                    None => format!("[{lo},max]:{n}"),
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "  hist    {name}: n={} sum={} {}",
            h.count,
            h.sum,
            buckets.join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{SpanEvent, Trace};

    fn demo_trace() -> Trace {
        Trace {
            events: vec![
                SpanEvent {
                    phase: Phase::Begin,
                    cat: "core",
                    name: "case_study",
                    ts_nanos: 1_000,
                    tid: 0,
                    args: vec![("scenario".into(), "S1".into())],
                },
                SpanEvent {
                    phase: Phase::End,
                    cat: "core",
                    name: "case_study",
                    ts_nanos: 4_500_000,
                    tid: 0,
                    args: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_shape_and_round_trip() {
        let json = chrome_trace_json(&demo_trace());
        let RawValue(doc) = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph"), Some(&Value::Str("B".into())));
        assert_eq!(events[1].get("ph"), Some(&Value::Str("E".into())));
        assert_eq!(events[0].get("cat"), Some(&Value::Str("core".into())));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("scenario")),
            Some(&Value::Str("S1".into()))
        );
        assert_eq!(events[1].get("args"), None, "end events carry no args");
        assert_eq!(events[0].get("ts"), Some(&Value::Float(1.0)), "ts in µs");
        assert_eq!(doc.get("displayTimeUnit"), Some(&Value::Str("ms".into())));
    }

    #[test]
    fn summary_and_json_report_render() {
        let reg = Registry::new();
        reg.counter("cache.hits").add(2);
        reg.gauge("threads").set(4.0);
        reg.histogram("latency").record(100);
        let trace = demo_trace();
        let text = summary(&trace, &reg.snapshot());
        assert!(text.contains("core/case_study"), "{text}");
        assert!(text.contains("counter cache.hits = 2"), "{text}");
        assert!(text.contains("gauge   threads = 4"), "{text}");
        assert!(text.contains("hist    latency: n=1"), "{text}");
        let report = json_report(&trace, &reg.snapshot());
        let RawValue(doc) = serde_json::from_str(&report).unwrap();
        // The parser reads small integers back as `Int`.
        assert_eq!(doc.get("events"), Some(&Value::Int(2)));
        assert!(doc.get("metrics").is_some());
    }
}
