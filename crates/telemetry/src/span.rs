//! Hierarchical spans recorded into per-thread buffers.
//!
//! Every thread that records gets its own buffer (registered globally on
//! first use), so a span open/close only ever locks the recording
//! thread's *own* mutex — uncontended except while a collector drains.
//! `drain` stitches all buffers, including those of threads that have
//! already exited, into one chronologically merged [`Trace`].
//!
//! Within a thread, spans nest strictly (guards drop in reverse open
//! order), so per-thread event streams are balanced begin/end sequences —
//! the invariant the Chrome `trace_event` exporter and
//! [`Trace::complete_spans`] rely on.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Begin/end marker of a span event (`B`/`E` in the Chrome trace format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One recorded span boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// [`Phase::Begin`] or [`Phase::End`].
    pub phase: Phase,
    /// Category — by convention the short crate name ("core", "stats", …).
    pub cat: &'static str,
    /// Span name within the category.
    pub name: &'static str,
    /// Nanoseconds since the process's telemetry epoch.
    pub ts_nanos: u64,
    /// Telemetry thread ordinal (dense, assigned at first record).
    pub tid: u32,
    /// `Display`-formatted span arguments (begin events only).
    pub args: Vec<(String, String)>,
}

/// One thread's event buffer. The `Arc` is held by both the thread-local
/// slot and the global registry, so events survive thread exit.
struct ThreadBuf {
    tid: u32,
    events: Mutex<Vec<SpanEvent>>,
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// This thread's buffer, registering it globally on first use.
fn local_buf() -> Arc<ThreadBuf> {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(buf) = slot.as_ref() {
            return Arc::clone(buf);
        }
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        buffers()
            .lock()
            .expect("telemetry buffer registry poisoned")
            .push(Arc::clone(&buf));
        *slot = Some(Arc::clone(&buf));
        buf
    })
}

fn record(phase: Phase, cat: &'static str, name: &'static str, args: Vec<(String, String)>) {
    let buf = local_buf();
    let event = SpanEvent {
        phase,
        cat,
        name,
        ts_nanos: crate::now_nanos(),
        tid: buf.tid,
        args,
    };
    buf.events
        .lock()
        .expect("telemetry thread buffer poisoned")
        .push(event);
    crate::note_event();
}

/// RAII guard for one span: records the begin event on construction (when
/// recording is enabled) and the end event on drop.
///
/// Deliberately `!Send`: begin and end must land in the same thread
/// buffer for per-thread streams to stay balanced.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<(&'static str, &'static str)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span (prefer the [`crate::span!`] macro). `make_args` is
    /// only invoked — and only allocates — when recording is enabled;
    /// otherwise the call costs one relaxed atomic load.
    #[inline]
    pub fn open(
        cat: &'static str,
        name: &'static str,
        make_args: impl FnOnce() -> Vec<(String, String)>,
    ) -> SpanGuard {
        if !crate::is_enabled() {
            return SpanGuard {
                open: None,
                _not_send: PhantomData,
            };
        }
        record(Phase::Begin, cat, name, make_args());
        SpanGuard {
            open: Some((cat, name)),
            _not_send: PhantomData,
        }
    }

    /// Whether this guard recorded a begin event (recording was enabled).
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cat, name)) = self.open.take() {
            // Recorded even if telemetry was disabled mid-span: balance
            // beats completeness for the per-thread stream invariant.
            record(Phase::End, cat, name, Vec::new());
        }
    }
}

/// A closed span reconstructed from a balanced begin/end pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CompleteSpan {
    /// Category (short crate name).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Recording thread's telemetry ordinal.
    pub tid: u32,
    /// Begin-event arguments.
    pub args: Vec<(String, String)>,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
}

impl CompleteSpan {
    /// Duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.dur_nanos as f64 / 1e6
    }

    /// The value of one begin-event argument, if present.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Aggregate statistics of all completed spans sharing a `(cat, name)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Category (short crate name).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// The process-wide trace: every thread's events, merged chronologically
/// (per-thread order preserved — timestamps are monotonic within a thread
/// and the merge sort is stable).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Merged span events.
    pub events: Vec<SpanEvent>,
}

impl Trace {
    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The distinct categories present — instrumented crates show up here.
    pub fn categories(&self) -> BTreeSet<&'static str> {
        self.events.iter().map(|e| e.cat).collect()
    }

    /// The distinct telemetry thread ordinals present.
    pub fn thread_ids(&self) -> BTreeSet<u32> {
        self.events.iter().map(|e| e.tid).collect()
    }

    /// Reconstructs completed spans by matching begin/end pairs on a
    /// per-thread stack (spans nest within a thread). Unbalanced events —
    /// an end without a begin, a begin never closed, or a mismatched name
    /// from a guard dropped on a foreign thread — are skipped. The result
    /// is sorted by start time, then thread.
    pub fn complete_spans(&self) -> Vec<CompleteSpan> {
        let mut stacks: BTreeMap<u32, Vec<&SpanEvent>> = BTreeMap::new();
        let mut out = Vec::new();
        for event in &self.events {
            match event.phase {
                Phase::Begin => stacks.entry(event.tid).or_default().push(event),
                Phase::End => {
                    let Some(begin) = stacks.entry(event.tid).or_default().pop() else {
                        continue; // end without begin: dropped
                    };
                    if begin.name != event.name || begin.cat != event.cat {
                        continue; // malformed pair: dropped
                    }
                    out.push(CompleteSpan {
                        cat: begin.cat,
                        name: begin.name,
                        tid: begin.tid,
                        args: begin.args.clone(),
                        start_nanos: begin.ts_nanos,
                        dur_nanos: event.ts_nanos.saturating_sub(begin.ts_nanos),
                    });
                }
            }
        }
        out.sort_by_key(|s| (s.start_nanos, s.tid));
        out
    }

    /// Per-`(cat, name)` aggregates over [`Trace::complete_spans`],
    /// sorted by descending total duration.
    pub fn summaries(&self) -> Vec<SpanSummary> {
        let mut agg: BTreeMap<(&'static str, &'static str), SpanSummary> = BTreeMap::new();
        for span in self.complete_spans() {
            let entry = agg.entry((span.cat, span.name)).or_insert(SpanSummary {
                cat: span.cat,
                name: span.name,
                count: 0,
                total_nanos: 0,
                max_nanos: 0,
            });
            entry.count += 1;
            entry.total_nanos += span.dur_nanos;
            entry.max_nanos = entry.max_nanos.max(span.dur_nanos);
        }
        let mut out: Vec<SpanSummary> = agg.into_values().collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_nanos));
        out
    }
}

/// Drains all thread buffers into one merged [`Trace`] (see
/// [`crate::take_trace`]).
pub(crate) fn drain() -> Trace {
    let mut events = Vec::new();
    {
        let bufs = buffers()
            .lock()
            .expect("telemetry buffer registry poisoned");
        for buf in bufs.iter() {
            events.append(&mut buf.events.lock().expect("telemetry thread buffer poisoned"));
        }
    }
    // Stable: preserves per-thread order under equal timestamps.
    events.sort_by_key(|e| e.ts_nanos);
    Trace { events }
}
