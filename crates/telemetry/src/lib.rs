//! Structured observability for the vdbench pipeline.
//!
//! The campaign engine is a deep pipeline — corpus generation, per-unit
//! detector scans, metric evaluation, Monte-Carlo attribute assessment and
//! MCDA ranking, fanned out across a worker pool — whose per-stage cost and
//! parallel schedule are invisible from artifact-level wall clocks alone.
//! This crate is the workspace's telemetry layer:
//!
//! * **Hierarchical spans** ([`span!`], [`span::SpanGuard`]): scoped
//!   begin/end events recorded lock-cheaply into per-thread buffers and
//!   stitched into a process-wide [`span::Trace`] on demand.
//! * **Metrics registry** ([`registry`]): named counters, gauges and
//!   histograms with fixed log₂ bucketing. The campaign cache's hit/miss
//!   counters live here, so `run_all --timings` and `BENCH_campaign.json`
//!   are *derived views* over the registry rather than a parallel
//!   hand-rolled instrumentation path.
//! * **Exporters** ([`export`]): a human-readable stderr summary, a
//!   structured JSON report, and the Chrome `trace_event` format
//!   (`run_all --trace-out trace.json`, loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)) showing the worker schedule.
//!
//! # Overhead contract
//!
//! Recording is **disabled by default**. A disabled [`span!`] costs one
//! relaxed atomic load and allocates nothing — argument formatting is
//! deferred behind the enabled check — so instrumented hot paths keep
//! their determinism and parallel speedups untouched. The process-wide
//! [`events_recorded`] counter backs the zero-overhead regression guard:
//! a run that never enables telemetry must finish with the counter at 0.
//! Registry counters/gauges/histograms are plain atomics and are always
//! live (they cost an atomic RMW, never an allocation).
//!
//! ```
//! vdbench_telemetry::enable();
//! {
//!     let _outer = vdbench_telemetry::span!("demo", "outer", items = 3);
//!     let _inner = vdbench_telemetry::span!("demo", "inner");
//! } // guards close in reverse order: spans nest
//! let trace = vdbench_telemetry::take_trace();
//! vdbench_telemetry::disable();
//! assert_eq!(trace.events.len(), 4); // 2 begins + 2 ends
//! assert_eq!(trace.complete_spans().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod span;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide recording switch (see the crate-level overhead contract).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Total span events ever recorded (begins + ends), across all threads.
/// Monotonic except for [`reset`]; backs the zero-overhead guard.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Turns span recording on. Cheap and idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off. Guards already open still record their end
/// event so per-thread traces stay balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether span recording is currently on — the one atomic load a
/// disabled [`span!`] pays.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of span events recorded so far (process-wide). A run that never
/// called [`enable`] reports 0 — the zero-overhead regression guard.
pub fn events_recorded() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

pub(crate) fn note_event() {
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Drains every thread's span buffer into one chronologically merged
/// [`span::Trace`]. Buffers of threads that have already exited are
/// included; subsequent calls only see events recorded after this one.
pub fn take_trace() -> span::Trace {
    span::drain()
}

/// Drops all buffered span events and zeroes [`events_recorded`]. The
/// metrics registry is *not* touched (use
/// [`registry::Registry::reset`] for that).
pub fn reset() {
    let _ = span::drain();
    EVENTS.store(0, Ordering::Relaxed);
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable (non-Linux
/// platforms). The kernel's high-water mark is monotonic over the process
/// lifetime, so memory curves sampled at increasing workload sizes are
/// directly comparable — the scale bench relies on this.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Parses the `VmHWM:` line out of a `/proc/<pid>/status` document.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The fixed instant all span timestamps are measured from (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's telemetry epoch.
pub(crate) fn now_nanos() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Opens a hierarchical span: `span!(category, name)` or
/// `span!(category, name, key = value, …)`.
///
/// `category` and `name` must be string literals (or `&'static str`
/// expressions); by convention the category is the short crate name
/// (`"core"`, `"detectors"`, `"stats"`, `"mcda"`, `"bench"`). Arguments
/// are `Display`-formatted **only when recording is enabled** and attach
/// to the begin event (they surface in the Chrome trace's `args` pane).
///
/// The macro evaluates to a [`span::SpanGuard`]; the span closes when the
/// guard drops. Bind it (`let _span = span!(…)`) — a bare `span!(…);`
/// statement would close immediately. Guards must be dropped on the
/// thread that opened them (they are deliberately not `Send`).
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr $(,)?) => {
        $crate::span::SpanGuard::open($cat, $name, ::std::vec::Vec::new)
    };
    ($cat:expr, $name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span::SpanGuard::open($cat, $name, || {
            ::std::vec![$((
                ::std::string::String::from(stringify!($key)),
                ::std::format!("{}", $val),
            )),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn vm_hwm_parses_the_kernel_format() {
        let doc =
            "Name:\tvdbench\nVmPeak:\t  123456 kB\nVmHWM:\t   98765 kB\nVmRSS:\t   90000 kB\n";
        assert_eq!(parse_vm_hwm_kb(doc), Some(98765));
        assert_eq!(parse_vm_hwm_kb("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_available_on_linux() {
        let kb = peak_rss_kb().expect("procfs available");
        assert!(kb > 0);
    }
}
