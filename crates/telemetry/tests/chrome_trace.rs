//! Property test: any interleaving of span opens/closes — across any
//! number of worker threads — serializes to valid Chrome `trace_event`
//! JSON whose per-thread event streams are balanced B/E pairs.
//!
//! Scripts are arbitrary byte strings interpreted as open/close walks
//! (closes below depth zero are ignored, leftovers close at scope exit),
//! so every generated input is realizable with real [`SpanGuard`]s; the
//! guards themselves enforce the LIFO discipline the format requires.

use proptest::prelude::*;
use std::sync::Mutex;
use vdbench_telemetry::export::{chrome_trace_json, RawValue};
use vdbench_telemetry::span::SpanGuard;

static EXCLUSIVE: Mutex<()> = Mutex::new(());

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Interprets a byte script on the current thread: even bytes open a span
/// (name chosen by the byte), odd bytes close the innermost open span.
/// Any leftover guards close in LIFO order on return.
fn run_script(script: &[u8]) {
    let mut guards: Vec<SpanGuard> = Vec::new();
    for &b in script {
        if b % 2 == 0 {
            let name = NAMES[(b as usize / 2) % NAMES.len()];
            guards.push(SpanGuard::open("prop", name, Vec::new));
        } else {
            drop(guards.pop());
        }
    }
    while let Some(guard) = guards.pop() {
        drop(guard);
    }
}

/// Validates a parsed Chrome trace document: required fields on every
/// event, and per-tid streams that are stack-balanced B/E pairs with
/// matching names.
fn assert_valid_chrome_doc(doc: &serde::Value, expected_events: usize) {
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), expected_events);
    assert_eq!(
        doc.get("displayTimeUnit"),
        Some(&serde::Value::Str("ms".into()))
    );
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    for event in events {
        let name = match event.get("name") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("event name must be a string, got {other:?}"),
        };
        assert_eq!(
            event.get("cat"),
            Some(&serde::Value::Str("prop".into())),
            "category survives export"
        );
        let tid = match event.get("tid") {
            Some(serde::Value::Int(i)) => *i,
            Some(serde::Value::UInt(u)) => *u as i64,
            other => panic!("tid must be an integer, got {other:?}"),
        };
        let ts = match event.get("ts") {
            Some(serde::Value::Float(f)) => *f,
            Some(serde::Value::Int(i)) => *i as f64,
            Some(serde::Value::UInt(u)) => *u as f64,
            other => panic!("ts must be a number, got {other:?}"),
        };
        assert!(ts >= 0.0, "timestamps are epoch-relative");
        let prev = last_ts.entry(tid).or_insert(0.0);
        assert!(ts >= *prev, "per-thread timestamps are monotonic");
        *prev = ts;
        assert!(event.get("pid").is_some(), "pid present");
        let stack = stacks.entry(tid).or_default();
        match event.get("ph") {
            Some(serde::Value::Str(ph)) if ph == "B" => stack.push(name),
            Some(serde::Value::Str(ph)) if ph == "E" => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E event for {name:?} on tid {tid} without a matching B")
                });
                assert_eq!(open, name, "B/E pair names match (LIFO)");
            }
            other => panic!("ph must be \"B\" or \"E\", got {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
}

proptest! {
    #[test]
    fn any_interleaving_exports_balanced_chrome_json(
        scripts in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..40),
            1..5,
        )
    ) {
        let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
        vdbench_telemetry::reset();
        vdbench_telemetry::enable();
        // One scoped worker per script: the threads interleave freely.
        std::thread::scope(|scope| {
            for script in &scripts {
                scope.spawn(move || run_script(script));
            }
        });
        let trace = vdbench_telemetry::take_trace();
        vdbench_telemetry::disable();

        // Every recorded event is a begin or an end of a completed span.
        let completed = trace.complete_spans().len();
        prop_assert_eq!(trace.len(), 2 * completed, "balanced in memory");

        let json = chrome_trace_json(&trace);
        let RawValue(doc) = serde_json::from_str(&json)
            .expect("chrome trace round-trips through serde_json");
        assert_valid_chrome_doc(&doc, trace.len());
    }
}
