//! Span nesting and cross-thread stitching.
//!
//! These tests flip the process-global recording switch, so they
//! serialize on one lock and reset the buffers before each scenario.

use std::sync::Mutex;
use vdbench_telemetry::span::{Phase, Trace};
use vdbench_telemetry::{span, take_trace};

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Runs `f` with recording enabled on clean buffers, returning the trace
/// it produced.
fn traced(f: impl FnOnce()) -> Trace {
    let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
    vdbench_telemetry::reset();
    vdbench_telemetry::enable();
    f();
    let trace = take_trace();
    vdbench_telemetry::disable();
    trace
}

#[test]
fn spans_nest_within_a_thread() {
    let trace = traced(|| {
        let _outer = span!("test", "outer", label = "root");
        {
            let _inner = span!("test", "inner");
        }
        let _sibling = span!("test", "sibling");
    });
    assert_eq!(trace.len(), 6, "three begin/end pairs");
    let spans = trace.complete_spans();
    assert_eq!(spans.len(), 3);
    let outer = spans.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(outer.arg("label"), Some("root"));
    // Sorted by start time: nothing starts before the outer span.
    assert!(spans.iter().all(|s| s.start_nanos >= outer.start_nanos));
    let inner = spans.iter().find(|s| s.name == "inner").unwrap();
    // The inner span is contained in the outer one.
    assert!(inner.start_nanos >= outer.start_nanos);
    assert!(
        inner.start_nanos + inner.dur_nanos <= outer.start_nanos + outer.dur_nanos,
        "inner must close before outer"
    );
    // All on one thread.
    assert_eq!(trace.thread_ids().len(), 1);
    assert_eq!(trace.categories().into_iter().collect::<Vec<_>>(), ["test"]);
}

#[test]
fn disabled_spans_record_nothing() {
    let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
    vdbench_telemetry::reset();
    assert!(!vdbench_telemetry::is_enabled());
    // Argument expressions must not even be evaluated when recording is
    // off.
    fn boom() -> String {
        unreachable!("disabled span must not format its args")
    }
    {
        let s = span!("test", "ghost", expensive = boom());
        assert!(!s.is_recording());
    }
    assert_eq!(vdbench_telemetry::events_recorded(), 0);
    assert!(take_trace().is_empty());
}

#[test]
fn threads_stitch_into_one_trace() {
    const WORKERS: usize = 4;
    let trace = traced(|| {
        let _campaign = span!("test", "campaign");
        std::thread::scope(|scope| {
            for worker in 0..WORKERS {
                scope.spawn(move || {
                    let _outer = span!("test", "worker", index = worker);
                    let _inner = span!("test", "unit");
                });
            }
        });
    });
    // 1 campaign + WORKERS × (worker + unit) spans, all balanced even
    // though the worker threads exited before the trace was taken.
    let spans = trace.complete_spans();
    assert_eq!(spans.len(), 1 + 2 * WORKERS);
    assert_eq!(trace.len(), 2 * spans.len());
    assert!(
        trace.thread_ids().len() >= WORKERS,
        "each worker records on its own track: {:?}",
        trace.thread_ids()
    );
    // Every worker span carries its index argument and contains one unit.
    let worker_spans: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
    assert_eq!(worker_spans.len(), WORKERS);
    let mut indices: Vec<String> = worker_spans
        .iter()
        .map(|s| s.arg("index").expect("index arg").to_string())
        .collect();
    indices.sort();
    assert_eq!(indices, ["0", "1", "2", "3"]);
    for w in worker_spans {
        let unit = spans
            .iter()
            .find(|s| s.name == "unit" && s.tid == w.tid)
            .expect("each worker ran one unit");
        assert!(unit.start_nanos >= w.start_nanos);
    }
    // The summary aggregates by (cat, name).
    let summaries = trace.summaries();
    let unit_summary = summaries.iter().find(|s| s.name == "unit").unwrap();
    assert_eq!(unit_summary.count, WORKERS as u64);
    assert!(unit_summary.max_nanos <= unit_summary.total_nanos);
}

#[test]
fn take_trace_drains() {
    let first = traced(|| {
        let _s = span!("test", "once");
    });
    assert_eq!(first.complete_spans().len(), 1);
    // A second take without new activity sees nothing.
    let _guard = EXCLUSIVE.lock().expect("telemetry test lock poisoned");
    assert!(take_trace().is_empty());
}

#[test]
fn begin_and_end_phases_alternate_per_thread() {
    let trace = traced(|| {
        let _a = span!("test", "a");
        let _b = span!("test", "b");
    });
    let phases: Vec<Phase> = trace.events.iter().map(|e| e.phase).collect();
    assert_eq!(
        phases,
        [Phase::Begin, Phase::Begin, Phase::End, Phase::End],
        "guards close in reverse open order"
    );
    let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
    assert_eq!(names, ["a", "b", "b", "a"]);
}
