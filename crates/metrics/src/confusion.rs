//! The binary confusion matrix.
//!
//! Vulnerability detection over a workload of code units with known ground
//! truth reduces every tool run to four counts: true positives (reported and
//! vulnerable), false positives (reported but not vulnerable), false
//! negatives (missed vulnerabilities) and true negatives. All metrics in the
//! catalog are functions of this table.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// A 2×2 contingency table of detection outcomes.
///
/// ```
/// use vdbench_metrics::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::new(80, 20, 10, 890);
/// assert_eq!(cm.total(), 1000);
/// assert!((cm.prevalence() - 0.09).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Vulnerable units correctly reported.
    pub tp: u64,
    /// Clean units incorrectly reported.
    pub fp: u64,
    /// Vulnerable units missed.
    pub fn_: u64,
    /// Clean units correctly passed.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Creates a matrix from raw counts in `(tp, fp, fn, tn)` order.
    pub fn new(tp: u64, fp: u64, fn_: u64, tn: u64) -> Self {
        ConfusionMatrix { tp, fp, fn_, tn }
    }

    /// The empty matrix (all counts zero).
    pub fn empty() -> Self {
        ConfusionMatrix::default()
    }

    /// Accumulates one labelled outcome.
    ///
    /// `reported` is the tool's verdict, `vulnerable` the ground truth.
    pub fn record(&mut self, reported: bool, vulnerable: bool) {
        match (reported, vulnerable) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a matrix from paired (reported, vulnerable) outcomes.
    pub fn from_outcomes<I>(outcomes: I) -> Self
    where
        I: IntoIterator<Item = (bool, bool)>,
    {
        let mut cm = ConfusionMatrix::empty();
        for (reported, vulnerable) in outcomes {
            cm.record(reported, vulnerable);
        }
        cm
    }

    /// Total number of units.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Actually vulnerable units (`TP + FN`).
    pub fn actual_positive(&self) -> u64 {
        self.tp + self.fn_
    }

    /// Actually clean units (`FP + TN`).
    pub fn actual_negative(&self) -> u64 {
        self.fp + self.tn
    }

    /// Units the tool reported (`TP + FP`).
    pub fn predicted_positive(&self) -> u64 {
        self.tp + self.fp
    }

    /// Units the tool passed (`FN + TN`).
    pub fn predicted_negative(&self) -> u64 {
        self.fn_ + self.tn
    }

    /// Fraction of vulnerable units in the workload (`P / (P + N)`);
    /// `NaN` when empty.
    pub fn prevalence(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            f64::NAN
        } else {
            self.actual_positive() as f64 / total as f64
        }
    }

    /// True-positive rate (recall, sensitivity); `NaN` with no positives.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.actual_positive())
    }

    /// False-positive rate (fallout); `NaN` with no negatives.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.actual_negative())
    }

    /// True-negative rate (specificity); `NaN` with no negatives.
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.actual_negative())
    }

    /// False-negative rate (miss rate); `NaN` with no positives.
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.actual_positive())
    }

    /// Positive predictive value (precision); `NaN` with no predictions.
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.predicted_positive())
    }

    /// Negative predictive value; `NaN` with no negative predictions.
    pub fn npv(&self) -> f64 {
        ratio(self.tn, self.predicted_negative())
    }

    /// Synthesizes a matrix from an operating point and a workload shape.
    ///
    /// `positives` vulnerable and `negatives` clean units are split
    /// according to `tpr`/`fpr` with round-to-nearest; the prevalence-sweep
    /// analyses use this to hold tool behaviour fixed while the workload mix
    /// varies.
    ///
    /// # Panics
    ///
    /// Panics if `tpr` or `fpr` lies outside `[0, 1]`.
    pub fn from_rates(tpr: f64, fpr: f64, positives: u64, negatives: u64) -> Self {
        assert!((0.0..=1.0).contains(&tpr), "tpr must be in [0,1]");
        assert!((0.0..=1.0).contains(&fpr), "fpr must be in [0,1]");
        let tp = (tpr * positives as f64).round() as u64;
        let fp = (fpr * negatives as f64).round() as u64;
        ConfusionMatrix {
            tp: tp.min(positives),
            fp: fp.min(negatives),
            fn_: positives - tp.min(positives),
            tn: negatives - fp.min(negatives),
        }
    }

    /// Exact fractional outcome proportions `(tp, fp, fn, tn)` — useful for
    /// expressing metrics over expected (non-integral) outcome masses.
    pub fn proportions(&self) -> [f64; 4] {
        let t = self.total() as f64;
        if t == 0.0 {
            return [f64::NAN; 4];
        }
        [
            self.tp as f64 / t,
            self.fp as f64 / t,
            self.fn_ as f64 / t,
            self.tn as f64 / t,
        ]
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

impl Add for ConfusionMatrix {
    type Output = ConfusionMatrix;

    /// Pools two matrices (micro-averaging across workload partitions).
    fn add(self, rhs: ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            tp: self.tp + rhs.tp,
            fp: self.fp + rhs.fp,
            fn_: self.fn_ + rhs.fn_,
            tn: self.tn + rhs.tn,
        }
    }
}

impl std::iter::Sum for ConfusionMatrix {
    fn sum<I: Iterator<Item = ConfusionMatrix>>(iter: I) -> Self {
        iter.fold(ConfusionMatrix::empty(), Add::add)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} FP={} FN={} TN={}",
            self.tp, self.fp, self.fn_, self.tn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_margins() {
        let cm = ConfusionMatrix::new(5, 3, 2, 10);
        assert_eq!(cm.total(), 20);
        assert_eq!(cm.actual_positive(), 7);
        assert_eq!(cm.actual_negative(), 13);
        assert_eq!(cm.predicted_positive(), 8);
        assert_eq!(cm.predicted_negative(), 12);
    }

    #[test]
    fn rates() {
        let cm = ConfusionMatrix::new(8, 2, 2, 8);
        assert!((cm.tpr() - 0.8).abs() < 1e-12);
        assert!((cm.fpr() - 0.2).abs() < 1e-12);
        assert!((cm.tnr() - 0.8).abs() < 1e-12);
        assert!((cm.fnr() - 0.2).abs() < 1e-12);
        assert!((cm.ppv() - 0.8).abs() < 1e-12);
        assert!((cm.npv() - 0.8).abs() < 1e-12);
        assert!((cm.prevalence() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rates_are_nan() {
        let empty = ConfusionMatrix::empty();
        assert!(empty.prevalence().is_nan());
        assert!(empty.tpr().is_nan());
        let no_pos = ConfusionMatrix::new(0, 3, 0, 7);
        assert!(no_pos.tpr().is_nan());
        assert!(no_pos.fnr().is_nan());
        assert!(!no_pos.fpr().is_nan());
        let no_pred = ConfusionMatrix::new(0, 0, 4, 6);
        assert!(no_pred.ppv().is_nan());
    }

    #[test]
    fn record_and_from_outcomes() {
        let outcomes = [(true, true), (true, false), (false, true), (false, false)];
        let cm = ConfusionMatrix::from_outcomes(outcomes);
        assert_eq!(cm, ConfusionMatrix::new(1, 1, 1, 1));
    }

    #[test]
    fn pooling() {
        let a = ConfusionMatrix::new(1, 2, 3, 4);
        let b = ConfusionMatrix::new(10, 20, 30, 40);
        assert_eq!(a + b, ConfusionMatrix::new(11, 22, 33, 44));
        let pooled: ConfusionMatrix = [a, b].into_iter().sum();
        assert_eq!(pooled, ConfusionMatrix::new(11, 22, 33, 44));
    }

    #[test]
    fn from_rates_round_trip() {
        let cm = ConfusionMatrix::from_rates(0.8, 0.1, 100, 900);
        assert_eq!(cm.tp, 80);
        assert_eq!(cm.fn_, 20);
        assert_eq!(cm.fp, 90);
        assert_eq!(cm.tn, 810);
        assert!((cm.tpr() - 0.8).abs() < 1e-12);
        assert!((cm.fpr() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_rates_extremes() {
        let cm = ConfusionMatrix::from_rates(1.0, 0.0, 10, 90);
        assert_eq!(cm, ConfusionMatrix::new(10, 0, 0, 90));
        let cm = ConfusionMatrix::from_rates(0.0, 1.0, 10, 90);
        assert_eq!(cm, ConfusionMatrix::new(0, 90, 10, 0));
    }

    #[test]
    #[should_panic(expected = "tpr must be in")]
    fn from_rates_validates() {
        let _ = ConfusionMatrix::from_rates(1.2, 0.0, 1, 1);
    }

    #[test]
    fn proportions_sum_to_one() {
        let cm = ConfusionMatrix::new(5, 3, 2, 10);
        let p = cm.proportions();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(ConfusionMatrix::empty().proportions()[0].is_nan());
    }

    #[test]
    fn display_format() {
        let cm = ConfusionMatrix::new(1, 2, 3, 4);
        assert_eq!(cm.to_string(), "TP=1 FP=2 FN=3 TN=4");
    }
}
