//! Cost-model metrics.
//!
//! Several use scenarios weight the two error types very differently: a
//! missed vulnerability in a business-critical service costs orders of
//! magnitude more than an analyst-hour wasted on a false alarm, while a
//! CI gate that cries wolf gets disabled. Expected-cost metrics make that
//! trade-off explicit — they are among the "seldom used" alternatives the
//! paper finds necessary for such scenarios.

use crate::catalog::MetricId;
use crate::confusion::ConfusionMatrix;
use crate::metric::{require_nonempty, Metric, MetricError};
use crate::properties::{MetricProperties, Monotonicity, ValueRange};

/// Normalized expected cost per unit:
/// `(c_fp · FP + c_fn · FN) / (max(c_fp, c_fn) · total)`.
///
/// The normalization keeps the metric in `[0, 1]` so it can be compared and
/// tabulated alongside rate metrics; lower is better.
///
/// ```
/// use vdbench_metrics::{ConfusionMatrix, Metric};
/// use vdbench_metrics::cost::ExpectedCost;
///
/// let cm = ConfusionMatrix::new(8, 4, 2, 86);
/// let fn_heavy = ExpectedCost::fn_heavy();   // missing a vuln costs 10x
/// let fp_heavy = ExpectedCost::fp_heavy();   // a false alarm costs 10x
/// // The same matrix is judged very differently by the two cost models.
/// assert!(fn_heavy.compute(&cm).unwrap() != fp_heavy.compute(&cm).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedCost {
    fp_cost: f64,
    fn_cost: f64,
}

impl ExpectedCost {
    /// Creates a cost metric with explicit per-error costs.
    ///
    /// # Panics
    ///
    /// Panics unless both costs are finite, non-negative and not both zero.
    pub fn new(fp_cost: f64, fn_cost: f64) -> Self {
        assert!(
            fp_cost.is_finite() && fn_cost.is_finite() && fp_cost >= 0.0 && fn_cost >= 0.0,
            "costs must be finite and non-negative"
        );
        assert!(
            fp_cost > 0.0 || fn_cost > 0.0,
            "at least one cost must be positive"
        );
        ExpectedCost { fp_cost, fn_cost }
    }

    /// Both error types cost the same (cost ratio 1:1); equals the plain
    /// error rate `(FP + FN) / total`.
    pub fn balanced() -> Self {
        ExpectedCost::new(1.0, 1.0)
    }

    /// Missing a vulnerability costs 10× a false alarm — the
    /// business-critical / deployment-gate cost model.
    pub fn fn_heavy() -> Self {
        ExpectedCost::new(1.0, 10.0)
    }

    /// A false alarm costs 10× a miss — the high-volume triage / CI-filter
    /// cost model where analyst attention is the scarce resource.
    pub fn fp_heavy() -> Self {
        ExpectedCost::new(10.0, 1.0)
    }

    /// The false-positive unit cost.
    pub fn fp_cost(&self) -> f64 {
        self.fp_cost
    }

    /// The false-negative unit cost.
    pub fn fn_cost(&self) -> f64 {
        self.fn_cost
    }

    /// Raw (unnormalized) total cost on a matrix.
    pub fn total_cost(&self, cm: &ConfusionMatrix) -> f64 {
        self.fp_cost * cm.fp as f64 + self.fn_cost * cm.fn_ as f64
    }
}

impl Metric for ExpectedCost {
    fn id(&self) -> MetricId {
        if self.fp_cost == self.fn_cost {
            MetricId::CostBalanced
        } else if self.fn_cost > self.fp_cost {
            MetricId::CostFnHeavy
        } else {
            MetricId::CostFpHeavy
        }
    }
    fn name(&self) -> &'static str {
        if self.fp_cost == self.fn_cost {
            "Normalized expected cost (balanced)"
        } else if self.fn_cost > self.fp_cost {
            "Normalized expected cost (miss-dominated)"
        } else {
            "Normalized expected cost (false-alarm-dominated)"
        }
    }
    fn abbrev(&self) -> &'static str {
        if self.fp_cost == self.fn_cost {
            "NEC"
        } else if self.fn_cost > self.fp_cost {
            "NEC-fn"
        } else {
            "NEC-fp"
        }
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let scale = self.fp_cost.max(self.fn_cost) * cm.total() as f64;
        Ok(self.total_cost(cm) / scale)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::UNIT,
            simplicity: 3,
            defined_everywhere: true,
            needs_parameters: true,
            monotone_tpr: Monotonicity::Decreasing,
            monotone_fpr: Monotonicity::Increasing,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        let scale = self.fp_cost.max(self.fn_cost);
        Some(
            (self.fp_cost * (1.0 - prevalence) * report_rate
                + self.fn_cost * prevalence * (1.0 - report_rate))
                / scale,
        )
    }
}

/// Cost-weighted *savings* relative to doing nothing: how much of the
/// do-nothing cost (every vulnerability missed) the tool eliminates, net of
/// false-alarm cost. Positive means the tool pays for itself under the cost
/// model; higher is better.
///
/// `savings = (c_fn · P − cost(tool)) / (c_fn · P)`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSavings {
    inner: ExpectedCost,
}

impl CostSavings {
    /// Creates a savings metric with explicit per-error costs.
    ///
    /// # Panics
    ///
    /// Panics if `fn_cost` is not strictly positive (the do-nothing
    /// baseline would be free, making savings meaningless) or `fp_cost` is
    /// negative/non-finite.
    pub fn new(fp_cost: f64, fn_cost: f64) -> Self {
        assert!(
            fn_cost.is_finite() && fn_cost > 0.0,
            "fn_cost must be positive for a meaningful do-nothing baseline"
        );
        CostSavings {
            inner: ExpectedCost::new(fp_cost, fn_cost),
        }
    }

    /// The default audit cost model (miss costs 10× a false alarm).
    pub fn audit() -> Self {
        CostSavings::new(1.0, 10.0)
    }
}

impl Metric for CostSavings {
    fn id(&self) -> MetricId {
        MetricId::CostSavings
    }
    fn name(&self) -> &'static str {
        "Cost savings vs. doing nothing"
    }
    fn abbrev(&self) -> &'static str {
        "SAV"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let baseline = self.inner.fn_cost() * cm.actual_positive() as f64;
        if baseline == 0.0 {
            return Err(MetricError::Undefined {
                reason: "workload has no vulnerable units, so doing nothing is free",
            });
        }
        Ok((baseline - self.inner.total_cost(cm)) / baseline)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            // Unbounded below: enough false alarms make savings arbitrarily
            // negative.
            range: ValueRange {
                min: f64::NEG_INFINITY,
                max: 1.0,
            },
            simplicity: 3,
            needs_parameters: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        if prevalence == 0.0 {
            return None;
        }
        let baseline = self.inner.fn_cost() * prevalence;
        let cost = self.inner.fp_cost() * (1.0 - prevalence) * report_rate
            + self.inner.fn_cost() * prevalence * (1.0 - report_rate);
        Some((baseline - cost) / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cost_is_error_rate() {
        let cm = ConfusionMatrix::new(8, 4, 2, 86);
        let nec = ExpectedCost::balanced().compute(&cm).unwrap();
        assert!((nec - 6.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_tool_costs_nothing() {
        let cm = ConfusionMatrix::new(10, 0, 0, 90);
        for c in [
            ExpectedCost::balanced(),
            ExpectedCost::fn_heavy(),
            ExpectedCost::fp_heavy(),
        ] {
            assert_eq!(c.compute(&cm).unwrap(), 0.0);
        }
        let sav = CostSavings::audit().compute(&cm).unwrap();
        assert_eq!(sav, 1.0);
    }

    #[test]
    fn cost_models_diverge_on_asymmetric_tools() {
        // Recall-oriented tool: few misses, many false alarms.
        let chatty = ConfusionMatrix::new(10, 30, 0, 60);
        // Precision-oriented tool: no false alarms, several misses.
        let quiet = ConfusionMatrix::new(5, 0, 5, 90);
        let fn_heavy = ExpectedCost::fn_heavy();
        let fp_heavy = ExpectedCost::fp_heavy();
        // Under miss-dominated costs the chatty tool wins (lower cost).
        assert!(fn_heavy.compute(&chatty).unwrap() < fn_heavy.compute(&quiet).unwrap());
        // Under alarm-dominated costs the quiet tool wins.
        assert!(fp_heavy.compute(&quiet).unwrap() < fp_heavy.compute(&chatty).unwrap());
    }

    #[test]
    fn normalization_keeps_unit_range() {
        let worst_fn = ConfusionMatrix::new(0, 0, 100, 0);
        assert_eq!(ExpectedCost::fn_heavy().compute(&worst_fn).unwrap(), 1.0);
        let worst_fp = ConfusionMatrix::new(0, 100, 0, 0);
        assert_eq!(ExpectedCost::fp_heavy().compute(&worst_fp).unwrap(), 1.0);
        // Cross terms stay below 1.
        assert!(ExpectedCost::fn_heavy().compute(&worst_fp).unwrap() < 1.0);
    }

    #[test]
    fn ids_reflect_cost_shape() {
        assert_eq!(ExpectedCost::balanced().id(), MetricId::CostBalanced);
        assert_eq!(ExpectedCost::fn_heavy().id(), MetricId::CostFnHeavy);
        assert_eq!(ExpectedCost::fp_heavy().id(), MetricId::CostFpHeavy);
    }

    #[test]
    #[should_panic(expected = "at least one cost")]
    fn zero_costs_rejected() {
        let _ = ExpectedCost::new(0.0, 0.0);
    }

    #[test]
    fn savings_negative_for_noisy_tool_under_fp_costs() {
        // 2 vulnerabilities, both found, but 50 false alarms at fp_cost 1,
        // fn_cost 1: baseline = 2, cost = 50 → savings = -24.
        let cm = ConfusionMatrix::new(2, 50, 0, 48);
        let sav = CostSavings::new(1.0, 1.0).compute(&cm).unwrap();
        assert!((sav - (2.0 - 50.0) / 2.0).abs() < 1e-12);
        assert!(sav < 0.0);
    }

    #[test]
    fn savings_undefined_without_positives() {
        let cm = ConfusionMatrix::new(0, 5, 0, 95);
        assert!(CostSavings::audit().compute(&cm).is_err());
    }

    #[test]
    fn chance_levels_match_simulation() {
        let pi = 0.1;
        let r = 0.25;
        let cm = ConfusionMatrix::from_rates(r, r, 10_000, 90_000);
        for c in [
            ExpectedCost::balanced(),
            ExpectedCost::fn_heavy(),
            ExpectedCost::fp_heavy(),
        ] {
            let expected = c.chance_level(pi, r).unwrap();
            let actual = c.compute(&cm).unwrap();
            assert!(
                (actual - expected).abs() < 1e-6,
                "{}: {actual} vs {expected}",
                c.abbrev()
            );
        }
    }

    #[test]
    fn direction() {
        assert!(!ExpectedCost::balanced().higher_is_better());
        assert!(CostSavings::audit().higher_is_better());
    }
}
