//! The gathered metric catalog (paper Table 1).
//!
//! [`standard_catalog`] assembles every metric in the suite with stable
//! [`MetricId`]s for use in tables, rankings and serialized experiment
//! output.

use crate::basic::{
    Accuracy, Fallout, FalseDiscoveryRate, FalseOmissionRate, MissRate, Npv, Precision, Recall,
    Specificity,
};
use crate::chance::CohenKappa;
use crate::composite::{
    BalancedAccuracy, DiagnosticOddsRatio, FMeasure, FowlkesMallows, GMean, Informedness, Jaccard,
    Lift, Markedness, Mcc, PrevalenceThreshold,
};
use crate::cost::{CostSavings, ExpectedCost};
use crate::metric::Metric;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier for each catalog metric.
///
/// Serialized into experiment output; the variant order defines the catalog
/// presentation order (basic rates, composites, chance-corrected, cost
/// models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // Variant meanings are documented by the metric types.
pub enum MetricId {
    Precision,
    Recall,
    Specificity,
    Npv,
    Accuracy,
    Fallout,
    MissRate,
    Fdr,
    ForRate,
    F1,
    F2,
    FHalf,
    FBetaOther,
    GMean,
    BalancedAccuracy,
    Jaccard,
    FowlkesMallows,
    Informedness,
    Markedness,
    Mcc,
    Kappa,
    Dor,
    Lift,
    PrevalenceThreshold,
    CostBalanced,
    CostFnHeavy,
    CostFpHeavy,
    CostSavings,
}

impl MetricId {
    /// Every identifier instantiable by [`standard_catalog`], in catalog
    /// order.
    pub fn all() -> &'static [MetricId] {
        &[
            MetricId::Precision,
            MetricId::Recall,
            MetricId::Specificity,
            MetricId::Npv,
            MetricId::Accuracy,
            MetricId::Fallout,
            MetricId::MissRate,
            MetricId::Fdr,
            MetricId::ForRate,
            MetricId::F1,
            MetricId::F2,
            MetricId::FHalf,
            MetricId::GMean,
            MetricId::BalancedAccuracy,
            MetricId::Jaccard,
            MetricId::FowlkesMallows,
            MetricId::Informedness,
            MetricId::Markedness,
            MetricId::Mcc,
            MetricId::Kappa,
            MetricId::Dor,
            MetricId::Lift,
            MetricId::PrevalenceThreshold,
            MetricId::CostBalanced,
            MetricId::CostFnHeavy,
            MetricId::CostFpHeavy,
            MetricId::CostSavings,
        ]
    }

    /// Instantiates the metric for this identifier.
    ///
    /// Returns `None` only for [`MetricId::FBetaOther`], which stands for
    /// user-constructed `FMeasure` instances with non-standard β and has no
    /// canonical parameterization.
    pub fn instantiate(self) -> Option<Box<dyn Metric>> {
        Some(match self {
            MetricId::Precision => Box::new(Precision),
            MetricId::Recall => Box::new(Recall),
            MetricId::Specificity => Box::new(Specificity),
            MetricId::Npv => Box::new(Npv),
            MetricId::Accuracy => Box::new(Accuracy),
            MetricId::Fallout => Box::new(Fallout),
            MetricId::MissRate => Box::new(MissRate),
            MetricId::Fdr => Box::new(FalseDiscoveryRate),
            MetricId::ForRate => Box::new(FalseOmissionRate),
            MetricId::F1 => Box::new(FMeasure::f1()),
            MetricId::F2 => Box::new(FMeasure::f2()),
            MetricId::FHalf => Box::new(FMeasure::f_half()),
            MetricId::FBetaOther => return None,
            MetricId::GMean => Box::new(GMean),
            MetricId::BalancedAccuracy => Box::new(BalancedAccuracy),
            MetricId::Jaccard => Box::new(Jaccard),
            MetricId::FowlkesMallows => Box::new(FowlkesMallows),
            MetricId::Informedness => Box::new(Informedness),
            MetricId::Markedness => Box::new(Markedness),
            MetricId::Mcc => Box::new(Mcc),
            MetricId::Kappa => Box::new(CohenKappa),
            MetricId::Dor => Box::new(DiagnosticOddsRatio),
            MetricId::Lift => Box::new(Lift),
            MetricId::PrevalenceThreshold => Box::new(PrevalenceThreshold),
            MetricId::CostBalanced => Box::new(ExpectedCost::balanced()),
            MetricId::CostFnHeavy => Box::new(ExpectedCost::fn_heavy()),
            MetricId::CostFpHeavy => Box::new(ExpectedCost::fp_heavy()),
            MetricId::CostSavings => Box::new(CostSavings::audit()),
        })
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instantiate() {
            Some(m) => f.write_str(m.abbrev()),
            None => f.write_str("Fb"),
        }
    }
}

/// The full gathered catalog: 27 metrics spanning basic rates, composites,
/// chance-corrected measures and cost models.
///
/// ```
/// use vdbench_metrics::standard_catalog;
/// let catalog = standard_catalog();
/// assert!(catalog.len() >= 25);
/// ```
pub fn standard_catalog() -> Vec<Box<dyn Metric>> {
    MetricId::all()
        .iter()
        .filter_map(|id| id.instantiate())
        .collect()
}

/// Looks a metric up in the standard catalog by its short label
/// (case-insensitive), e.g. `"PPV"` or `"mcc"`.
pub fn by_abbrev(abbrev: &str) -> Option<Box<dyn Metric>> {
    standard_catalog()
        .into_iter()
        .find(|m| m.abbrev().eq_ignore_ascii_case(abbrev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confusion::ConfusionMatrix;
    use crate::metric::MetricExt;

    #[test]
    fn catalog_is_complete_and_unique() {
        let catalog = standard_catalog();
        assert_eq!(catalog.len(), MetricId::all().len());
        let mut ids: Vec<MetricId> = catalog.iter().map(|m| m.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), catalog.len(), "duplicate metric ids in catalog");
        let mut abbrevs: Vec<&str> = catalog.iter().map(|m| m.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), catalog.len(), "duplicate abbreviations");
    }

    #[test]
    fn instantiate_round_trips_ids() {
        for &id in MetricId::all() {
            let m = id.instantiate().expect("all() ids instantiate");
            assert_eq!(m.id(), id, "{id:?} instantiated as {:?}", m.id());
        }
        assert!(MetricId::FBetaOther.instantiate().is_none());
    }

    #[test]
    fn every_metric_defined_on_generic_matrix() {
        let cm = ConfusionMatrix::new(40, 10, 20, 130);
        for m in standard_catalog() {
            let v = m
                .compute(&cm)
                .unwrap_or_else(|e| panic!("{} undefined on generic matrix: {e}", m.abbrev()));
            assert!(v.is_finite(), "{} returned non-finite {v}", m.abbrev());
            assert!(
                m.properties().range.contains(v),
                "{} out of declared range: {v}",
                m.abbrev()
            );
        }
    }

    #[test]
    fn lookup_by_abbrev() {
        assert_eq!(by_abbrev("PPV").unwrap().id(), MetricId::Precision);
        assert_eq!(by_abbrev("mcc").unwrap().id(), MetricId::Mcc);
        assert_eq!(by_abbrev("nec-fn").unwrap().id(), MetricId::CostFnHeavy);
        assert!(by_abbrev("nope").is_none());
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(MetricId::Precision.to_string(), "PPV");
        assert_eq!(MetricId::Informedness.to_string(), "INF");
        assert_eq!(MetricId::FBetaOther.to_string(), "Fb");
    }

    #[test]
    fn ok_path_never_returns_nan() {
        // Metric contract: NaN must surface as Err, never Ok(NaN).
        let tricky = [
            ConfusionMatrix::new(0, 0, 5, 5),
            ConfusionMatrix::new(5, 5, 0, 0),
            ConfusionMatrix::new(0, 5, 0, 5),
            ConfusionMatrix::new(5, 0, 5, 0),
            ConfusionMatrix::new(0, 0, 0, 10),
            ConfusionMatrix::new(10, 0, 0, 0),
            ConfusionMatrix::empty(),
        ];
        for m in standard_catalog() {
            for cm in &tricky {
                if let Ok(v) = m.compute(cm) {
                    assert!(!v.is_nan(), "{} returned Ok(NaN) on {cm}", m.abbrev());
                }
            }
        }
    }

    #[test]
    fn compute_or_nan_is_total() {
        for m in standard_catalog() {
            let _ = m.compute_or_nan(&ConfusionMatrix::empty());
        }
    }
}
