//! Analytical metadata: the *characteristics of a good metric*.
//!
//! The paper's first stage assesses each gathered metric against the
//! attributes a benchmarking metric should have. The *analytical* half of
//! that assessment — facts derivable from the metric's formula — is encoded
//! here; the *empirical* half (prevalence sweeps, discriminative power,
//! bootstrap stability) lives in `vdbench-core::attributes`.

use serde::{Deserialize, Serialize};

/// Closed interval of attainable metric values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueRange {
    /// Smallest attainable value (possibly `-inf` for odds-ratio style
    /// metrics in log space).
    pub min: f64,
    /// Largest attainable value (possibly `+inf`).
    pub max: f64,
}

impl ValueRange {
    /// The unit interval `[0, 1]`, home of most rate metrics.
    pub const UNIT: ValueRange = ValueRange { min: 0.0, max: 1.0 };
    /// The signed unit interval `[-1, 1]` (MCC, informedness, κ…).
    pub const SIGNED_UNIT: ValueRange = ValueRange {
        min: -1.0,
        max: 1.0,
    };
    /// Non-negative unbounded `[0, ∞)` (DOR, lift).
    pub const NON_NEGATIVE: ValueRange = ValueRange {
        min: 0.0,
        max: f64::INFINITY,
    };

    /// Whether the range is bounded on both sides.
    pub fn is_bounded(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }

    /// Width of the range (`inf` when unbounded).
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Whether `v` falls inside the range (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }
}

/// How a metric responds, analytically, to a change in one underlying rate
/// while everything else is held fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Monotonicity {
    /// Strictly increasing in the rate.
    Increasing,
    /// Strictly decreasing in the rate.
    Decreasing,
    /// Direction depends on the rest of the matrix.
    Mixed,
    /// The metric does not depend on the rate at all.
    Independent,
}

/// Analytical property sheet for one metric.
///
/// Every field answers a question the selection study asks when matching
/// metrics to scenarios; `simplicity` is the ordinal "ease of computing and
/// explaining" judgment the paper attributes to benchmark users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricProperties {
    /// Attainable values.
    pub range: ValueRange,
    /// Whether the metric's value for a random tool is a fixed constant
    /// (rather than drifting with prevalence or report rate) — i.e. whether
    /// the metric is *chance-corrected*.
    pub chance_corrected: bool,
    /// Whether the metric's value at a fixed operating point (TPR, FPR) is
    /// analytically independent of workload prevalence.
    pub prevalence_invariant: bool,
    /// Whether the metric is defined for every non-empty confusion matrix.
    pub defined_everywhere: bool,
    /// Response to increasing TPR with all else fixed.
    pub monotone_tpr: Monotonicity,
    /// Response to increasing FPR with all else fixed.
    pub monotone_fpr: Monotonicity,
    /// Whether the metric reflects *both* error types (FP and FN); a metric
    /// that ignores one of them can be gamed by trivial tools.
    pub uses_both_error_types: bool,
    /// Ordinal simplicity/interpretability for benchmark consumers:
    /// 1 (opaque) … 5 (immediately interpretable).
    pub simplicity: u8,
    /// Whether the metric requires a cost model or other scenario-specific
    /// parameters beyond the confusion matrix.
    pub needs_parameters: bool,
}

impl MetricProperties {
    /// Conservative defaults for a `[0, 1]` rate metric; individual metrics
    /// override the fields that differ.
    pub fn unit_rate() -> Self {
        MetricProperties {
            range: ValueRange::UNIT,
            chance_corrected: false,
            prevalence_invariant: false,
            defined_everywhere: false,
            monotone_tpr: Monotonicity::Increasing,
            monotone_fpr: Monotonicity::Decreasing,
            uses_both_error_types: true,
            simplicity: 4,
            needs_parameters: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_helpers() {
        assert!(ValueRange::UNIT.is_bounded());
        assert!(!ValueRange::NON_NEGATIVE.is_bounded());
        assert_eq!(ValueRange::SIGNED_UNIT.width(), 2.0);
        assert!(ValueRange::UNIT.contains(0.0));
        assert!(ValueRange::UNIT.contains(1.0));
        assert!(!ValueRange::UNIT.contains(1.1));
        assert!(ValueRange::NON_NEGATIVE.contains(1e12));
    }

    #[test]
    fn default_sheet_is_sane() {
        let p = MetricProperties::unit_rate();
        assert_eq!(p.range, ValueRange::UNIT);
        assert!(!p.chance_corrected);
        assert!(p.simplicity >= 1 && p.simplicity <= 5);
    }
}
