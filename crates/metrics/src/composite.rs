//! Composite metrics combining several marginals.
//!
//! This family contains both the popular aggregates (F-measure) and the
//! "alternative metrics that are seldom used in the benchmarking area" the
//! paper ultimately recommends for several scenarios: informedness,
//! markedness, Matthews correlation and friends.

use crate::catalog::MetricId;
use crate::confusion::ConfusionMatrix;
use crate::metric::{require_nonempty, Metric, MetricError};
use crate::properties::{MetricProperties, Monotonicity, ValueRange};

/// F-measure: the weighted harmonic mean of precision and recall.
///
/// `F_β = (1 + β²) · P · R / (β² · P + R)`; β > 1 weights recall higher,
/// β < 1 weights precision higher.
///
/// ```
/// use vdbench_metrics::{ConfusionMatrix, Metric};
/// use vdbench_metrics::composite::FMeasure;
///
/// let cm = ConfusionMatrix::new(80, 20, 20, 880);
/// // P = R = 0.8, so every F_β equals 0.8.
/// for f in [FMeasure::f1(), FMeasure::f2(), FMeasure::f_half()] {
///     assert!((f.compute(&cm).unwrap() - 0.8).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FMeasure {
    beta: f64,
}

impl FMeasure {
    /// Creates an F-measure with the given β weight.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not strictly positive and finite.
    pub fn new(beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "F-measure beta must be positive and finite"
        );
        FMeasure { beta }
    }

    /// The balanced F1 measure.
    pub fn f1() -> Self {
        FMeasure::new(1.0)
    }

    /// F2 — recall-weighted (β = 2).
    pub fn f2() -> Self {
        FMeasure::new(2.0)
    }

    /// F0.5 — precision-weighted (β = 0.5).
    pub fn f_half() -> Self {
        FMeasure::new(0.5)
    }

    /// The β weight.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Metric for FMeasure {
    fn id(&self) -> MetricId {
        if self.beta == 1.0 {
            MetricId::F1
        } else if self.beta == 2.0 {
            MetricId::F2
        } else if self.beta == 0.5 {
            MetricId::FHalf
        } else {
            MetricId::FBetaOther
        }
    }
    fn name(&self) -> &'static str {
        if self.beta == 1.0 {
            "F-measure (balanced, F1)"
        } else if self.beta > 1.0 {
            "F-measure (recall-weighted)"
        } else {
            "F-measure (precision-weighted)"
        }
    }
    fn abbrev(&self) -> &'static str {
        if self.beta == 1.0 {
            "F1"
        } else if self.beta == 2.0 {
            "F2"
        } else if self.beta == 0.5 {
            "F0.5"
        } else {
            "Fb"
        }
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        if cm.actual_positive() == 0 {
            return Err(MetricError::Undefined {
                reason: "workload has no vulnerable units (TP + FN = 0)",
            });
        }
        if cm.predicted_positive() == 0 {
            return Err(MetricError::Undefined {
                reason: "tool reported no units (TP + FP = 0)",
            });
        }
        let b2 = self.beta * self.beta;
        let tp = cm.tp as f64;
        // Direct count form avoids the 0/0 when TP = 0 but FP, FN > 0.
        let denom = (1.0 + b2) * tp + b2 * cm.fn_ as f64 + cm.fp as f64;
        Ok((1.0 + b2) * tp / denom)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: if self.beta == 1.0 { 4 } else { 3 },
            needs_parameters: self.beta != 1.0,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        let b2 = self.beta * self.beta;
        let denom = b2 * prevalence + report_rate;
        if denom == 0.0 {
            None
        } else {
            Some((1.0 + b2) * prevalence * report_rate / denom)
        }
    }
}

/// Geometric mean of recall and specificity: `sqrt(TPR · TNR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GMean;

impl Metric for GMean {
    fn id(&self) -> MetricId {
        MetricId::GMean
    }
    fn name(&self) -> &'static str {
        "Geometric mean of recall and specificity"
    }
    fn abbrev(&self) -> &'static str {
        "G-mean"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let tpr = cm.tpr();
        let tnr = cm.tnr();
        if tpr.is_nan() || tnr.is_nan() {
            return Err(MetricError::Undefined {
                reason: "workload lacks a class (needs both vulnerable and clean units)",
            });
        }
        Ok((tpr * tnr).sqrt())
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 3,
            prevalence_invariant: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, report_rate: f64) -> Option<f64> {
        Some((report_rate * (1.0 - report_rate)).sqrt())
    }
}

/// Balanced accuracy: `(TPR + TNR) / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BalancedAccuracy;

impl Metric for BalancedAccuracy {
    fn id(&self) -> MetricId {
        MetricId::BalancedAccuracy
    }
    fn name(&self) -> &'static str {
        "Balanced accuracy"
    }
    fn abbrev(&self) -> &'static str {
        "BA"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let tpr = cm.tpr();
        let tnr = cm.tnr();
        if tpr.is_nan() || tnr.is_nan() {
            return Err(MetricError::Undefined {
                reason: "workload lacks a class (needs both vulnerable and clean units)",
            });
        }
        Ok((tpr + tnr) / 2.0)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 4,
            prevalence_invariant: true,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.5)
    }
}

/// Jaccard index (critical success index): `TP / (TP + FP + FN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Jaccard;

impl Metric for Jaccard {
    fn id(&self) -> MetricId {
        MetricId::Jaccard
    }
    fn name(&self) -> &'static str {
        "Jaccard index (critical success index)"
    }
    fn abbrev(&self) -> &'static str {
        "CSI"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let denom = (cm.tp + cm.fp + cm.fn_) as f64;
        if denom == 0.0 {
            return Err(MetricError::Undefined {
                reason: "no vulnerable units and no reports (TP + FP + FN = 0)",
            });
        }
        Ok(cm.tp as f64 / denom)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 3,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        let denom = prevalence + report_rate - prevalence * report_rate;
        if denom == 0.0 {
            None
        } else {
            Some(prevalence * report_rate / denom)
        }
    }
}

/// Fowlkes–Mallows index: `sqrt(PPV · TPR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FowlkesMallows;

impl Metric for FowlkesMallows {
    fn id(&self) -> MetricId {
        MetricId::FowlkesMallows
    }
    fn name(&self) -> &'static str {
        "Fowlkes–Mallows index"
    }
    fn abbrev(&self) -> &'static str {
        "FM"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let ppv = cm.ppv();
        let tpr = cm.tpr();
        if ppv.is_nan() || tpr.is_nan() {
            return Err(MetricError::Undefined {
                reason: "needs at least one report and one vulnerable unit",
            });
        }
        Ok((ppv * tpr).sqrt())
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 2,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64> {
        Some((prevalence * report_rate).sqrt())
    }
}

/// Informedness (Youden's J): `TPR + TNR − 1`.
///
/// One of the paper's headline "seldom used" alternatives: it is
/// chance-corrected (random tools score 0) and prevalence-invariant, making
/// it suited to cross-workload tool comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Informedness;

impl Metric for Informedness {
    fn id(&self) -> MetricId {
        MetricId::Informedness
    }
    fn name(&self) -> &'static str {
        "Informedness (Youden's J)"
    }
    fn abbrev(&self) -> &'static str {
        "INF"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let tpr = cm.tpr();
        let tnr = cm.tnr();
        if tpr.is_nan() || tnr.is_nan() {
            return Err(MetricError::Undefined {
                reason: "workload lacks a class (needs both vulnerable and clean units)",
            });
        }
        Ok(tpr + tnr - 1.0)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::SIGNED_UNIT,
            simplicity: 3,
            prevalence_invariant: true,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.0)
    }
}

/// Markedness: `PPV + NPV − 1` — the predictive-value dual of
/// informedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Markedness;

impl Metric for Markedness {
    fn id(&self) -> MetricId {
        MetricId::Markedness
    }
    fn name(&self) -> &'static str {
        "Markedness"
    }
    fn abbrev(&self) -> &'static str {
        "MRK"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let ppv = cm.ppv();
        let npv = cm.npv();
        if ppv.is_nan() || npv.is_nan() {
            return Err(MetricError::Undefined {
                reason: "needs both a reported and an unreported unit",
            });
        }
        Ok(ppv + npv - 1.0)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::SIGNED_UNIT,
            simplicity: 2,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.0)
    }
}

/// Matthews correlation coefficient — the geometric mean of informedness
/// and markedness; a full-matrix correlation that is zero for any random
/// tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mcc;

impl Metric for Mcc {
    fn id(&self) -> MetricId {
        MetricId::Mcc
    }
    fn name(&self) -> &'static str {
        "Matthews correlation coefficient"
    }
    fn abbrev(&self) -> &'static str {
        "MCC"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let tp = cm.tp as f64;
        let fp = cm.fp as f64;
        let fn_ = cm.fn_ as f64;
        let tn = cm.tn as f64;
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            return Err(MetricError::Undefined {
                reason: "a confusion-matrix marginal is zero",
            });
        }
        Ok((tp * tn - fp * fn_) / denom)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::SIGNED_UNIT,
            simplicity: 2,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.0)
    }
}

/// Diagnostic odds ratio: `(TP · TN) / (FP · FN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiagnosticOddsRatio;

impl Metric for DiagnosticOddsRatio {
    fn id(&self) -> MetricId {
        MetricId::Dor
    }
    fn name(&self) -> &'static str {
        "Diagnostic odds ratio"
    }
    fn abbrev(&self) -> &'static str {
        "DOR"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let denom = (cm.fp * cm.fn_) as f64;
        if denom == 0.0 {
            return Err(MetricError::Undefined {
                reason: "no errors of one type (FP · FN = 0) makes the odds ratio infinite",
            });
        }
        Ok((cm.tp * cm.tn) as f64 / denom)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::NON_NEGATIVE,
            simplicity: 2,
            prevalence_invariant: true,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(1.0)
    }
}

/// Lift: `PPV / prevalence` — how much better than blind sampling the
/// tool's reports are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lift;

impl Metric for Lift {
    fn id(&self) -> MetricId {
        MetricId::Lift
    }
    fn name(&self) -> &'static str {
        "Lift over random triage"
    }
    fn abbrev(&self) -> &'static str {
        "LIFT"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let ppv = cm.ppv();
        let prev = cm.prevalence();
        if ppv.is_nan() {
            return Err(MetricError::Undefined {
                reason: "tool reported no units (TP + FP = 0)",
            });
        }
        if prev == 0.0 {
            return Err(MetricError::Undefined {
                reason: "workload has no vulnerable units",
            });
        }
        Ok(ppv / prev)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            range: ValueRange::NON_NEGATIVE,
            simplicity: 3,
            chance_corrected: true,
            ..MetricProperties::unit_rate()
        }
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(1.0)
    }
}

/// Prevalence threshold: `sqrt(FPR) / (sqrt(TPR) + sqrt(FPR))` — the
/// prevalence below which positive reports are more likely false than true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrevalenceThreshold;

impl Metric for PrevalenceThreshold {
    fn id(&self) -> MetricId {
        MetricId::PrevalenceThreshold
    }
    fn name(&self) -> &'static str {
        "Prevalence threshold"
    }
    fn abbrev(&self) -> &'static str {
        "PT"
    }
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        require_nonempty(cm)?;
        let tpr = cm.tpr();
        let fpr = cm.fpr();
        if tpr.is_nan() || fpr.is_nan() {
            return Err(MetricError::Undefined {
                reason: "workload lacks a class (needs both vulnerable and clean units)",
            });
        }
        let denom = tpr.sqrt() + fpr.sqrt();
        if denom == 0.0 {
            return Err(MetricError::Undefined {
                reason: "tool reports nothing (TPR = FPR = 0)",
            });
        }
        Ok(fpr.sqrt() / denom)
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties {
            simplicity: 1,
            prevalence_invariant: true,
            monotone_tpr: Monotonicity::Decreasing,
            monotone_fpr: Monotonicity::Increasing,
            ..MetricProperties::unit_rate()
        }
    }
    fn higher_is_better(&self) -> bool {
        false
    }
    fn chance_level(&self, _prevalence: f64, _report_rate: f64) -> Option<f64> {
        Some(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        ConfusionMatrix::new(40, 10, 20, 130)
    }

    #[test]
    fn f1_matches_harmonic_mean() {
        let cm = cm();
        let p = 0.8;
        let r = 40.0 / 60.0;
        let expect = 2.0 * p * r / (p + r);
        assert!((FMeasure::f1().compute(&cm).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn f2_weights_recall() {
        // High precision, low recall: F2 should be below F0.5.
        let cm = ConfusionMatrix::new(10, 0, 40, 50);
        let f2 = FMeasure::f2().compute(&cm).unwrap();
        let f_half = FMeasure::f_half().compute(&cm).unwrap();
        assert!(f2 < f_half);
        // Low precision, high recall: the opposite.
        let cm = ConfusionMatrix::new(50, 40, 0, 10);
        let f2 = FMeasure::f2().compute(&cm).unwrap();
        let f_half = FMeasure::f_half().compute(&cm).unwrap();
        assert!(f2 > f_half);
    }

    #[test]
    fn f_measure_zero_tp_is_zero_not_undefined() {
        // Tool reported something, workload has positives, but all reports
        // were wrong: F should be 0, not an error.
        let cm = ConfusionMatrix::new(0, 5, 5, 90);
        assert_eq!(FMeasure::f1().compute(&cm).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn f_measure_rejects_bad_beta() {
        let _ = FMeasure::new(0.0);
    }

    #[test]
    fn informedness_and_markedness() {
        let cm = cm();
        let inf = Informedness.compute(&cm).unwrap();
        let expect = 40.0 / 60.0 + 130.0 / 140.0 - 1.0;
        assert!((inf - expect).abs() < 1e-12);
        let mrk = Markedness.compute(&cm).unwrap();
        let expect = 0.8 + 130.0 / 150.0 - 1.0;
        assert!((mrk - expect).abs() < 1e-12);
    }

    #[test]
    fn mcc_is_geometric_mean_of_inf_and_mrk() {
        let cm = cm();
        let mcc = Mcc.compute(&cm).unwrap();
        let inf = Informedness.compute(&cm).unwrap();
        let mrk = Markedness.compute(&cm).unwrap();
        assert!((mcc - (inf * mrk).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn chance_corrected_metrics_score_zero_for_random_tools() {
        // A perfectly random tool: TPR == FPR == 0.3 at any prevalence.
        let cm = ConfusionMatrix::from_rates(0.3, 0.3, 1000, 9000);
        assert!(Informedness.compute(&cm).unwrap().abs() < 1e-9);
        assert!(Mcc.compute(&cm).unwrap().abs() < 1e-9);
        assert!(Markedness.compute(&cm).unwrap().abs() < 1e-9);
        assert!((DiagnosticOddsRatio.compute(&cm).unwrap() - 1.0).abs() < 1e-9);
        assert!((Lift.compute(&cm).unwrap() - 1.0).abs() < 1e-9);
        // ...while accuracy still looks flattering.
        let acc = crate::basic::Accuracy.compute(&cm).unwrap();
        assert!(acc > 0.6);
    }

    #[test]
    fn perfect_tool_extremes() {
        let perfect = ConfusionMatrix::new(100, 0, 0, 900);
        assert_eq!(Informedness.compute(&perfect).unwrap(), 1.0);
        assert_eq!(Mcc.compute(&perfect).unwrap(), 1.0);
        assert_eq!(GMean.compute(&perfect).unwrap(), 1.0);
        assert_eq!(BalancedAccuracy.compute(&perfect).unwrap(), 1.0);
        assert_eq!(Jaccard.compute(&perfect).unwrap(), 1.0);
        assert_eq!(FowlkesMallows.compute(&perfect).unwrap(), 1.0);
        assert_eq!(PrevalenceThreshold.compute(&perfect).unwrap(), 0.0);
        // Inverted tool.
        let inverted = ConfusionMatrix::new(0, 900, 100, 0);
        assert_eq!(Informedness.compute(&inverted).unwrap(), -1.0);
        assert_eq!(Mcc.compute(&inverted).unwrap(), -1.0);
    }

    #[test]
    fn dor_undefined_without_errors() {
        let perfect = ConfusionMatrix::new(10, 0, 0, 90);
        assert!(DiagnosticOddsRatio.compute(&perfect).is_err());
        let cm = ConfusionMatrix::new(8, 2, 2, 88);
        let dor = DiagnosticOddsRatio.compute(&cm).unwrap();
        assert!((dor - (8.0 * 88.0) / (2.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn lift_interpretation() {
        // PPV 0.8 on a 10% prevalent workload: reports are 8x denser in
        // vulnerabilities than the workload.
        let cm = ConfusionMatrix::new(80, 20, 20, 880);
        let lift = Lift.compute(&cm).unwrap();
        assert!((lift - 8.0).abs() < 1e-9);
    }

    #[test]
    fn prevalence_threshold_matches_formula() {
        let cm = ConfusionMatrix::from_rates(0.9, 0.1, 100, 900);
        let pt = PrevalenceThreshold.compute(&cm).unwrap();
        let expect = 0.1f64.sqrt() / (0.9f64.sqrt() + 0.1f64.sqrt());
        assert!((pt - expect).abs() < 1e-9);
        assert!(!PrevalenceThreshold.higher_is_better());
    }

    #[test]
    fn undefined_on_single_class_workloads() {
        let only_pos = ConfusionMatrix::new(5, 0, 5, 0);
        let only_neg = ConfusionMatrix::new(0, 5, 0, 5);
        for m in [
            Box::new(GMean) as Box<dyn Metric>,
            Box::new(BalancedAccuracy),
            Box::new(Informedness),
            Box::new(PrevalenceThreshold),
        ] {
            assert!(m.compute(&only_pos).is_err(), "{}", m.abbrev());
            assert!(m.compute(&only_neg).is_err(), "{}", m.abbrev());
        }
    }

    #[test]
    fn ranges_hold() {
        let matrices = [
            ConfusionMatrix::new(1, 1, 1, 1),
            ConfusionMatrix::new(3, 7, 2, 88),
            ConfusionMatrix::new(50, 1, 1, 50),
        ];
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(FMeasure::f1()),
            Box::new(GMean),
            Box::new(BalancedAccuracy),
            Box::new(Jaccard),
            Box::new(FowlkesMallows),
            Box::new(Informedness),
            Box::new(Markedness),
            Box::new(Mcc),
            Box::new(DiagnosticOddsRatio),
            Box::new(Lift),
            Box::new(PrevalenceThreshold),
        ];
        for m in &metrics {
            for cm in &matrices {
                if let Ok(v) = m.compute(cm) {
                    assert!(
                        m.properties().range.contains(v),
                        "{} out of range on {cm}: {v}",
                        m.abbrev()
                    );
                }
            }
        }
    }

    #[test]
    fn chance_levels_consistent_with_simulated_random_tool() {
        let pi = 0.2;
        let r = 0.4;
        let cm = ConfusionMatrix::from_rates(r, r, 20_000, 80_000);
        let checks: Vec<(Box<dyn Metric>, f64)> = vec![
            (
                Box::new(FMeasure::f1()),
                FMeasure::f1().chance_level(pi, r).unwrap(),
            ),
            (Box::new(GMean), GMean.chance_level(pi, r).unwrap()),
            (Box::new(Jaccard), Jaccard.chance_level(pi, r).unwrap()),
            (
                Box::new(FowlkesMallows),
                FowlkesMallows.chance_level(pi, r).unwrap(),
            ),
        ];
        for (m, expected) in checks {
            let actual = m.compute(&cm).unwrap();
            assert!(
                (actual - expected).abs() < 0.01,
                "{}: simulated {actual} vs closed form {expected}",
                m.abbrev()
            );
        }
    }
}
