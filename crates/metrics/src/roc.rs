//! Operating points in ROC space.
//!
//! A detection tool's intrinsic behaviour is summarized by its operating
//! point `(TPR, FPR)`; the workload contributes prevalence and size. Keeping
//! the two separate is what lets the attribute-assessment engine sweep
//! prevalence while holding the tool fixed (Fig. 1) and walk a grid of
//! hypothetical tools (monotonicity analysis).

use crate::confusion::ConfusionMatrix;
use serde::{Deserialize, Serialize};

/// A point in ROC space: true-positive rate vs false-positive rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// True-positive rate in `[0, 1]`.
    pub tpr: f64,
    /// False-positive rate in `[0, 1]`.
    pub fpr: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1]`.
    pub fn new(tpr: f64, fpr: f64) -> Self {
        assert!((0.0..=1.0).contains(&tpr), "tpr must be in [0,1]");
        assert!((0.0..=1.0).contains(&fpr), "fpr must be in [0,1]");
        OperatingPoint { tpr, fpr }
    }

    /// The perfect tool: finds everything, flags nothing clean.
    pub fn perfect() -> Self {
        OperatingPoint::new(1.0, 0.0)
    }

    /// A random tool reporting each unit with probability `rate`.
    pub fn random(rate: f64) -> Self {
        OperatingPoint::new(rate.clamp(0.0, 1.0), rate.clamp(0.0, 1.0))
    }

    /// The silent tool that reports nothing.
    pub fn silent() -> Self {
        OperatingPoint::new(0.0, 0.0)
    }

    /// Whether the point lies above the chance diagonal (better than
    /// random).
    pub fn better_than_chance(&self) -> bool {
        self.tpr > self.fpr
    }

    /// Youden's J at this point — distance above the chance diagonal.
    pub fn informedness(&self) -> f64 {
        self.tpr - self.fpr
    }

    /// Realizes the operating point as integer counts on a workload with
    /// `positives` vulnerable and `negatives` clean units.
    pub fn to_confusion(&self, positives: u64, negatives: u64) -> ConfusionMatrix {
        ConfusionMatrix::from_rates(self.tpr, self.fpr, positives, negatives)
    }

    /// Realizes the operating point on a workload of `total` units with the
    /// given vulnerability `prevalence` (rounded to whole units).
    ///
    /// # Panics
    ///
    /// Panics if `prevalence` lies outside `[0, 1]`.
    pub fn to_confusion_with_prevalence(&self, total: u64, prevalence: f64) -> ConfusionMatrix {
        assert!(
            (0.0..=1.0).contains(&prevalence),
            "prevalence must be in [0,1]"
        );
        let positives = (total as f64 * prevalence).round() as u64;
        let positives = positives.min(total);
        self.to_confusion(positives, total - positives)
    }

    /// Extracts the empirical operating point of a confusion matrix, when
    /// both classes are present.
    pub fn from_confusion(cm: &ConfusionMatrix) -> Option<OperatingPoint> {
        let tpr = cm.tpr();
        let fpr = cm.fpr();
        if tpr.is_nan() || fpr.is_nan() {
            None
        } else {
            Some(OperatingPoint::new(tpr, fpr))
        }
    }
}

/// The empirical ROC curve of a *scored* detector: each case carries the
/// tool's confidence score and its ground-truth label. Sweeping the
/// decision threshold over the scores traces the curve.
///
/// Points are returned in increasing-FPR order, starting at `(0, 0)` and
/// ending at `(1, 1)`. Ties in score move along the curve jointly (the
/// standard step construction).
///
/// # Errors
///
/// Returns [`crate::MetricError::Undefined`] when either class is absent.
pub fn roc_curve(cases: &[(f64, bool)]) -> Result<Vec<(f64, f64)>, crate::MetricError> {
    let positives = cases.iter().filter(|(_, p)| *p).count() as f64;
    let negatives = cases.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return Err(crate::MetricError::Undefined {
            reason: "ROC needs both vulnerable and clean cases",
        });
    }
    let mut sorted: Vec<&(f64, bool)> = cases.iter().collect();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut points = vec![(0.0, 0.0)];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].0;
        // Consume the whole tie group before emitting a point.
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push((fp / negatives, tp / positives));
    }
    Ok(points)
}

/// Area under the empirical ROC curve via the rank-sum (Mann–Whitney)
/// formulation with mid-rank tie handling: the probability that a random
/// vulnerable case scores above a random clean one (+ half the tie mass).
///
/// # Errors
///
/// Returns [`crate::MetricError::Undefined`] when either class is absent.
///
/// ```
/// use vdbench_metrics::roc::auc;
/// // A perfectly discriminating scorer.
/// let cases = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
/// assert!((auc(&cases).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn auc(cases: &[(f64, bool)]) -> Result<f64, crate::MetricError> {
    let n_pos = cases.iter().filter(|(_, p)| *p).count();
    let n_neg = cases.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(crate::MetricError::Undefined {
            reason: "AUC needs both vulnerable and clean cases",
        });
    }
    // Mid-ranks over the pooled scores.
    let mut idx: Vec<usize> = (0..cases.len()).collect();
    idx.sort_by(|&a, &b| cases[a].0.total_cmp(&cases[b].0));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && cases[idx[j + 1]].0 == cases[idx[i]].0 {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if cases[k].1 {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let u = rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0;
    Ok(u / (n_pos_f * n_neg as f64))
}

/// A uniform grid over ROC space, excluding the degenerate edges, used by
/// the monotonicity checks.
///
/// Yields `steps × steps` points with TPR and FPR in `(0, 1)`.
pub fn roc_grid(steps: usize) -> Vec<OperatingPoint> {
    let mut out = Vec::with_capacity(steps * steps);
    for i in 1..=steps {
        for j in 1..=steps {
            let tpr = i as f64 / (steps + 1) as f64;
            let fpr = j as f64 / (steps + 1) as f64;
            out.push(OperatingPoint::new(tpr, fpr));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(OperatingPoint::perfect().informedness(), 1.0);
        assert_eq!(OperatingPoint::random(0.3).informedness(), 0.0);
        assert_eq!(OperatingPoint::silent().tpr, 0.0);
        assert!(OperatingPoint::new(0.9, 0.1).better_than_chance());
        assert!(!OperatingPoint::random(0.5).better_than_chance());
    }

    #[test]
    #[should_panic(expected = "tpr must be in")]
    fn rejects_out_of_range() {
        let _ = OperatingPoint::new(1.5, 0.0);
    }

    #[test]
    fn confusion_round_trip() {
        let op = OperatingPoint::new(0.8, 0.1);
        let cm = op.to_confusion(100, 900);
        let back = OperatingPoint::from_confusion(&cm).unwrap();
        assert!((back.tpr - 0.8).abs() < 1e-12);
        assert!((back.fpr - 0.1).abs() < 1e-12);
    }

    #[test]
    fn prevalence_realization() {
        let op = OperatingPoint::new(0.5, 0.5);
        let cm = op.to_confusion_with_prevalence(1000, 0.1);
        assert_eq!(cm.actual_positive(), 100);
        assert_eq!(cm.actual_negative(), 900);
        // All-positive workload edge.
        let cm = op.to_confusion_with_prevalence(10, 1.0);
        assert_eq!(cm.actual_negative(), 0);
    }

    #[test]
    fn from_confusion_requires_both_classes() {
        assert!(OperatingPoint::from_confusion(&ConfusionMatrix::new(1, 0, 1, 0)).is_none());
        assert!(OperatingPoint::from_confusion(&ConfusionMatrix::new(0, 1, 0, 1)).is_none());
        assert!(OperatingPoint::from_confusion(&ConfusionMatrix::new(1, 1, 1, 1)).is_some());
    }

    #[test]
    fn roc_curve_shape() {
        let cases = [
            (0.9, true),
            (0.8, false),
            (0.7, true),
            (0.3, false),
            (0.1, false),
        ];
        let curve = roc_curve(&cases).unwrap();
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        // Monotone non-decreasing in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "{curve:?}");
        }
        assert!(roc_curve(&[(0.5, true)]).is_err());
        assert!(roc_curve(&[]).is_err());
    }

    #[test]
    fn roc_curve_groups_ties() {
        let cases = [(0.5, true), (0.5, false), (0.1, false)];
        let curve = roc_curve(&cases).unwrap();
        // The tie group moves diagonally in one step.
        assert_eq!(curve[1], (0.5, 1.0));
    }

    #[test]
    fn auc_reference_values() {
        // Perfect scorer.
        let perfect = [(0.9, true), (0.8, true), (0.2, false)];
        assert!((auc(&perfect).unwrap() - 1.0).abs() < 1e-12);
        // Inverted scorer.
        let inverted = [(0.1, true), (0.9, false)];
        assert!(auc(&inverted).unwrap().abs() < 1e-12);
        // Uninformative constant scorer → 0.5 by tie handling.
        let flat = [(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((auc(&flat).unwrap() - 0.5).abs() < 1e-12);
        assert!(auc(&[(0.5, true)]).is_err());
    }

    #[test]
    fn auc_matches_pairwise_probability() {
        // Hand-computable mix: positives {0.9, 0.4}, negatives {0.6, 0.2}.
        // Pairs: (0.9 beats both) + (0.4 beats 0.2) = 3 of 4 → 0.75.
        let cases = [(0.9, true), (0.4, true), (0.6, false), (0.2, false)];
        assert!((auc(&cases).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_equals_trapezoid_area_of_curve() {
        let cases = [
            (0.95, true),
            (0.9, false),
            (0.85, true),
            (0.6, true),
            (0.5, false),
            (0.3, false),
            (0.2, true),
            (0.1, false),
        ];
        let a = auc(&cases).unwrap();
        let curve = roc_curve(&cases).unwrap();
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0;
        }
        assert!((a - area).abs() < 1e-12, "auc {a} vs trapezoid {area}");
    }

    #[test]
    fn grid_shape_and_interior() {
        let grid = roc_grid(5);
        assert_eq!(grid.len(), 25);
        for p in &grid {
            assert!(p.tpr > 0.0 && p.tpr < 1.0);
            assert!(p.fpr > 0.0 && p.fpr < 1.0);
        }
    }
}
