//! The [`Metric`] trait and its error type.

use crate::catalog::MetricId;
use crate::confusion::ConfusionMatrix;
use crate::properties::MetricProperties;
use std::fmt;

/// Why a metric could not be computed on a given confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricError {
    /// The metric's denominator vanishes on this matrix (e.g. precision
    /// when the tool reports nothing).
    Undefined {
        /// Which marginal was empty.
        reason: &'static str,
    },
    /// The matrix contains no observations at all.
    EmptyMatrix,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Undefined { reason } => {
                write!(f, "metric undefined on this matrix: {reason}")
            }
            MetricError::EmptyMatrix => write!(f, "confusion matrix is empty"),
        }
    }
}

impl std::error::Error for MetricError {}

/// A benchmarking metric computed from a binary confusion matrix.
///
/// The trait is object-safe so the catalog can be handled as
/// `Vec<Box<dyn Metric>>`. Implementations are stateless value types (or
/// small parameterized structs like `FMeasure`); the analytical metadata the
/// selection study consumes lives in [`MetricProperties`].
///
/// # Example
///
/// ```
/// use vdbench_metrics::{ConfusionMatrix, Metric};
/// use vdbench_metrics::basic::Recall;
///
/// let cm = ConfusionMatrix::new(9, 5, 1, 85);
/// let r = Recall.compute(&cm)?;
/// assert!((r - 0.9).abs() < 1e-12);
/// # Ok::<(), vdbench_metrics::MetricError>(())
/// ```
pub trait Metric: fmt::Debug + Send + Sync {
    /// Stable identifier used in catalogs, tables and serialized reports.
    fn id(&self) -> MetricId;

    /// Full human-readable name ("Positive predictive value (precision)").
    fn name(&self) -> &'static str;

    /// Short label for table columns ("PPV").
    fn abbrev(&self) -> &'static str;

    /// Computes the metric.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError`] when the metric is undefined on `cm` (empty
    /// matrix or vanishing denominator). Implementations must never return
    /// `NaN` through the `Ok` path.
    fn compute(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError>;

    /// Analytical metadata used by the metric-selection study.
    fn properties(&self) -> MetricProperties;

    /// Whether larger values indicate a better tool. Cost-style metrics
    /// return `false`.
    fn higher_is_better(&self) -> bool {
        true
    }

    /// Expected value for a *random* tool that reports each unit
    /// independently with probability `report_rate`, on a workload with the
    /// given `prevalence` — the reference point for chance correction.
    ///
    /// Returns `None` when no closed form exists or the value is undefined
    /// for those parameters.
    fn chance_level(&self, prevalence: f64, report_rate: f64) -> Option<f64>;
}

/// Extension helpers available on every metric.
pub trait MetricExt: Metric {
    /// Computes the metric, mapping undefined cases to `NaN`. Useful when
    /// assembling tables where gaps are rendered as `—`.
    fn compute_or_nan(&self, cm: &ConfusionMatrix) -> f64 {
        self.compute(cm).unwrap_or(f64::NAN)
    }

    /// Orientation-normalized score: negated for metrics where lower is
    /// better, so "bigger is always better" holds for ranking code.
    fn oriented(&self, cm: &ConfusionMatrix) -> Result<f64, MetricError> {
        let v = self.compute(cm)?;
        Ok(if self.higher_is_better() { v } else { -v })
    }
}

impl<M: Metric + ?Sized> MetricExt for M {}

/// Guard helper shared by implementations: errors on an empty matrix.
pub(crate) fn require_nonempty(cm: &ConfusionMatrix) -> Result<(), MetricError> {
    if cm.total() == 0 {
        Err(MetricError::EmptyMatrix)
    } else {
        Ok(())
    }
}

/// Guard helper: errors when `den == 0` with the given reason.
pub(crate) fn fraction(num: f64, den: f64, reason: &'static str) -> Result<f64, MetricError> {
    if den == 0.0 {
        Err(MetricError::Undefined { reason })
    } else {
        Ok(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{Precision, Recall};

    #[test]
    fn error_display() {
        let e = MetricError::Undefined {
            reason: "no predicted positives",
        };
        assert!(e.to_string().contains("no predicted positives"));
        assert!(MetricError::EmptyMatrix.to_string().contains("empty"));
    }

    #[test]
    fn compute_or_nan_maps_undefined() {
        let cm = ConfusionMatrix::new(0, 0, 4, 6); // nothing reported
        assert!(Precision.compute(&cm).is_err());
        assert!(Precision.compute_or_nan(&cm).is_nan());
        assert!(!Recall.compute_or_nan(&cm).is_nan());
    }

    #[test]
    fn oriented_respects_direction() {
        use crate::cost::ExpectedCost;
        let cm = ConfusionMatrix::new(8, 2, 2, 88);
        let recall = Recall.oriented(&cm).unwrap();
        assert!(recall > 0.0);
        let cost = ExpectedCost::balanced();
        assert!(!cost.higher_is_better());
        let oriented = cost.oriented(&cm).unwrap();
        let raw = cost.compute(&cm).unwrap();
        assert_eq!(oriented, -raw);
    }

    #[test]
    fn metric_is_object_safe() {
        let metrics: Vec<Box<dyn Metric>> = vec![Box::new(Precision), Box::new(Recall)];
        let cm = ConfusionMatrix::new(1, 1, 1, 1);
        for m in &metrics {
            assert!(m.compute(&cm).is_ok());
            assert!(!m.name().is_empty());
            assert!(!m.abbrev().is_empty());
        }
    }
}
