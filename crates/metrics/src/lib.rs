//! Confusion-matrix metrics for vulnerability detection benchmarking.
//!
//! This crate implements **stage 1** of Antunes & Vieira (DSN 2015): a large
//! catalog of candidate metrics for benchmarking vulnerability detection
//! tools, each with the analytical metadata ("characteristics of a good
//! metric") the paper uses to reason about adequacy.
//!
//! * [`confusion::ConfusionMatrix`] — the TP/FP/FN/TN contingency table every
//!   metric is computed from;
//! * [`metric::Metric`] — the object-safe trait all metrics implement;
//! * [`basic`], [`composite`], [`chance`], [`cost`] — the metric families;
//! * [`catalog`] — the standard catalog with lookup by [`catalog::MetricId`];
//! * [`roc`] — operating points (TPR/FPR) and conversions used by the
//!   prevalence-sweep analyses.
//!
//! # Example
//!
//! ```
//! use vdbench_metrics::confusion::ConfusionMatrix;
//! use vdbench_metrics::metric::Metric;
//! use vdbench_metrics::basic::{Precision, Recall};
//! use vdbench_metrics::composite::FMeasure;
//!
//! let cm = ConfusionMatrix::new(80, 20, 10, 890);
//! assert!((Precision.compute(&cm).unwrap() - 0.8).abs() < 1e-12);
//! assert!((Recall.compute(&cm).unwrap() - 80.0 / 90.0).abs() < 1e-12);
//! let f1 = FMeasure::f1().compute(&cm).unwrap();
//! assert!(f1 > 0.8 && f1 < 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod basic;
pub mod catalog;
pub mod chance;
pub mod composite;
pub mod confusion;
pub mod cost;
pub mod metric;
pub mod properties;
pub mod roc;

pub use availability::Availability;
pub use catalog::{standard_catalog, MetricId};
pub use confusion::ConfusionMatrix;
pub use metric::{Metric, MetricError};
pub use properties::MetricProperties;
pub use roc::OperatingPoint;
